#!/usr/bin/env bash
# Full verification recipe: build, tests (whole workspace), formatting,
# and lint gate. CI and pre-merge checks should run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test --workspace -q
cargo fmt --check
cargo clippy --all-targets -- -D warnings
# Fast throughput smoke (64 hosts): asserts the artifact is well-formed
# JSON and that memoized scoring is no slower than the cold baseline.
cargo bench -p ostro-bench --bench throughput -- --smoke
# Stream smoke (64 hosts): warm SchedulerSession vs cold per-request
# scheduler over a sustained arrival/departure stream; asserts every
# event's decision bit-identical and the warm engine no slower.
cargo bench -p ostro-bench --bench stream -- --smoke
# Kernel smoke (64 hosts) twice — scalar build, then the explicit
# `simd` intrinsics build — asserting the seeded EG/BA*/DBA* decision
# digest is identical: vectorized candidate filtering must never
# change a placement decision.
cargo bench -p ostro-bench --bench kernel -- --smoke
scalar_digest="$(grep -o '"decision_digest": "[0-9a-f]*"' target/BENCH_kernel_smoke.json)"
cargo bench -p ostro-bench --bench kernel --features simd -- --smoke
simd_digest="$(grep -o '"decision_digest": "[0-9a-f]*"' target/BENCH_kernel_smoke.json)"
diff <(echo "$scalar_digest") <(echo "$simd_digest")
# Shard smoke (64-host multi-pod fleet): runs the two-level sharded
# engine next to the unsharded baseline and diffs the seeded
# EG/BA*/DBA* decision digests — a sharded request whose K covers
# every pod must reproduce the unsharded decisions bit-for-bit.
cargo bench -p ostro-bench --bench shard -- --smoke
unsharded_digest="$(grep -o '"unsharded_digest": "[0-9a-f]*"' target/BENCH_shard_smoke.json \
  | grep -o '"[0-9a-f]*"$')"
sharded_all_digest="$(grep -o '"sharded_all_digest": "[0-9a-f]*"' target/BENCH_shard_smoke.json \
  | grep -o '"[0-9a-f]*"$')"
diff <(echo "$unsharded_digest") <(echo "$sharded_all_digest")
# Recovery smoke (32 hosts, seeded host crashes + launch failures):
# asserts internally that two same-seed runs yield bit-identical
# recovery reports for every algorithm.
cargo bench -p ostro-bench --bench recovery -- --smoke
# Journal smoke: replays every recovered state against the live books
# (bit-identity asserted internally) and pins that snapshot compaction
# replays fewer records than a full journal scan.
cargo bench -p ostro-bench --bench wal -- --smoke
# Seeded fault-injection churn through the CLI: crashes, transient
# launch failures, and stale-capacity races must complete without
# panics, and two identically-seeded runs must agree exactly
# (mean_solver_secs is wall clock, so it is stripped first).
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -q --release -p ostro-cli -- example infra > "$tmp/infra.json"
churn_smoke() {
  cargo run -q --release -p ostro-cli -- churn --infra "$tmp/infra.json" \
    --arrivals 8 --lifetime 4 --seed 7 --crashes 2 \
    --launch-failure-prob 0.05 --stale-race-prob 0.2
}
churn_smoke > "$tmp/churn1.json"
churn_smoke > "$tmp/churn2.json"
diff <(grep -v mean_solver_secs "$tmp/churn1.json") \
     <(grep -v mean_solver_secs "$tmp/churn2.json")
# Session determinism through the CLI: two same-seed `place --session`
# runs must produce identical documents (elapsed_secs is wall clock,
# so it is stripped first).
cargo run -q --release -p ostro-cli -- example template > "$tmp/app.json"
session_place() {
  cargo run -q --release -p ostro-cli -- place --infra "$tmp/infra.json" \
    --template "$tmp/app.json" --session --stats --seed 7
}
session_place > "$tmp/place1.json"
session_place > "$tmp/place2.json"
diff <(grep -v elapsed_secs "$tmp/place1.json") \
     <(grep -v elapsed_secs "$tmp/place2.json")
# Crash-drill determinism through the CLI: churn with a write-ahead
# journal and scheduled mid-run scheduler crashes must match a run
# that never crashed (restart bookkeeping and wall clock stripped).
crash_churn() {
  cargo run -q --release -p ostro-cli -- churn --infra "$tmp/infra.json" \
    --arrivals 8 --lifetime 4 --seed 7 --crashes 2 \
    --launch-failure-prob 0.05 --stale-race-prob 0.2 "$@"
}
crash_churn --wal-dir "$tmp/wal-churn" --crash-at 3,6 > "$tmp/crash.json"
strip_restart_fields() {
  grep -v -e mean_solver_secs -e scheduler_restarts -e wal_records_replayed "$1"
}
diff <(strip_restart_fields "$tmp/crash.json") \
     <(strip_restart_fields "$tmp/churn1.json")
# Concurrent service smoke (64 hosts): plans batches against epoch-
# stamped snapshots, commits optimistically, asserts the commit-order
# replay reproduces the final books exactly, and runs a crash drill.
# (Regenerating the full artifact — `cargo bench -p ostro-bench
# --bench service` — additionally fails on a >10% req/s regression
# against the checked-in BENCH_service.json on a comparable box.)
cargo bench -p ostro-bench --bench service -- --smoke
# Chaos smoke (small fleet): a burst-overload drill (bounded queue +
# deadline budgets, baseline vs degrade ladder) and a seeded WAL/panic
# fault storm under DurabilityPolicy::Reject — asserts every arrival
# resolves typed, no acknowledged commit is lost (recovered ≡ live
# books), and two same-seed storms are bit-identical.
cargo bench -p ostro-bench --bench chaos -- --smoke
# Service-vs-serial decision digest through the CLI: with one planner
# and batch size one the service degenerates to the serial path, so
# the same seeded stream must reach the identical decision set (the
# digest is order-independent and covers every placement/rejection).
serve_stream() {
  cargo run -q --release -p ostro-cli -- serve --infra "$tmp/infra.json" \
    --requests 8 --depart-prob 0.4 --seed 7 "$@"
}
serve_stream --serial > "$tmp/serve-serial.json"
serve_stream --planners 1 --batch 1 > "$tmp/serve-service.json"
diff <(grep -o '"decision_digest": "[0-9a-f]*"' "$tmp/serve-serial.json") \
     <(grep -o '"decision_digest": "[0-9a-f]*"' "$tmp/serve-service.json")
# Burst-overload serve through the CLI: a bounded ingress queue under a
# one-shot 32-request burst must shed with typed errors, account for
# every arrival in exactly one bucket, and still exit cleanly.
cargo run -q --release -p ostro-cli -- serve --infra "$tmp/infra.json" \
  --requests 32 --depart-prob 0.0 --seed 7 --planners 1 --batch 1 \
  --queue-depth 1 --degrade > "$tmp/serve-overload.json"
count() { grep -o "\"$1\": [0-9]*" "$tmp/serve-overload.json" | head -1 | grep -o '[0-9]*$'; }
test "$(count shed)" -gt 0
test "$(( $(count placed) + $(count rejected) + $(count shed) + $(count panicked) ))" \
  -eq "$(count arrivals)"
# Defrag smoke (64 hosts): churn-decays a multi-pod fleet, runs the
# maintenance plane's budgeted sweeps, and asserts internally that the
# fleet objective strictly beats the no-maintenance baseline, every
# sweep respects its move budget, and two same-seed runs produce
# bit-identical migration logs and final placement digests.
cargo bench -p ostro-bench --bench defrag -- --smoke
# Maintenance determinism through the CLI: every field of the maintain
# report is a pure function of the seed (no wall clock), so two
# same-seed runs — migration log digest and final decision digest
# included — must diff clean whole.
maintain_run() {
  cargo run -q --release -p ostro-cli -- maintain --infra "$tmp/infra.json" \
    --seed 7 --fail-stop 1 "$@"
}
maintain_run > "$tmp/maintain1.json"
maintain_run > "$tmp/maintain2.json"
diff "$tmp/maintain1.json" "$tmp/maintain2.json"
grep -q '"migration_log_digest"' "$tmp/maintain1.json"
# Churn-with-maintenance vs churn-without: at equal churn (same seed,
# same arrivals, same departures) the maintained fleet must end with a
# strictly lower fragmentation objective than the unmaintained baseline.
maintain_run --no-maintenance > "$tmp/maintain-base.json"
frag_after_objective() {
  grep -A6 '"frag_after"' "$1" | grep '"fleet_objective"' | grep -o '[0-9][0-9.]*'
}
maintained="$(frag_after_objective "$tmp/maintain1.json")"
baseline="$(frag_after_objective "$tmp/maintain-base.json")"
awk -v m="$maintained" -v b="$baseline" 'BEGIN {
  if (m >= b) { printf "maintenance did not reduce fragmentation: %s >= %s\n", m, b; exit 1 }
}'
# Recovery through the CLI: a journaled placement must be rebuildable
# from its write-ahead log alone.
cargo run -q --release -p ostro-cli -- place --infra "$tmp/infra.json" \
  --template "$tmp/app.json" --commit "$tmp/committed.json" \
  --wal-dir "$tmp/wal-place" > /dev/null
cargo run -q --release -p ostro-cli -- recover --infra "$tmp/infra.json" \
  --wal-dir "$tmp/wal-place" > "$tmp/recover.json"
grep -q '"records_replayed"' "$tmp/recover.json"
echo "verify: all checks passed"
