#!/usr/bin/env bash
# Full verification recipe: build, tests (whole workspace), formatting,
# and lint gate. CI and pre-merge checks should run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test --workspace -q
cargo fmt --check
cargo clippy --all-targets -- -D warnings
# Fast throughput smoke (64 hosts): asserts the artifact is well-formed
# JSON and that memoized scoring is no slower than the cold baseline.
cargo bench -p ostro-bench --bench throughput -- --smoke
echo "verify: all checks passed"
