#!/usr/bin/env bash
# Hot-spot profiling recipe for the search kernel.
#
# Wraps `perf` (and, when installed, `flamegraph`) around the kernel
# microbenchmark so a profile always measures the same workload the
# committed BENCH_kernel.json numbers come from. Usage:
#
#   scripts/profile.sh            # full-scale kernel bench under perf
#   scripts/profile.sh --smoke    # fast 64-host variant
#   scripts/profile.sh --simd     # profile the explicit-SIMD build
#
# Artifacts land in target/profile/: perf.data, a folded text report
# (perf-report.txt), and flamegraph.svg when the flamegraph tool is
# available.
#
# Reading the report
# ------------------
# The scoring hot path is, in descending expected weight:
#
#   ostro_core::candidates::score_candidates_into   one scoring round
#   ostro_core::candidates::ProbeCtx::admit         dense per-host flow screen
#   ostro_core::candidates::feasible_hosts_into     SoA candidate sweep
#   ostro_core::candidates::capacity_mask*          branch-free column compare
#   ostro_core::heuristic::lower_bound_mbps_with    §III-A2 bound (memo misses)
#   ostro_datacenter::table::CapacityTable::sync    journal-tail replay
#
# Healthy profiles show `capacity_mask*` as a small flat cost (it
# touches four contiguous columns once per round) and `admit` with no
# hash-probe callees (`FxHashMap::get` under it means the dense screen
# regressed to per-link map lookups). `lower_bound_mbps_with`
# dominating usually means the bound memo cache is cold or disabled —
# check `scoring_parallel_uncached_us` vs `scoring_parallel_us` in
# BENCH_kernel.json before hunting micro-optimizations. A fat
# `CapacityTable::rebuild` indicates overlay rollbacks outrunning the
# journal-tail fast path (see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=""
features=""
for arg in "$@"; do
  case "$arg" in
    --smoke) smoke="--smoke" ;;
    --simd) features="--features simd" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

out=target/profile
mkdir -p "$out"

# Build the bench binary with symbols; `cargo bench --no-run` puts it
# under target/release/deps with a hashed name, so ask cargo for it.
bin="$(cargo bench -p ostro-bench --bench kernel $features --no-run --message-format=json 2>/dev/null |
  sed -n 's/.*"executable":"\([^"]*kernel[^"]*\)".*/\1/p' | tail -1)"
if [ -z "$bin" ]; then
  echo "error: could not locate the kernel bench binary" >&2
  exit 1
fi
echo "profiling $bin $smoke"

if ! command -v perf >/dev/null 2>&1; then
  # No perf on this machine: still run the workload and report the
  # derived medians so the recipe degrades to a timing check.
  echo "warning: perf not found; running the bench without a profiler." >&2
  echo "Install linux-tools (perf) to produce $out/perf-report.txt." >&2
  "$bin" $smoke
  exit 0
fi

# DWARF call graphs resolve inlined scoring frames far better than
# frame pointers in release builds.
perf record -o "$out/perf.data" --call-graph dwarf,16384 -F 997 -- "$bin" $smoke
perf report -i "$out/perf.data" --stdio --percent-limit 0.5 > "$out/perf-report.txt"
echo "wrote $out/perf-report.txt"

if command -v flamegraph >/dev/null 2>&1; then
  flamegraph --perfdata "$out/perf.data" -o "$out/flamegraph.svg" >/dev/null 2>&1 &&
    echo "wrote $out/flamegraph.svg"
elif command -v stackcollapse-perf.pl >/dev/null 2>&1 && command -v flamegraph.pl >/dev/null 2>&1; then
  perf script -i "$out/perf.data" | stackcollapse-perf.pl > "$out/stacks.folded"
  flamegraph.pl "$out/stacks.folded" > "$out/flamegraph.svg"
  echo "wrote $out/flamegraph.svg"
else
  echo "flamegraph tooling not found; skipping SVG (report is enough for hot spots)."
fi
