//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, seedable generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed through splitmix64, as the xoshiro authors
        // recommend, so similar seeds give unrelated streams.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        SmallRng { state: [next(), next(), next(), next()] }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

/// The "standard" generator: same engine as [`SmallRng`] in this
/// facade, provided for API parity.
#[derive(Debug, Clone)]
pub struct StdRng(SmallRng);

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}
