//! Offline facade for the `rand` crate (0.8 API subset).
//!
//! Deterministic and seedable — the simulation code only needs
//! reproducible streams, not statistical parity with the real crate.
//! `rngs::SmallRng` is xoshiro256++ seeded through splitmix64.

pub mod distributions;
pub mod rngs;

use distributions::uniform::{SampleRange, SampleUniform};

/// The core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministically).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..1_000_000) == c.gen_range(0u64..1_000_000))
            .count();
        assert!(same < 5, "different seeds should diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..=3);
            assert!(y <= 3);
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(sample(&mut rng) < 10);
    }
}
