//! Uniform-range sampling, mirroring `rand::distributions::uniform`.

/// Uniform sampling over ranges.
pub mod uniform {
    use std::ops::{Range, RangeInclusive};

    use crate::RngCore;

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized + Copy + PartialOrd {
        /// A uniform sample from `[low, high)` (`inclusive = false`) or
        /// `[low, high]` (`inclusive = true`).
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self;
    }

    /// Range shapes accepted by `Rng::gen_range`.
    pub trait SampleRange<T: SampleUniform> {
        /// Draws one sample from this range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_uniform(rng, self.start, self.end, false)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_uniform(rng, low, high, true)
        }
    }

    /// Draws uniformly from `[0, span)` by widening multiplication
    /// (Lemire's method without the rejection step — the bias is at
    /// most 2^-64 per draw, irrelevant for simulation workloads).
    fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        if span == 0 {
            // Span of the full u64 domain: every draw is in range.
            return rng.next_u64();
        }
        let wide = u128::from(rng.next_u64()) * u128::from(span);
        (wide >> 64) as u64
    }

    macro_rules! uniform_uint_impl {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    let span = (high as u64)
                        .wrapping_sub(low as u64)
                        .wrapping_add(u64::from(inclusive));
                    let offset = sample_span(rng, span);
                    ((low as u64).wrapping_add(offset)) as $t
                }
            }
        )*};
    }

    uniform_uint_impl!(u8, u16, u32, u64, usize);

    macro_rules! uniform_int_impl {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    rng: &mut R,
                    low: Self,
                    high: Self,
                    inclusive: bool,
                ) -> Self {
                    // Work in wrapped unsigned space so negative spans
                    // are handled correctly.
                    let span = (high as i64)
                        .wrapping_sub(low as i64) as u64;
                    let span = span.wrapping_add(u64::from(inclusive));
                    let offset = sample_span(rng, span);
                    (low as i64).wrapping_add(offset as i64) as $t
                }
            }
        )*};
    }

    uniform_int_impl!(i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            _inclusive: bool,
        ) -> Self {
            let unit = crate::unit_f64(rng.next_u64());
            let sample = low + unit * (high - low);
            // Guard against rounding up to an exclusive upper bound.
            if sample >= high && low < high {
                low
            } else {
                sample
            }
        }
    }

    impl SampleUniform for f32 {
        fn sample_uniform<R: RngCore + ?Sized>(
            rng: &mut R,
            low: Self,
            high: Self,
            inclusive: bool,
        ) -> Self {
            f64::sample_uniform(rng, f64::from(low), f64::from(high), inclusive) as f32
        }
    }
}
