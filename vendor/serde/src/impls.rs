//! `Serialize`/`Deserialize` implementations for std types.

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

use crate::{Deserialize, Error, Map, Number, Serialize, Value};

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(u64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| type_err(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Number(Number::PosInt(*self as u64))
    }
}

impl Deserialize for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let n = value.as_u64().ok_or_else(|| type_err("usize", value))?;
        usize::try_from(n).map_err(|_| Error::msg(format!("{n} out of range for usize")))
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(i64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| type_err(stringify!($t), value))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::msg(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| type_err("f64", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.as_f64().ok_or_else(|| type_err("f32", value))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| type_err("bool", value))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_str().map(str::to_owned).ok_or_else(|| type_err("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = value.as_str().ok_or_else(|| type_err("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected a single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| type_err("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| type_err("2-tuple", value))?;
        if arr.len() != 2 {
            return Err(Error::msg(format!("expected 2 elements, found {}", arr.len())));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let arr = value.as_array().ok_or_else(|| type_err("3-tuple", value))?;
        if arr.len() != 3 {
            return Err(Error::msg(format!("expected 3 elements, found {}", arr.len())));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?, C::from_value(&arr[2])?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| type_err("object", value))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so output is deterministic, like a BTreeMap.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by_key(|(a, _)| *a);
        Value::Object(entries.into_iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| type_err("object", value))?;
        obj.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("secs".to_owned(), self.as_secs().to_value());
        map.insert("nanos".to_owned(), self.subsec_nanos().to_value());
        Value::Object(map)
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value.as_object().ok_or_else(|| type_err("duration object", value))?;
        let secs = obj
            .get("secs")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::msg("duration missing `secs`"))?;
        let nanos = obj
            .get("nanos")
            .and_then(Value::as_u64)
            .ok_or_else(|| Error::msg("duration missing `nanos`"))?;
        let nanos =
            u32::try_from(nanos).map_err(|_| Error::msg("duration `nanos` out of range"))?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(value)?))
    }
}

fn type_err(expected: &str, got: &Value) -> Error {
    Error::msg(format!("expected {expected}, found {}", got.kind()))
}
