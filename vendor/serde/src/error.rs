use std::fmt;

/// A (de)serialization error: a message, optionally tagged with the
/// line/column of a parse failure (filled in by `serde_json`).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    position: Option<(usize, usize)>,
}

impl Error {
    /// An error carrying just a message.
    #[must_use]
    pub fn msg(msg: impl Into<String>) -> Self {
        Error { msg: msg.into(), position: None }
    }

    /// An error produced while parsing text, at 1-based `line`/`column`.
    #[must_use]
    pub fn at(msg: impl Into<String>, line: usize, column: usize) -> Self {
        Error { msg: msg.into(), position: Some((line, column)) }
    }

    /// The 1-based line of a parse failure, or 0 for shape errors.
    #[must_use]
    pub fn line(&self) -> usize {
        self.position.map_or(0, |(l, _)| l)
    }

    /// The 1-based column of a parse failure, or 0 for shape errors.
    #[must_use]
    pub fn column(&self) -> usize {
        self.position.map_or(0, |(_, c)| c)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some((line, column)) => {
                write!(f, "{} at line {line} column {column}", self.msg)
            }
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}
