//! The owned JSON-like value tree the facade (de)serializes through.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON number: unsigned/signed integer or binary float, mirroring
/// `serde_json::Number`'s three-way split.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite binary floating-point number.
    Float(f64),
}

impl Number {
    /// The value as `u64`, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// The value as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(f) => Some(f),
        }
    }

    /// Normalizes a signed integer: non-negative values become
    /// [`Number::PosInt`] so `5i64` and `5u64` compare equal.
    #[must_use]
    pub fn from_i64(n: i64) -> Self {
        match u64::try_from(n) {
            Ok(u) => Number::PosInt(u),
            Err(_) => Number::NegInt(n),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if x == x.trunc() && x.is_finite() && x.abs() < 1e15 {
                    // Keep the float-ness visible, like serde_json.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An insertion-order-preserving string-keyed map of [`Value`]s.
///
/// Iteration follows insertion order (so serialized structs keep their
/// field order); equality is order-insensitive, matching JSON-object
/// semantics.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if there are no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Looks up `key` mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// `true` if `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Inserts or replaces `key`, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// An owned JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// A string-keyed object.
    Object(Map),
}

impl Value {
    /// `true` if this is `Value::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if any.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The string payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`, if this is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The array payload, if any.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The array payload mutably, if any.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The object payload mutably, if any.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-key or array-index lookup, returning `None` when absent.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// A short name for this value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        let map = self
            .as_object_mut()
            .unwrap_or_else(|| panic!("cannot index non-object value with a string key"));
        if !map.contains_key(key) {
            map.insert(key.to_owned(), Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.as_array().and_then(|a| a.get(index)).unwrap_or(&NULL)
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, index: usize) -> &mut Value {
        self.as_array_mut()
            .and_then(|a| a.get_mut(index))
            .unwrap_or_else(|| panic!("cannot index value with out-of-bounds index {index}"))
    }
}
