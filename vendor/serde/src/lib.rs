//! Offline facade for the `serde` crate.
//!
//! Real serde is a zero-copy streaming framework; this facade is a much
//! smaller *value-tree* model: serialization builds an owned [`Value`]
//! and deserialization reads one. The public names (`Serialize`,
//! `Deserialize`, `de::DeserializeOwned`, the derive macros) match the
//! real crate closely enough that the rest of the workspace compiles
//! unchanged against either.

mod error;
mod impls;
mod value;

pub use error::Error;
pub use value::{Map, Number, Value};

// The derive macros. Same-name export as the real crate (trait and
// macro live in different namespaces).
pub use serde_derive::{Deserialize, Serialize};

/// A type that can be represented as a JSON-like [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a JSON-like [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `self` out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Deserialization-side helpers, mirroring `serde::de`.
pub mod de {
    /// In the value-tree model every [`Deserialize`](crate::Deserialize)
    /// type is already owned, so this is a blanket alias.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}

    pub use crate::error::Error;
}

/// Serialization-side helpers, mirroring `serde::ser`.
pub mod ser {
    pub use crate::error::Error;
}
