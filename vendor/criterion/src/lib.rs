//! Offline facade for the `criterion` crate: a small wall-clock
//! micro-benchmark harness with the same entry points
//! (`criterion_group!` / `criterion_main!`, `benchmark_group`,
//! `bench_with_input`, `Bencher::iter`).
//!
//! Each benchmark warms up briefly, then takes `sample_size` samples
//! and reports the median per-iteration time. Results are printed to
//! stdout and retained on the [`Criterion`] struct so callers (e.g.
//! custom bench binaries) can post-process them.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque value the optimizer must assume is used.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/bench-id` label.
    pub id: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Iterations per sample used for the measurement.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    /// All measurements recorded so far.
    pub measurements: Vec<Measurement>,
}

impl Criterion {
    /// Accepted for CLI parity; arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let m = run_benchmark(&id, 10, &mut f);
        self.measurements.push(m);
        self
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    #[must_use]
    pub fn new<P: Display>(name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter as the label.
    #[must_use]
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().label);
        let m = run_benchmark(&id, self.sample_size, &mut |b| f(b, input));
        self.criterion.measurements.push(m);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().label);
        let m = run_benchmark(&id, self.sample_size, &mut f);
        self.criterion.measurements.push(m);
        self
    }

    /// Ends the group (samples were already taken eagerly).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`iter`](Bencher::iter) with
/// the routine to measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine`, running it `iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, f: &mut F) -> Measurement
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one iteration to estimate cost (and page everything in).
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let estimate = bencher.elapsed.max(Duration::from_nanos(1));

    // Aim for ~25ms per sample, bounded so the whole bench stays fast.
    let target = Duration::from_millis(25);
    let iters = (target.as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        samples.push(bencher.elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("{id:<60} time: {median:>12.3?}  ({sample_size} samples x {iters} iters)");
    Measurement { id: id.to_owned(), median, iters_per_sample: iters, samples: sample_size }
}

/// Declares the group runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
