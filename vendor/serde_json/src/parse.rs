//! A recursive-descent JSON parser producing [`Value`] trees.

use serde::{Error, Map, Number, Value};

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = 1 + consumed.iter().filter(|&&b| b == b'\n').count();
        let column = 1 + consumed.iter().rev().take_while(|&&b| b != b'\n').count();
        Error::at(msg, line, column)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: `0` or nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("numbers may not have leading zeros"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let number = if is_float {
            Number::Float(text.parse().map_err(|_| self.err("invalid number"))?)
        } else if negative {
            match text.parse::<i64>() {
                Ok(n) => Number::from_i64(n),
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("invalid number"))?),
            }
        } else {
            match text.parse::<u64>() {
                Ok(n) => Number::PosInt(n),
                Err(_) => Number::Float(text.parse().map_err(|_| self.err("invalid number"))?),
            }
        };
        Ok(Value::Number(number))
    }
}
