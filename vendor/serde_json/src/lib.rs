//! Offline facade for the `serde_json` crate: a JSON parser and
//! printer over the in-tree `serde` facade's [`Value`] tree.

mod parse;
mod print;

pub use serde::{Error, Map, Number, Value};

use serde::{de::DeserializeOwned, Serialize};

/// Parses a JSON document into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::from_value(&value)
}

/// Reconstructs a deserializable type from an already-parsed tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Builds the value tree for any serializable value.
///
/// # Errors
///
/// Infallible in the value-tree model; `Result` kept for API parity.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Serializes to a compact JSON string.
///
/// # Errors
///
/// Infallible in the value-tree model; `Result` kept for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serializes to a pretty-printed (2-space indent) JSON string.
///
/// # Errors
///
/// Infallible in the value-tree model; `Result` kept for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Builds a [`Value`] from a JSON-like literal expression.
///
/// Supports `null`, booleans, numbers, strings, arrays, objects, and
/// interpolated serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(::std::string::String::from($key), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_nesting() {
        let text = r#"{"a": [1, -2, 3.5, true, null, "x\n\"y\""], "b": {"c": 10}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][0], json!(1));
        assert_eq!(v["a"][1], json!(-2));
        assert_eq!(v["a"][2], json!(3.5));
        assert_eq!(v["a"][3], Value::Bool(true));
        assert!(v["a"][4].is_null());
        assert_eq!(v["a"][5].as_str(), Some("x\n\"y\""));
        assert_eq!(v["b"]["c"].as_u64(), Some(10));
        let reparsed: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reparsed, v);
        let reparsed: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>(r#"{"a": }"#).is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("01").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
        let err = from_str::<Value>("{\n  \"a\": frob\n}").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        let round: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(round, v);
    }

    #[test]
    fn json_macro_builds_trees() {
        let v = json!({"a": [1, true, null], "b": "s"});
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["b"].as_str(), Some("s"));
        assert_eq!(json!(99).as_u64(), Some(99));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1_f64, 1.0, -2.5, 1e-9, 123456.789, f64::MAX] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }
}
