//! Offline facade for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! implemented with a hand-rolled token parser instead of syn/quote.
//!
//! The generated code targets the value-tree model of the in-tree
//! `serde` facade (`Serialize::to_value` / `Deserialize::from_value`).
//! Supported shapes: non-generic structs (named, tuple/newtype) and
//! enums (unit, newtype, tuple, struct variants), with the container
//! attributes `transparent`, `tag`, `rename_all`, `try_from`, `into`,
//! the variant attribute `rename`, and the field attributes `rename`,
//! `default`, `default = "path"`, `skip_serializing_if`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Model

#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    tag: Option<String>,
    rename_all: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
    rename: Option<String>,
    default: bool,
    /// Path given via `#[serde(default = "path")]`; implies `default`.
    default_path: Option<String>,
    skip_serializing_if: Option<String>,
}

struct Field {
    name: String,
    ty: String,
    attrs: SerdeAttrs,
}

impl Field {
    fn key(&self) -> &str {
        self.attrs.rename.as_deref().unwrap_or(&self.name)
    }

    fn missing_ok(&self) -> bool {
        // Like real serde: explicit #[serde(default)], or an Option
        // field, tolerates a missing key.
        self.attrs.default
            || self.ty.starts_with("Option<")
            || self.ty.starts_with("std::option::Option<")
            || self.ty.starts_with("core::option::Option<")
    }
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    attrs: SerdeAttrs,
    kind: VariantKind,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    attrs: SerdeAttrs,
    name: String,
    data: Data,
}

impl Item {
    fn variant_key(&self, v: &Variant) -> String {
        if let Some(rename) = &v.attrs.rename {
            return rename.clone();
        }
        match self.attrs.rename_all.as_deref() {
            Some("lowercase") => v.name.to_lowercase(),
            Some("UPPERCASE") => v.name.to_uppercase(),
            Some("snake_case") => to_snake_case(&v.name),
            Some(other) => panic!("serde facade: unsupported rename_all = \"{other}\""),
            None => v.name.clone(),
        }
    }
}

fn to_snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Parsing

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let tt = self.tokens.get(self.pos).cloned();
        if tt.is_some() {
            self.pos += 1;
        }
        tt
    }

    fn at_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.bump() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde facade: expected {what}, found {other:?}"),
        }
    }
}

fn unquote(lit: &str) -> String {
    let s = lit.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        s[1..s.len() - 1].to_owned()
    } else {
        s.to_owned()
    }
}

fn parse_serde_args(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        i += 1;
        let mut value = None;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            if let Some(TokenTree::Literal(lit)) = tokens.get(i) {
                value = Some(unquote(&lit.to_string()));
                i += 1;
            }
        }
        match (name.as_str(), value) {
            ("transparent", _) => attrs.transparent = true,
            ("default", v) => {
                attrs.default = true;
                attrs.default_path = v;
            }
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("rename_all", Some(v)) => attrs.rename_all = Some(v),
            ("try_from", Some(v)) => attrs.try_from = Some(v),
            ("into", Some(v)) => attrs.into = Some(v),
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            (other, _) => panic!("serde facade: unsupported serde attribute `{other}`"),
        }
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1; // the comma, if any
    }
}

fn parse_attrs(cur: &mut Cursor) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while cur.at_punct('#') {
        cur.bump();
        let group = match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("serde facade: malformed attribute, found {other:?}"),
        };
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let is_serde =
            matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if is_serde {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                parse_serde_args(args.stream(), &mut attrs);
            }
        }
    }
    attrs
}

fn skip_visibility(cur: &mut Cursor) {
    if matches!(cur.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        cur.bump();
        if matches!(
            cur.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            cur.bump();
        }
    }
}

/// Consumes type tokens until a top-level comma (angle-bracket aware),
/// returning the space-free textual form (e.g. `Option<Proximity>`).
fn take_type(cur: &mut Cursor) -> String {
    let mut depth = 0i32;
    let mut ty = String::new();
    while let Some(tt) = cur.peek().cloned() {
        if depth == 0 {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    cur.bump();
                    break;
                }
            }
        }
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        ty.push_str(&tt.to_string());
        cur.bump();
    }
    ty
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        let attrs = parse_attrs(&mut cur);
        skip_visibility(&mut cur);
        let name = cur.expect_ident("field name");
        if !cur.eat_punct(':') {
            panic!("serde facade: expected `:` after field `{name}`");
        }
        let ty = take_type(&mut cur);
        fields.push(Field { name, ty, attrs });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0;
    while cur.peek().is_some() {
        // Leading attributes and visibility on tuple fields.
        let _ = parse_attrs(&mut cur);
        skip_visibility(&mut cur);
        let ty = take_type(&mut cur);
        if !ty.is_empty() {
            count += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while cur.peek().is_some() {
        let attrs = parse_attrs(&mut cur);
        let name = cur.expect_ident("variant name");
        let kind = match cur.peek().cloned() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                cur.bump();
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Newtype,
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                cur.bump();
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if cur.peek().is_some() && !cur.eat_punct(',') {
            panic!("serde facade: expected `,` after variant `{name}`");
        }
        variants.push(Variant { name, attrs, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    let attrs = parse_attrs(&mut cur);
    skip_visibility(&mut cur);
    let keyword = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if cur.at_punct('<') {
        panic!("serde facade: generic type `{name}` is not supported by the derive");
    }
    let data = match keyword.as_str() {
        "struct" => match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            other => panic!("serde facade: unsupported struct body {other:?}"),
        },
        "enum" => match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde facade: unsupported enum body {other:?}"),
        },
        other => panic!("serde facade: cannot derive for `{other}` items"),
    };
    Item { attrs, name, data }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize

fn ser_named_fields(fields: &[Field], access: &str) -> String {
    // `access` is `self.` for struct fields (expressions of type T, so
    // they need a leading `&`) or `` for match bindings (already &T).
    let mut out = String::from("let mut map = ::serde::Map::new();\n");
    for f in fields {
        let expr = if access.is_empty() { f.name.clone() } else { format!("&{access}{}", f.name) };
        let insert = format!(
            "map.insert(::std::string::String::from(\"{}\"), ::serde::Serialize::to_value({expr}));\n",
            f.key()
        );
        if let Some(path) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !({path})({expr}) {{ {insert} }}\n"));
        } else {
            out.push_str(&insert);
        }
    }
    out.push_str("::serde::Value::Object(map)");
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(into) = &item.attrs.into {
        format!(
            "let proxy: {into} = ::core::convert::Into::into(::core::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&proxy)"
        )
    } else {
        match &item.data {
            Data::NamedStruct(fields) if item.attrs.transparent && fields.len() == 1 => {
                format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
            }
            Data::NamedStruct(fields) => ser_named_fields(fields, "self."),
            Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
            Data::TupleStruct(n) => {
                let items: Vec<String> =
                    (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            }
            Data::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let vname = item.variant_key(v);
                    let arm = match (&v.kind, &item.attrs.tag) {
                        (VariantKind::Unit, None) => format!(
                            "{name}::{} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),\n",
                            v.name
                        ),
                        (VariantKind::Unit, Some(tag)) => format!(
                            "{name}::{} => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from(\"{tag}\"), ::serde::Value::String(::std::string::String::from(\"{vname}\")));\n\
                             ::serde::Value::Object(map)\n}}\n",
                            v.name
                        ),
                        (VariantKind::Newtype, None) => format!(
                            "{name}::{}(inner) => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(inner));\n\
                             ::serde::Value::Object(map)\n}}\n",
                            v.name
                        ),
                        (VariantKind::Tuple(n), None) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{}({}) => {{\n\
                                 let mut map = ::serde::Map::new();\n\
                                 map.insert(::std::string::String::from(\"{vname}\"), ::serde::Value::Array(::std::vec![{}]));\n\
                                 ::serde::Value::Object(map)\n}}\n",
                                v.name,
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        (VariantKind::Struct(fields), None) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = ser_named_fields(fields, "");
                            format!(
                                "{name}::{} {{ {} }} => {{\n\
                                 let mut outer = ::serde::Map::new();\n\
                                 let inner = {{ {inner} }};\n\
                                 outer.insert(::std::string::String::from(\"{vname}\"), inner);\n\
                                 ::serde::Value::Object(outer)\n}}\n",
                                v.name,
                                binds.join(", ")
                            )
                        }
                        (VariantKind::Struct(fields), Some(tag)) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let mut body = format!(
                                "let mut map = ::serde::Map::new();\n\
                                 map.insert(::std::string::String::from(\"{tag}\"), ::serde::Value::String(::std::string::String::from(\"{vname}\")));\n"
                            );
                            for f in fields {
                                let insert = format!(
                                    "map.insert(::std::string::String::from(\"{}\"), ::serde::Serialize::to_value({}));\n",
                                    f.key(),
                                    f.name
                                );
                                if let Some(path) = &f.attrs.skip_serializing_if {
                                    body.push_str(&format!(
                                        "if !({path})({}) {{ {insert} }}\n",
                                        f.name
                                    ));
                                } else {
                                    body.push_str(&insert);
                                }
                            }
                            body.push_str("::serde::Value::Object(map)");
                            format!(
                                "{name}::{} {{ {} }} => {{\n{body}\n}}\n",
                                v.name,
                                binds.join(", ")
                            )
                        }
                        (_, Some(_)) => panic!(
                            "serde facade: internally tagged enums support unit/struct variants only"
                        ),
                    };
                    arms.push_str(&arm);
                }
                format!("match self {{\n{arms}\n}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic, clippy::nursery)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize

fn de_named_fields(fields: &[Field], container: &str, source: &str) -> String {
    // Produces the `field: ...,` initializer list reading from `source`
    // (an expression of type `&serde::Map`).
    let mut out = String::new();
    for f in fields {
        let key = f.key();
        let missing = if let Some(path) = &f.attrs.default_path {
            format!("{path}()")
        } else if f.missing_ok() {
            "::core::default::Default::default()".to_owned()
        } else {
            format!(
                "return ::core::result::Result::Err(::serde::Error::msg(\
                 \"{container}: missing field `{key}`\"))"
            )
        };
        out.push_str(&format!(
            "{}: match {source}.get(\"{key}\") {{\n\
             ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
             ::core::option::Option::None => {missing},\n}},\n",
            f.name
        ));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(try_from) = &item.attrs.try_from {
        format!(
            "let proxy = <{try_from} as ::serde::Deserialize>::from_value(value)?;\n\
             ::core::convert::TryFrom::try_from(proxy)\n\
             .map_err(|e| ::serde::Error::msg(::std::format!(\"{{e}}\")))"
        )
    } else {
        match &item.data {
            Data::NamedStruct(fields) if item.attrs.transparent && fields.len() == 1 => {
                format!(
                    "::core::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(value)? }})",
                    fields[0].name
                )
            }
            Data::NamedStruct(fields) => {
                let inits = de_named_fields(fields, name, "obj");
                format!(
                    "let obj = value.as_object().ok_or_else(|| ::serde::Error::msg(\
                     ::std::format!(\"{name}: expected object, found {{}}\", value.kind())))?;\n\
                     ::core::result::Result::Ok({name} {{\n{inits}\n}})"
                )
            }
            Data::TupleStruct(1) => format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
            ),
            Data::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                    .collect();
                format!(
                    "let arr = value.as_array().ok_or_else(|| ::serde::Error::msg(\"{name}: expected array\"))?;\n\
                     if arr.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::Error::msg(\"{name}: wrong tuple length\"));\n}}\n\
                     ::core::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            }
            Data::Enum(variants) => {
                if let Some(tag) = &item.attrs.tag {
                    let mut arms = String::new();
                    for v in variants {
                        let vname = item.variant_key(v);
                        match &v.kind {
                            VariantKind::Unit => arms.push_str(&format!(
                                "\"{vname}\" => ::core::result::Result::Ok({name}::{}),\n",
                                v.name
                            )),
                            VariantKind::Struct(fields) => {
                                let inits = de_named_fields(fields, name, "obj");
                                arms.push_str(&format!(
                                    "\"{vname}\" => ::core::result::Result::Ok({name}::{} {{\n{inits}\n}}),\n",
                                    v.name
                                ));
                            }
                            _ => panic!(
                                "serde facade: internally tagged enums support unit/struct variants only"
                            ),
                        }
                    }
                    format!(
                        "let obj = value.as_object().ok_or_else(|| ::serde::Error::msg(\
                         \"{name}: expected object\"))?;\n\
                         let tag = obj.get(\"{tag}\").and_then(::serde::Value::as_str)\
                         .ok_or_else(|| ::serde::Error::msg(\"{name}: missing `{tag}` tag\"))?;\n\
                         match tag {{\n{arms}\
                         other => ::core::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: unknown variant `{{other}}`\"))),\n}}"
                    )
                } else {
                    let mut string_arms = String::new();
                    let mut object_arms = String::new();
                    for v in variants {
                        let vname = item.variant_key(v);
                        match &v.kind {
                            VariantKind::Unit => string_arms.push_str(&format!(
                                "\"{vname}\" => ::core::result::Result::Ok({name}::{}),\n",
                                v.name
                            )),
                            VariantKind::Newtype => object_arms.push_str(&format!(
                                "\"{vname}\" => ::core::result::Result::Ok({name}::{}(::serde::Deserialize::from_value(inner)?)),\n",
                                v.name
                            )),
                            VariantKind::Tuple(n) => {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&arr[{i}])?")
                                    })
                                    .collect();
                                object_arms.push_str(&format!(
                                    "\"{vname}\" => {{\n\
                                     let arr = inner.as_array().ok_or_else(|| ::serde::Error::msg(\"{name}::{0}: expected array\"))?;\n\
                                     if arr.len() != {n} {{\n\
                                     return ::core::result::Result::Err(::serde::Error::msg(\"{name}::{0}: wrong tuple length\"));\n}}\n\
                                     ::core::result::Result::Ok({name}::{0}({1}))\n}}\n",
                                    v.name,
                                    items.join(", ")
                                ));
                            }
                            VariantKind::Struct(fields) => {
                                let inits = de_named_fields(fields, name, "obj");
                                object_arms.push_str(&format!(
                                    "\"{vname}\" => {{\n\
                                     let obj = inner.as_object().ok_or_else(|| ::serde::Error::msg(\"{name}::{0}: expected object\"))?;\n\
                                     ::core::result::Result::Ok({name}::{0} {{\n{inits}\n}})\n}}\n",
                                    v.name
                                ));
                            }
                        }
                    }
                    format!(
                        "match value {{\n\
                         ::serde::Value::String(s) => match s.as_str() {{\n{string_arms}\
                         other => ::core::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: unknown variant `{{other}}`\"))),\n}},\n\
                         ::serde::Value::Object(map) if map.len() == 1 => {{\n\
                         let (key, inner) = map.iter().next().expect(\"len == 1\");\n\
                         match key.as_str() {{\n{object_arms}\
                         other => ::core::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: unknown variant `{{other}}`\"))),\n}}\n}}\n\
                         other => ::core::result::Result::Err(::serde::Error::msg(\
                         ::std::format!(\"{name}: expected variant string or single-key object, found {{}}\", other.kind()))),\n}}"
                    )
                }
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all, clippy::pedantic, clippy::nursery)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
