//! # Ostro
//!
//! A from-scratch Rust reproduction of *Ostro: Scalable Placement
//! Optimization of Complex Application Topologies in Large-Scale Data
//! Centers* (ICDCS 2015).
//!
//! Ostro is a holistic cloud scheduler: it treats a whole *application
//! topology* — VMs, disk volumes, the bandwidth-guaranteed links between
//! them, and anti-affinity (*diversity zone*) constraints — as one
//! indivisible unit, and places all of it onto a hierarchical data
//! center at once, minimizing a weighted combination of reserved network
//! bandwidth and newly activated hosts.
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`model`] — the application-topology abstraction (`T_a`).
//! * [`datacenter`] — the physical substrate (`T_p`) with capacity and
//!   bandwidth bookkeeping.
//! * [`core`] — the placement engine: the estimate-based greedy search
//!   (EG), the bin-packing and bandwidth-greedy baselines (EGC, EGBW),
//!   bounded A\* (BA\*), deadline-bounded A\* (DBA\*), and online
//!   incremental re-placement.
//! * [`heat`] — a simulated OpenStack integration: QoS-enhanced Heat
//!   templates and mock Nova/Cinder services.
//! * [`sim`] — the paper's evaluation workloads (multi-tier, mesh, QFS)
//!   and scenario/experiment runners.
//!
//! # Quickstart
//!
//! ```
//! use ostro::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Describe the application topology.
//! let mut b = TopologyBuilder::new("hello");
//! let web = b.vm("web", 2, 2_048)?;
//! let db = b.vm("db", 4, 8_192)?;
//! let vol = b.volume("db-vol", 120)?;
//! b.link(web, db, Bandwidth::from_mbps(100))?;
//! b.link(db, vol, Bandwidth::from_mbps(200))?;
//! b.diversity_zone("spread", DiversityLevel::Host, &[web, db])?;
//! let topology = b.build()?;
//!
//! // 2. Describe the data center.
//! let infra = InfrastructureBuilder::flat(
//!     "dc", 4, 16,
//!     Resources::new(16, 32_768, 1_000),
//!     Bandwidth::from_gbps(10),
//!     Bandwidth::from_gbps(100),
//! ).build()?;
//! let state = CapacityState::new(&infra);
//!
//! // 3. Ask Ostro for a holistic placement.
//! let scheduler = Scheduler::new(&infra);
//! let outcome = scheduler.place(&topology, &state, &PlacementRequest::default())?;
//! assert_eq!(outcome.placement.assignments().len(), 3);
//! # Ok(())
//! # }
//! ```

pub use ostro_core as core;
pub use ostro_datacenter as datacenter;
pub use ostro_heat as heat;
pub use ostro_model as model;
pub use ostro_sim as sim;

/// One-stop imports for typical use.
pub mod prelude {
    pub use ostro_core::{
        Algorithm, ObjectiveWeights, Placement, PlacementOutcome, PlacementRequest, Scheduler,
    };
    pub use ostro_datacenter::{
        CapacityState, Infrastructure, InfrastructureBuilder, OverlayState,
    };
    pub use ostro_model::{
        ApplicationTopology, Bandwidth, DiversityLevel, NodeId, Proximity, Resources,
        TopologyBuilder, TopologyDelta,
    };
}
