//! Randomized property tests: whatever random topology and data center
//! we throw at the engine, a returned placement never violates any
//! constraint, accounting always balances, and state round-trips.
//!
//! Cases are generated from a seeded [`SmallRng`], so every run checks
//! the same corpus deterministically.

use ostro::core::{reserved_bandwidth, verify_placement, Algorithm, PlacementRequest, Scheduler};
use ostro::datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
use ostro::model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn random_infra(rng: &mut SmallRng) -> Infrastructure {
    let racks = rng.gen_range(1usize..4);
    let hosts_per_rack = rng.gen_range(1usize..5);
    let vcpus = rng.gen_range(4u32..32);
    let memory_gb = rng.gen_range(8u64..64);
    let disk_gb = rng.gen_range(100u64..1_000);
    let nic_mbps = rng.gen_range(1_000u64..10_000);
    InfrastructureBuilder::flat(
        "p",
        racks,
        hosts_per_rack,
        Resources::new(vcpus, memory_gb * 1024, disk_gb),
        Bandwidth::from_mbps(nic_mbps),
        Bandwidth::from_gbps(100),
    )
    .build()
    .expect("non-degenerate spec")
}

fn random_topo(rng: &mut SmallRng) -> ApplicationTopology {
    let mut b = TopologyBuilder::new("prop");
    let mut ids = Vec::new();
    let vm_count = rng.gen_range(1usize..8);
    for i in 0..vm_count {
        let vcpus = rng.gen_range(1u32..4);
        let mem_gb = rng.gen_range(1u64..4);
        ids.push(b.vm(format!("vm{i}"), vcpus, mem_gb * 1024).unwrap());
    }
    let volume_count = rng.gen_range(0usize..4);
    for i in 0..volume_count {
        ids.push(b.volume(format!("vol{i}"), rng.gen_range(1u64..50)).unwrap());
    }
    let n = ids.len();
    for _ in 0..rng.gen_range(0usize..12) {
        let a = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if a != c {
            // Duplicate links are rejected; ignore those samples.
            let _ = b.link(ids[a], ids[c], Bandwidth::from_mbps(rng.gen_range(1u64..200)));
        }
    }
    if rng.gen_bool(0.5) {
        let mut members: Vec<_> =
            (0..rng.gen_range(1usize..4)).map(|_| ids[rng.gen_range(0..n)]).collect();
        members.sort();
        members.dedup();
        let level = if rng.gen_bool(0.5) { DiversityLevel::Rack } else { DiversityLevel::Host };
        b.diversity_zone("z", level, &members).unwrap();
    }
    b.build().unwrap()
}

/// Any placement the engine returns satisfies every constraint,
/// reports its bandwidth correctly, and commits/releases cleanly.
#[test]
fn placements_are_always_valid() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a1c_0000 + case);
        let infra = random_infra(&mut rng);
        let topology = random_topo(&mut rng);
        let greedy = rng.gen_bool(0.5);
        let mut state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let request = PlacementRequest {
            algorithm: if greedy { Algorithm::Greedy } else { Algorithm::GreedyBandwidth },
            parallel: false,
            ..PlacementRequest::default()
        };
        // Infeasible combinations are fine; only successes are checked.
        if let Ok(outcome) = scheduler.place(&topology, &state, &request) {
            let violations =
                verify_placement(&topology, &infra, &state, &outcome.placement).unwrap();
            assert!(violations.is_empty(), "case {case}: {violations:?}");
            assert_eq!(
                reserved_bandwidth(&topology, &infra, &outcome.placement),
                outcome.reserved_bandwidth,
                "case {case}"
            );
            assert!(outcome.objective >= 0.0, "case {case}");
            assert!(outcome.objective.is_finite(), "case {case}");

            let snapshot = state.clone();
            scheduler.commit(&topology, &outcome.placement, &mut state).unwrap();
            assert_eq!(
                state.total_reserved_bandwidth(&infra),
                outcome.reserved_bandwidth,
                "case {case}"
            );
            scheduler.release(&topology, &outcome.placement, &mut state).unwrap();
            assert_eq!(state, snapshot, "case {case}");
        }
    }
}

/// The A* search never returns a worse objective than plain EG on the
/// same instance (it falls back to the EG bound at worst).
#[test]
fn bounded_astar_dominates_greedy() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a1c_1000 + case);
        let infra = random_infra(&mut rng);
        let topology = random_topo(&mut rng);
        let state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let base = PlacementRequest {
            parallel: false,
            max_expansions: 2_000,
            ..PlacementRequest::default()
        };
        let eg = scheduler.place(
            &topology,
            &state,
            &PlacementRequest { algorithm: Algorithm::Greedy, ..base.clone() },
        );
        let ba = scheduler.place(
            &topology,
            &state,
            &PlacementRequest { algorithm: Algorithm::BoundedAStar, ..base },
        );
        if let (Ok(eg), Ok(ba)) = (eg, ba) {
            assert!(
                ba.objective <= eg.objective + 1e-9,
                "case {case}: BA* {} worse than EG {}",
                ba.objective,
                eg.objective
            );
        }
    }
}

/// Diversity zones hold in every successful placement, checked
/// structurally (not via the shared validator).
#[test]
fn diversity_zones_always_hold() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9a1c_2000 + case);
        let infra = random_infra(&mut rng);
        let topology = random_topo(&mut rng);
        let state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let request = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        if let Ok(outcome) = scheduler.place(&topology, &state, &request) {
            for zone in topology.zones() {
                let members = zone.members();
                for (i, &a) in members.iter().enumerate() {
                    for &b in &members[i + 1..] {
                        let ha = outcome.placement.host_of(a);
                        let hb = outcome.placement.host_of(b);
                        assert!(infra.satisfies_diversity(ha, hb, zone.level()), "case {case}");
                    }
                }
            }
        }
    }
}
