//! Property-based tests: whatever random topology and data center we
//! throw at the engine, a returned placement never violates any
//! constraint, accounting always balances, and state round-trips.

use ostro::core::{
    reserved_bandwidth, verify_placement, Algorithm, PlacementRequest, Scheduler,
};
use ostro::datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
use ostro::model::{
    ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomInfra {
    racks: usize,
    hosts_per_rack: usize,
    vcpus: u32,
    memory_gb: u64,
    disk_gb: u64,
    nic_mbps: u64,
}

fn infra_strategy() -> impl Strategy<Value = RandomInfra> {
    (1usize..4, 1usize..5, 4u32..32, 8u64..64, 100u64..1_000, 1_000u64..10_000).prop_map(
        |(racks, hosts_per_rack, vcpus, memory_gb, disk_gb, nic_mbps)| RandomInfra {
            racks,
            hosts_per_rack,
            vcpus,
            memory_gb,
            disk_gb,
            nic_mbps,
        },
    )
}

fn build_infra(spec: &RandomInfra) -> Infrastructure {
    InfrastructureBuilder::flat(
        "p",
        spec.racks,
        spec.hosts_per_rack,
        Resources::new(spec.vcpus, spec.memory_gb * 1024, spec.disk_gb),
        Bandwidth::from_mbps(spec.nic_mbps),
        Bandwidth::from_gbps(100),
    )
    .build()
    .expect("non-degenerate spec")
}

#[derive(Debug, Clone)]
struct RandomTopo {
    vms: Vec<(u32, u64)>,
    volumes: Vec<u64>,
    links: Vec<(usize, usize, u64)>,
    zone: Option<(Vec<usize>, bool)>, // member indices, rack-level?
}

fn topo_strategy() -> impl Strategy<Value = RandomTopo> {
    let vms = prop::collection::vec((1u32..4, 1u64..4), 1..8);
    let volumes = prop::collection::vec(1u64..50, 0..4);
    (vms, volumes).prop_flat_map(|(vms, volumes)| {
        let n = vms.len() + volumes.len();
        let links = prop::collection::vec((0..n, 0..n, 1u64..200), 0..12);
        let zone = prop::option::of((prop::collection::vec(0..n, 1..4), any::<bool>()));
        (Just(vms), Just(volumes), links, zone).prop_map(|(vms, volumes, links, zone)| {
            RandomTopo { vms, volumes, links, zone }
        })
    })
}

fn build_topo(spec: &RandomTopo) -> ApplicationTopology {
    let mut b = TopologyBuilder::new("prop");
    let mut ids = Vec::new();
    for (i, &(vcpus, mem_gb)) in spec.vms.iter().enumerate() {
        ids.push(b.vm(format!("vm{i}"), vcpus, mem_gb * 1024).unwrap());
    }
    for (i, &size) in spec.volumes.iter().enumerate() {
        ids.push(b.volume(format!("vol{i}"), size).unwrap());
    }
    for &(a, c, bw) in &spec.links {
        if a != c {
            // Duplicate links are rejected; ignore those samples.
            let _ = b.link(ids[a], ids[c], Bandwidth::from_mbps(bw));
        }
    }
    if let Some((members, rack_level)) = &spec.zone {
        let mut unique: Vec<_> = members.iter().map(|&m| ids[m]).collect();
        unique.sort();
        unique.dedup();
        let level = if *rack_level { DiversityLevel::Rack } else { DiversityLevel::Host };
        b.diversity_zone("z", level, &unique).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any placement the engine returns satisfies every constraint,
    /// reports its bandwidth correctly, and commits/releases cleanly.
    #[test]
    fn placements_are_always_valid(
        ispec in infra_strategy(),
        tspec in topo_strategy(),
        greedy in any::<bool>(),
    ) {
        let infra = build_infra(&ispec);
        let topology = build_topo(&tspec);
        let mut state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let request = PlacementRequest {
            algorithm: if greedy { Algorithm::Greedy } else { Algorithm::GreedyBandwidth },
            parallel: false,
            ..PlacementRequest::default()
        };
        // Infeasible combinations are fine; only successes are checked.
        if let Ok(outcome) = scheduler.place(&topology, &state, &request) {
            let violations =
                verify_placement(&topology, &infra, &state, &outcome.placement).unwrap();
            prop_assert!(violations.is_empty(), "{violations:?}");
            prop_assert_eq!(
                reserved_bandwidth(&topology, &infra, &outcome.placement),
                outcome.reserved_bandwidth
            );
            prop_assert!(outcome.objective >= 0.0);
            prop_assert!(outcome.objective.is_finite());

            let snapshot = state.clone();
            scheduler.commit(&topology, &outcome.placement, &mut state).unwrap();
            prop_assert_eq!(
                state.total_reserved_bandwidth(&infra),
                outcome.reserved_bandwidth
            );
            scheduler.release(&topology, &outcome.placement, &mut state).unwrap();
            prop_assert_eq!(&state, &snapshot);
        }
    }

    /// The A* search never returns a worse objective than plain EG on
    /// the same instance (it falls back to the EG bound at worst).
    #[test]
    fn bounded_astar_dominates_greedy(
        ispec in infra_strategy(),
        tspec in topo_strategy(),
    ) {
        let infra = build_infra(&ispec);
        let topology = build_topo(&tspec);
        let state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let base = PlacementRequest {
            parallel: false,
            max_expansions: 2_000,
            ..PlacementRequest::default()
        };
        let eg = scheduler.place(&topology, &state, &PlacementRequest {
            algorithm: Algorithm::Greedy, ..base.clone()
        });
        let ba = scheduler.place(&topology, &state, &PlacementRequest {
            algorithm: Algorithm::BoundedAStar, ..base
        });
        if let (Ok(eg), Ok(ba)) = (eg, ba) {
            prop_assert!(ba.objective <= eg.objective + 1e-9,
                "BA* {} worse than EG {}", ba.objective, eg.objective);
        }
    }

    /// Diversity zones hold in every successful placement, checked
    /// structurally (not via the shared validator).
    #[test]
    fn diversity_zones_always_hold(
        ispec in infra_strategy(),
        tspec in topo_strategy(),
    ) {
        let infra = build_infra(&ispec);
        let topology = build_topo(&tspec);
        let state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let request = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        if let Ok(outcome) = scheduler.place(&topology, &state, &request) {
            for zone in topology.zones() {
                let members = zone.members();
                for (i, &a) in members.iter().enumerate() {
                    for &b in &members[i + 1..] {
                        let ha = outcome.placement.host_of(a);
                        let hb = outcome.placement.host_of(b);
                        prop_assert!(infra.satisfies_diversity(ha, hb, zone.level()));
                    }
                }
            }
        }
    }
}
