//! Tests for best-effort CPU reservations — the paper's §VI future
//! work: "a VM could have a guaranteed or best effort CPU reservation".
//! Best-effort vCPUs are opportunistic: they reserve no host CPU
//! capacity (memory stays guaranteed), letting the scheduler
//! oversubscribe CPU deliberately.

use ostro::core::{verify_placement, PlacementRequest, Scheduler};
use ostro::datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
use ostro::model::{Bandwidth, Resources, TopologyBuilder, TopologyDelta};

fn small_infra() -> Infrastructure {
    InfrastructureBuilder::flat(
        "dc",
        1,
        2,
        Resources::new(4, 16_384, 500),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()
    .unwrap()
}

#[test]
fn best_effort_vms_oversubscribe_cpu_but_not_memory() {
    let infra = small_infra();
    // Six 2-vCPU VMs on 2 hosts x 4 cores: guaranteed VMs cannot all
    // fit (12 > 8 cores), best-effort ones can (only memory counts).
    let mut guaranteed = TopologyBuilder::new("guaranteed");
    for i in 0..6 {
        guaranteed.vm(format!("g{i}"), 2, 2_048).unwrap();
    }
    let guaranteed = guaranteed.build().unwrap();

    let mut burst = TopologyBuilder::new("burst");
    for i in 0..6 {
        burst.vm_best_effort(format!("b{i}"), 2, 2_048).unwrap();
    }
    let burst = burst.build().unwrap();

    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let request = PlacementRequest::default();

    assert!(
        scheduler.place(&guaranteed, &state, &request).is_err(),
        "12 guaranteed vCPUs cannot fit in 8 cores"
    );
    let outcome = scheduler.place(&burst, &state, &request).unwrap();
    assert!(verify_placement(&burst, &infra, &state, &outcome.placement).unwrap().is_empty());

    // Memory is still a hard limit: 16 GB per host, 2 GB per VM means
    // at most 8 per host; 20 best-effort VMs (40 GB) cannot fit on 2
    // hosts (32 GB).
    let mut too_much_memory = TopologyBuilder::new("oom");
    for i in 0..20 {
        too_much_memory.vm_best_effort(format!("m{i}"), 1, 2_048).unwrap();
    }
    let too_much_memory = too_much_memory.build().unwrap();
    assert!(scheduler.place(&too_much_memory, &state, &request).is_err());
}

#[test]
fn best_effort_survives_serde_delta_and_heat_round_trips() {
    let mut b = TopologyBuilder::new("t");
    let g = b.vm("steady", 2, 2_048).unwrap();
    let e = b.vm_best_effort("burst", 4, 4_096).unwrap();
    b.link(g, e, Bandwidth::from_mbps(50)).unwrap();
    let topo = b.build().unwrap();
    assert!(!topo.node(g).is_best_effort());
    assert!(topo.node(e).is_best_effort());
    assert_eq!(topo.node(e).requirements().vcpus, 0);
    assert_eq!(topo.node(e).requirements().memory_mb, 4_096);

    // Serde.
    let json = serde_json::to_string(&topo).unwrap();
    let back: ostro::model::ApplicationTopology = serde_json::from_str(&json).unwrap();
    assert!(back.node_by_name("burst").unwrap().is_best_effort());

    // Delta rebuild + best-effort addition.
    let mut delta = TopologyDelta::new();
    let extra = delta.add_vm_best_effort("burst2", 2, 1_024);
    let (t2, mapping) = delta.apply(&topo).unwrap();
    assert!(t2.node_by_name("burst").unwrap().is_best_effort());
    assert!(t2.node(mapping.id_of_pending(extra)).is_best_effort());
    assert!(!t2.node_by_name("steady").unwrap().is_best_effort());

    // Heat template round trip.
    let template = ostro::heat::topology_to_template(&topo);
    let json = serde_json::to_string(&template).unwrap();
    assert!(json.contains("best_effort_cpu"), "{json}");
    let (t3, _) = ostro::heat::extract_topology(&template).unwrap();
    assert!(t3.node_by_name("burst").unwrap().is_best_effort());
    assert!(!t3.node_by_name("steady").unwrap().is_best_effort());
}

#[test]
fn heat_template_parses_best_effort_flag() {
    let template: ostro::heat::HeatTemplate = serde_json::from_str(
        r#"{
      "heat_template_version": "2015-04-30",
      "resources": {
        "batch": {"type": "OS::Nova::Server",
                  "properties": {"vcpus": 8, "memory_mb": 4096,
                                  "best_effort_cpu": true}},
        "api":   {"type": "OS::Nova::Server",
                  "properties": {"vcpus": 2, "memory_mb": 2048}}
      }
    }"#,
    )
    .unwrap();
    let (topo, _) = ostro::heat::extract_topology(&template).unwrap();
    assert!(topo.node_by_name("batch").unwrap().is_best_effort());
    assert!(!topo.node_by_name("api").unwrap().is_best_effort());
    // An 8-vCPU best-effort batch job fits next to the api VM on a
    // 4-core host.
    let infra = small_infra();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let outcome = scheduler.place(&topo, &state, &PlacementRequest::default()).unwrap();
    assert!(verify_placement(&topo, &infra, &state, &outcome.placement).unwrap().is_empty());
}
