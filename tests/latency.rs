//! Tests for the latency (proximity) bound extension — the paper's §VI
//! future work: "latency requirements for the communication links
//! between nodes".

use ostro::core::{
    verify_placement, Algorithm, PlacementError, PlacementRequest, Scheduler, Violation,
};
use ostro::datacenter::{CapacityState, HostId, Infrastructure, InfrastructureBuilder};
use ostro::model::{
    Bandwidth, DiversityLevel, Proximity, Resources, TopologyBuilder, TopologyDelta,
};
use std::time::Duration;

fn infra() -> Infrastructure {
    InfrastructureBuilder::flat(
        "dc",
        3,
        4,
        Resources::new(8, 16_384, 500),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()
    .unwrap()
}

#[test]
fn rack_bound_keeps_endpoints_in_one_rack() {
    let infra = infra();
    let mut b = TopologyBuilder::new("t");
    let a = b.vm("a", 4, 4_096).unwrap();
    let c = b.vm("c", 4, 4_096).unwrap();
    // Host diversity forces a != c hosts; rack proximity keeps them close.
    b.link_within(a, c, Bandwidth::from_mbps(100), Proximity::Rack).unwrap();
    b.diversity_zone("z", DiversityLevel::Host, &[a, c]).unwrap();
    let topology = b.build().unwrap();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);

    for algorithm in [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::BoundedAStar,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(1) },
    ] {
        let request = PlacementRequest { algorithm, ..PlacementRequest::default() };
        let outcome = scheduler.place(&topology, &state, &request).unwrap();
        let ha = outcome.placement.host_of(a);
        let hc = outcome.placement.host_of(c);
        assert_ne!(ha, hc, "{algorithm:?}: diversity");
        assert!(infra.within(ha, hc, Proximity::Rack), "{algorithm:?}: proximity");
        assert!(verify_placement(&topology, &infra, &state, &outcome.placement)
            .unwrap()
            .is_empty());
    }
}

#[test]
fn host_bound_forces_colocation() {
    let infra = infra();
    let mut b = TopologyBuilder::new("t");
    let vm = b.vm("vm", 2, 2_048).unwrap();
    let vol = b.volume("vol", 100).unwrap();
    b.link_within(vm, vol, Bandwidth::from_mbps(500), Proximity::Host).unwrap();
    let topology = b.build().unwrap();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let outcome = scheduler.place(&topology, &state, &PlacementRequest::default()).unwrap();
    assert_eq!(outcome.placement.host_of(vm), outcome.placement.host_of(vol));
    assert_eq!(outcome.reserved_bandwidth, Bandwidth::ZERO);
}

#[test]
fn contradictory_bounds_are_infeasible() {
    let infra = infra();
    let mut b = TopologyBuilder::new("t");
    let a = b.vm("a", 2, 2_048).unwrap();
    let c = b.vm("c", 2, 2_048).unwrap();
    // Must share a host AND sit in different racks: impossible.
    b.link_within(a, c, Bandwidth::from_mbps(10), Proximity::Host).unwrap();
    b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
    let topology = b.build().unwrap();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let err = scheduler.place(&topology, &state, &PlacementRequest::default()).unwrap_err();
    assert!(matches!(err, PlacementError::Infeasible { .. } | PlacementError::Exhausted));
}

#[test]
fn validator_reports_proximity_violations() {
    let infra = infra();
    let mut b = TopologyBuilder::new("t");
    let a = b.vm("a", 2, 2_048).unwrap();
    let c = b.vm("c", 2, 2_048).unwrap();
    b.link_within(a, c, Bandwidth::from_mbps(10), Proximity::Rack).unwrap();
    let topology = b.build().unwrap();
    let state = CapacityState::new(&infra);
    // Hand-build a violating placement: hosts 0 and 4 are in racks 0 and 1.
    let placement = ostro::core::Placement::new(vec![HostId::from_index(0), HostId::from_index(4)]);
    let violations = verify_placement(&topology, &infra, &state, &placement).unwrap();
    assert_eq!(violations.len(), 1);
    assert!(matches!(violations[0], Violation::Proximity { bound: Proximity::Rack, .. }));
    assert!(violations[0].to_string().contains("latency bound"));
}

#[test]
fn proximity_survives_serde_and_deltas() {
    let mut b = TopologyBuilder::new("t");
    let a = b.vm("a", 2, 2_048).unwrap();
    let c = b.vm("c", 2, 2_048).unwrap();
    b.link_within(a, c, Bandwidth::from_mbps(10), Proximity::Pod).unwrap();
    let topology = b.build().unwrap();

    // Serde round trip.
    let json = serde_json::to_string(&topology).unwrap();
    let back: ostro::model::ApplicationTopology = serde_json::from_str(&json).unwrap();
    assert_eq!(back.links()[0].max_proximity(), Some(Proximity::Pod));

    // Delta rebuild keeps the bound, and new bounded links work.
    let mut delta = TopologyDelta::new();
    let d = delta.add_vm("d", 1, 1_024);
    delta.add_link_within(c, d, Bandwidth::from_mbps(5), Proximity::Rack);
    let (t2, mapping) = delta.apply(&topology).unwrap();
    assert_eq!(t2.links()[0].max_proximity(), Some(Proximity::Pod));
    let new_id = mapping.id_of_pending(d);
    let new_link = t2.links().iter().find(|l| l.touches(new_id)).unwrap();
    assert_eq!(new_link.max_proximity(), Some(Proximity::Rack));
}

#[test]
fn heat_pipes_carry_latency_bounds() {
    let template: ostro::heat::HeatTemplate = serde_json::from_str(
        r#"{
      "heat_template_version": "2015-04-30",
      "resources": {
        "a": {"type": "OS::Nova::Server", "properties": {"vcpus": 1, "memory_mb": 1024}},
        "b": {"type": "OS::Nova::Server", "properties": {"vcpus": 1, "memory_mb": 1024}},
        "p": {"type": "ATT::QoS::Pipe",
              "properties": {"between": ["a", "b"], "bandwidth_mbps": 50,
                              "within": "rack"}}
      }
    }"#,
    )
    .unwrap();
    let (topology, _) = ostro::heat::extract_topology(&template).unwrap();
    assert_eq!(topology.links()[0].max_proximity(), Some(Proximity::Rack));
    // Round-trips back into the template dialect.
    let rendered = ostro::heat::topology_to_template(&topology);
    let json = serde_json::to_string(&rendered).unwrap();
    assert!(json.contains(r#""within":"rack""#));
}
