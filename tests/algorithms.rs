//! Cross-algorithm invariants from the paper's evaluation.

use ostro::core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};
use ostro::datacenter::CapacityState;
use ostro::sim::scenarios::qfs_testbed;
use ostro::sim::workloads::{mesh, multi_tier, qfs_topology};
use ostro::sim::RequirementMix;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn request(algorithm: Algorithm) -> PlacementRequest {
    PlacementRequest {
        algorithm,
        weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
        ..PlacementRequest::default()
    }
}

/// Table I's headline: the holistic algorithms reserve far less
/// bandwidth than compute bin-packing, without burning idle hosts.
#[test]
fn qfs_non_uniform_shape_matches_table_one() {
    let (infra, state) = qfs_testbed(true).unwrap();
    let topology = qfs_topology().unwrap();
    let scheduler = Scheduler::new(&infra);

    let egc = scheduler.place(&topology, &state, &request(Algorithm::GreedyCompute)).unwrap();
    let egbw = scheduler.place(&topology, &state, &request(Algorithm::GreedyBandwidth)).unwrap();
    let eg = scheduler.place(&topology, &state, &request(Algorithm::Greedy)).unwrap();
    let ba = scheduler.place(&topology, &state, &request(Algorithm::BoundedAStar)).unwrap();
    let dba = scheduler
        .place(
            &topology,
            &state,
            &request(Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(500) }),
        )
        .unwrap();

    // EGC reserves much more bandwidth than everyone else.
    for other in [&egbw, &eg, &ba, &dba] {
        assert!(
            egc.reserved_bandwidth.as_mbps() as f64
                >= 1.5 * other.reserved_bandwidth.as_mbps() as f64,
            "EGC {} vs {}",
            egc.reserved_bandwidth,
            other.reserved_bandwidth
        );
    }
    // EGC consolidates (no new hosts); EGBW burns idle hosts.
    assert_eq!(egc.new_active_hosts, 0);
    assert!(egbw.new_active_hosts >= 1);
    // EG matches the A* searches here and activates no idle host.
    assert_eq!(eg.new_active_hosts, 0);
    assert!(ba.objective <= eg.objective + 1e-9, "BA* never loses to EG");
    assert!(dba.objective <= eg.objective + 1e-9, "DBA* never loses to EG");
    // The 12 chunk servers force 12 distinct hosts.
    for outcome in [&egc, &egbw, &eg, &ba, &dba] {
        assert!(outcome.hosts_used >= 12);
    }
}

/// Table II: under uniform availability every algorithm except EGC
/// lands on the same (minimal) bandwidth.
#[test]
fn qfs_uniform_all_but_egc_agree() {
    let (infra, state) = qfs_testbed(false).unwrap();
    let topology = qfs_topology().unwrap();
    let scheduler = Scheduler::new(&infra);
    let egbw = scheduler.place(&topology, &state, &request(Algorithm::GreedyBandwidth)).unwrap();
    let eg = scheduler.place(&topology, &state, &request(Algorithm::Greedy)).unwrap();
    let ba = scheduler.place(&topology, &state, &request(Algorithm::BoundedAStar)).unwrap();
    assert_eq!(egbw.reserved_bandwidth, eg.reserved_bandwidth);
    assert_eq!(eg.reserved_bandwidth, ba.reserved_bandwidth);
    let egc = scheduler.place(&topology, &state, &request(Algorithm::GreedyCompute)).unwrap();
    assert!(egc.reserved_bandwidth >= eg.reserved_bandwidth);
}

/// §IV-B (last paragraph): raising θc makes the A* searches adjust
/// their placement while the greedy variants keep their fixed sort.
#[test]
fn weight_change_does_not_break_any_algorithm() {
    let (infra, state) = qfs_testbed(true).unwrap();
    let topology = qfs_topology().unwrap();
    let scheduler = Scheduler::new(&infra);
    let weights = ObjectiveWeights::new(0.6, 0.4).unwrap();
    for algorithm in [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::BoundedAStar,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(500) },
    ] {
        let req = PlacementRequest { algorithm, weights, ..PlacementRequest::default() };
        let outcome = scheduler.place(&topology, &state, &req).unwrap();
        assert!(ostro::core::verify_placement(&topology, &infra, &state, &outcome.placement)
            .unwrap()
            .is_empty());
        // With a meaningful host weight nobody should activate all
        // four idle hosts for this small app.
        if matches!(algorithm, Algorithm::BoundedAStar | Algorithm::DeadlineBoundedAStar { .. }) {
            assert!(outcome.new_active_hosts <= 1, "{algorithm:?}");
        }
    }
}

/// Placements are deterministic for a fixed seed (required for the
/// reproducibility of every table in EXPERIMENTS.md).
#[test]
fn placements_are_deterministic() {
    let mix = RequirementMix::heterogeneous();
    let topo = multi_tier(25, &mix, &mut SmallRng::seed_from_u64(5)).unwrap();
    let (infra, state) = qfs_testbed(false).unwrap();
    let scheduler = Scheduler::new(&infra);
    for algorithm in
        [Algorithm::Greedy, Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(1) }]
    {
        let req = request(algorithm);
        let a = scheduler.place(&topo, &state, &req).unwrap();
        let b = scheduler.place(&topo, &state, &req).unwrap();
        assert_eq!(a.placement, b.placement, "{algorithm:?}");
    }
    let _ = state;
}

/// DBA\* respects its deadline up to one expansion plus one greedy
/// completion of slack.
#[test]
fn dbastar_deadline_is_roughly_respected() {
    let mix = RequirementMix::homogeneous();
    let mut rng = SmallRng::seed_from_u64(1);
    let topo = mesh(8, &mix, &mut rng).unwrap();
    let (infra, _) = qfs_testbed(false).unwrap();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let deadline = Duration::from_millis(200);
    let started = Instant::now();
    let outcome = scheduler
        .place(&topo, &state, &request(Algorithm::DeadlineBoundedAStar { deadline }))
        .unwrap();
    // Slack: the initial greedy bound runs to completion regardless.
    assert!(started.elapsed() < Duration::from_secs(30));
    assert!(ostro::core::verify_placement(&topo, &infra, &state, &outcome.placement)
        .unwrap()
        .is_empty());
}

/// Zone-symmetry reduction must never change feasibility, only speed.
#[test]
fn symmetry_reduction_preserves_validity_and_quality() {
    let mix = RequirementMix::homogeneous();
    let topo = multi_tier(25, &mix, &mut SmallRng::seed_from_u64(9)).unwrap();
    let (infra, state) = qfs_testbed(false).unwrap();
    let scheduler = Scheduler::new(&infra);
    let on = PlacementRequest {
        algorithm: Algorithm::BoundedAStar,
        zone_symmetry: true,
        max_expansions: 500,
        ..PlacementRequest::default()
    };
    let off = PlacementRequest { zone_symmetry: false, ..on.clone() };
    let with_sym = scheduler.place(&topo, &state, &on).unwrap();
    let without_sym = scheduler.place(&topo, &state, &off).unwrap();
    for outcome in [&with_sym, &without_sym] {
        assert!(ostro::core::verify_placement(&topo, &infra, &state, &outcome.placement)
            .unwrap()
            .is_empty());
    }
    // Same objective: the symmetric orderings are interchangeable.
    assert!((with_sym.objective - without_sym.objective).abs() < 1e-6);
}
