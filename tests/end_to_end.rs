//! Workspace integration tests: the full template → placement →
//! deployment → teardown pipeline across crates.

use ostro::core::{verify_placement, Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};
use ostro::datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
use ostro::heat::{extract_topology, CloudController, HeatTemplate};
use ostro::model::{Bandwidth, Resources};
use std::time::Duration;

fn infra() -> Infrastructure {
    InfrastructureBuilder::flat(
        "dc",
        3,
        8,
        Resources::new(16, 32_768, 1_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()
    .unwrap()
}

fn template() -> HeatTemplate {
    serde_json::from_str(
        r#"{
      "heat_template_version": "2015-04-30",
      "resources": {
        "web1": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 4096}},
        "web2": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 4096}},
        "db":   {"type": "OS::Nova::Server", "properties": {"vcpus": 4, "memory_mb": 8192}},
        "vol":  {"type": "OS::Cinder::Volume", "properties": {"size_gb": 200}},
        "p1": {"type": "ATT::QoS::Pipe",
               "properties": {"between": ["web1", "db"], "bandwidth_mbps": 100}},
        "p2": {"type": "ATT::QoS::Pipe",
               "properties": {"between": ["web2", "db"], "bandwidth_mbps": 100}},
        "att": {"type": "OS::Cinder::VolumeAttachment",
                "properties": {"instance": "db", "volume": "vol", "bandwidth_mbps": 300}},
        "dz": {"type": "ATT::QoS::DiversityZone",
               "properties": {"level": "rack", "members": ["web1", "web2"]}}
      }
    }"#,
    )
    .unwrap()
}

#[test]
fn template_to_placement_to_commit_is_consistent() {
    let infra = infra();
    let (topology, _names) = extract_topology(&template()).unwrap();
    let mut state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);

    for algorithm in [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::BoundedAStar,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(2) },
    ] {
        let request = PlacementRequest { algorithm, ..PlacementRequest::default() };
        let outcome = scheduler.place(&topology, &state, &request).unwrap();
        // Independent re-verification of all constraint classes.
        let violations = verify_placement(&topology, &infra, &state, &outcome.placement).unwrap();
        assert!(violations.is_empty(), "{algorithm:?}: {violations:?}");
        // Reported ubw matches a from-scratch recomputation.
        assert_eq!(
            ostro::core::reserved_bandwidth(&topology, &infra, &outcome.placement),
            outcome.reserved_bandwidth,
            "{algorithm:?}"
        );

        let snapshot = state.clone();
        scheduler.commit(&topology, &outcome.placement, &mut state).unwrap();
        assert_eq!(
            state.total_reserved_bandwidth(&infra),
            snapshot.total_reserved_bandwidth(&infra) + outcome.reserved_bandwidth,
            "{algorithm:?}"
        );
        scheduler.release(&topology, &outcome.placement, &mut state).unwrap();
        assert_eq!(state, snapshot, "{algorithm:?}");
    }
}

#[test]
fn stacks_share_one_cloud_and_tear_down_cleanly() {
    let infra = infra();
    let mut cloud = CloudController::new(&infra);
    let pristine = cloud.state().clone();
    let request = PlacementRequest::default();

    let a = cloud.create_stack("a", template(), &request).unwrap();
    let b = cloud.create_stack("b", template(), &request).unwrap();
    let c = cloud.create_stack("c", template(), &request).unwrap();
    assert_eq!(cloud.nova().instance_count(), 9);
    assert_eq!(cloud.cinder().volume_count(), 3);

    // Every stack's placement is valid against the *pristine* capacity
    // minus the other stacks — easiest check: cloud-wide bandwidth is
    // the sum of the parts.
    let total: Bandwidth =
        [a, b, c].iter().map(|&id| cloud.stack(id).unwrap().outcome.reserved_bandwidth).sum();
    assert_eq!(cloud.reserved_bandwidth(), total);

    cloud.delete_stack(b).unwrap();
    assert_eq!(cloud.nova().instance_count(), 6);
    cloud.delete_stack(a).unwrap();
    cloud.delete_stack(c).unwrap();
    assert_eq!(*cloud.state(), pristine);
    assert_eq!(cloud.reserved_bandwidth(), Bandwidth::ZERO);
}

#[test]
fn capacity_pressure_forces_spread_and_eventually_infeasibility() {
    let small = InfrastructureBuilder::flat(
        "tiny",
        1,
        2,
        Resources::new(4, 8_192, 250),
        Bandwidth::from_gbps(1),
        Bandwidth::from_gbps(10),
    )
    .build()
    .unwrap();
    let mut cloud = CloudController::new(&small);
    let request = PlacementRequest::default();
    // First stack fits; the two web VMs need rack diversity but there
    // is a single rack -> infeasible.
    let err = cloud.create_stack("a", template(), &request).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("placement failed"), "{msg}");
}

#[test]
fn weights_trade_hosts_for_bandwidth() {
    // A chain of 4 linked VMs that fit on one host: bandwidth-dominant
    // weights co-locate everything; host weight zero with bandwidth
    // weight zero... must still be valid either way.
    let infra = infra();
    let mut b = ostro::model::TopologyBuilder::new("chain");
    let mut prev = b.vm("v0", 2, 2_048).unwrap();
    for i in 1..4 {
        let v = b.vm(format!("v{i}"), 2, 2_048).unwrap();
        b.link(prev, v, Bandwidth::from_mbps(200)).unwrap();
        prev = v;
    }
    let topology = b.build().unwrap();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);

    let bw_first = scheduler
        .place(
            &topology,
            &state,
            &PlacementRequest::default().weights(ObjectiveWeights::BANDWIDTH_DOMINANT),
        )
        .unwrap();
    assert_eq!(bw_first.reserved_bandwidth, Bandwidth::ZERO);
    assert_eq!(bw_first.hosts_used, 1);

    let hosts_first = scheduler
        .place(
            &topology,
            &state,
            &PlacementRequest::default().weights(ObjectiveWeights::new(0.01, 0.99).unwrap()),
        )
        .unwrap();
    // Host-dominant weights can never use more new hosts than exist
    // nodes, and the placement is still valid.
    let violations = verify_placement(&topology, &infra, &state, &hosts_first.placement).unwrap();
    assert!(violations.is_empty());
    assert!(hosts_first.new_active_hosts <= bw_first.new_active_hosts.max(1));
}
