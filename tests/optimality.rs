//! Brute-force ground truth on tiny instances: enumerate every
//! feasible assignment, find the true optimum, and check how the
//! search algorithms compare.
//!
//! BA\* is not guaranteed exactly optimal here (the §III-A2 estimate
//! can over-state the cost of capacity-forced splits and prune the
//! optimum — the paper's own caveat about heuristic search), but it
//! must never lose to EG and, on these instances, it lands on the true
//! optimum.

use ostro::core::{
    reserved_bandwidth, verify_placement, Algorithm, ObjectiveWeights, Placement, PlacementRequest,
    Scheduler,
};
use ostro::datacenter::{CapacityState, HostId, Infrastructure, InfrastructureBuilder};
use ostro::model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};

fn enumerate_optimum(
    topology: &ApplicationTopology,
    infra: &Infrastructure,
    state: &CapacityState,
    weights: ObjectiveWeights,
) -> Option<(f64, Placement)> {
    let hosts = infra.host_count();
    let nodes = topology.node_count();
    let idle = infra.host_count() - state.active_host_count();
    let norm_bw = (topology.total_link_bandwidth().as_mbps() * infra.max_hop_cost()) as f64;
    let norm_bw = norm_bw.max(1.0);
    let norm_c = (nodes.min(idle) as f64).max(1.0);

    let mut best: Option<(f64, Placement)> = None;
    let total = (hosts as u64).pow(nodes as u32);
    for code in 0..total {
        let mut c = code;
        let assignment: Vec<HostId> = (0..nodes)
            .map(|_| {
                let h = HostId::from_index((c % hosts as u64) as u32);
                c /= hosts as u64;
                h
            })
            .collect();
        let placement = Placement::new(assignment);
        if !verify_placement(topology, infra, state, &placement).expect("sizes match").is_empty() {
            continue;
        }
        let ubw = reserved_bandwidth(topology, infra, &placement).as_mbps() as f64;
        let new_hosts = placement
            .assignments()
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .iter()
            .filter(|&&&h| !state.is_active(h))
            .count() as f64;
        let u = weights.bandwidth * ubw / norm_bw + weights.hosts * new_hosts / norm_c;
        if best.as_ref().is_none_or(|(bu, _)| u < *bu - 1e-12) {
            best = Some((u, placement));
        }
    }
    best
}

struct Case {
    topology: ApplicationTopology,
    infra: Infrastructure,
    state: CapacityState,
}

fn cases() -> Vec<Case> {
    let infra = |racks: usize, hosts: usize, vcpus: u32| {
        InfrastructureBuilder::flat(
            "dc",
            racks,
            hosts,
            Resources::new(vcpus, 16_384, 500),
            Bandwidth::from_gbps(1),
            Bandwidth::from_gbps(10),
        )
        .build()
        .unwrap()
    };
    let mut out = Vec::new();

    // Case 1: linked pair + volume, everything co-locatable.
    {
        let mut b = TopologyBuilder::new("c1");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        let v = b.volume("v", 100).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, v, Bandwidth::from_mbps(50)).unwrap();
        let i = infra(2, 2, 8);
        let state = CapacityState::new(&i);
        out.push(Case { topology: b.build().unwrap(), infra: i, state });
    }

    // Case 2: host diversity forces a split; rack choice matters.
    {
        let mut b = TopologyBuilder::new("c2");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        let d = b.vm("d", 1, 1_024).unwrap();
        b.link(a, c, Bandwidth::from_mbps(200)).unwrap();
        b.link(c, d, Bandwidth::from_mbps(100)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &[a, c]).unwrap();
        let i = infra(2, 2, 8);
        let state = CapacityState::new(&i);
        out.push(Case { topology: b.build().unwrap(), infra: i, state });
    }

    // Case 3: capacity forces spreading (each host fits one VM).
    {
        let mut b = TopologyBuilder::new("c3");
        let a = b.vm("a", 3, 2_048).unwrap();
        let c = b.vm("c", 3, 2_048).unwrap();
        let d = b.vm("d", 3, 1_024).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(a, d, Bandwidth::from_mbps(10)).unwrap();
        let i = infra(2, 2, 4);
        let state = CapacityState::new(&i);
        out.push(Case { topology: b.build().unwrap(), infra: i, state });
    }

    // Case 4: pre-existing load biases the host-count term.
    {
        let mut b = TopologyBuilder::new("c4");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(50)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &[a, c]).unwrap();
        let i = infra(2, 2, 8);
        let mut state = CapacityState::new(&i);
        state.reserve_node(HostId::from_index(1), Resources::new(1, 1_024, 0)).unwrap();
        state.reserve_node(HostId::from_index(2), Resources::new(1, 1_024, 0)).unwrap();
        out.push(Case { topology: b.build().unwrap(), infra: i, state });
    }
    out
}

#[test]
fn bastar_matches_the_brute_force_optimum_on_tiny_instances() {
    let weights = ObjectiveWeights::SIMULATION;
    for (i, case) in cases().iter().enumerate() {
        let (optimal_u, _) = enumerate_optimum(&case.topology, &case.infra, &case.state, weights)
            .unwrap_or_else(|| panic!("case {i} must be feasible"));
        let scheduler = Scheduler::new(&case.infra);
        let request = PlacementRequest {
            algorithm: Algorithm::BoundedAStar,
            weights,
            ..PlacementRequest::default()
        };
        let outcome = scheduler.place(&case.topology, &case.state, &request).unwrap();
        assert!(
            (outcome.objective - optimal_u).abs() < 1e-9,
            "case {i}: BA* found {:.6}, optimum is {:.6}",
            outcome.objective,
            optimal_u
        );
    }
}

#[test]
fn greedy_is_within_the_bound_hierarchy() {
    let weights = ObjectiveWeights::SIMULATION;
    for (i, case) in cases().iter().enumerate() {
        let (optimal_u, _) =
            enumerate_optimum(&case.topology, &case.infra, &case.state, weights).unwrap();
        let scheduler = Scheduler::new(&case.infra);
        let eg = scheduler
            .place(
                &case.topology,
                &case.state,
                &PlacementRequest { weights, ..PlacementRequest::default() },
            )
            .unwrap();
        let ba = scheduler
            .place(
                &case.topology,
                &case.state,
                &PlacementRequest {
                    algorithm: Algorithm::BoundedAStar,
                    weights,
                    ..PlacementRequest::default()
                },
            )
            .unwrap();
        assert!(optimal_u <= ba.objective + 1e-9, "case {i}");
        assert!(ba.objective <= eg.objective + 1e-9, "case {i}");
    }
}
