//! Runtime adaptation under failure: a host dies, and the cloud
//! controller evacuates every affected stack by incrementally
//! re-placing it with the dead host quarantined — untouched nodes stay
//! exactly where they were.
//!
//! Run with: `cargo run --example evacuation`

use ostro::core::PlacementRequest;
use ostro::datacenter::InfrastructureBuilder;
use ostro::heat::{CloudController, HeatTemplate};
use ostro::model::{Bandwidth, Resources};

fn app(name: &str) -> HeatTemplate {
    serde_json::from_str(&format!(
        r#"{{
      "heat_template_version": "2015-04-30",
      "resources": {{
        "{name}-api":  {{"type": "OS::Nova::Server",
                        "properties": {{"vcpus": 2, "memory_mb": 4096}}}},
        "{name}-work": {{"type": "OS::Nova::Server",
                        "properties": {{"vcpus": 4, "memory_mb": 8192}}}},
        "{name}-vol":  {{"type": "OS::Cinder::Volume", "properties": {{"size_gb": 100}}}},
        "{name}-p1": {{"type": "ATT::QoS::Pipe",
                      "properties": {{"between": ["{name}-api", "{name}-work"],
                                       "bandwidth_mbps": 200}}}},
        "{name}-att": {{"type": "OS::Cinder::VolumeAttachment",
                       "properties": {{"instance": "{name}-work",
                                        "volume": "{name}-vol",
                                        "bandwidth_mbps": 150}}}}
      }}
    }}"#
    ))
    .expect("static template is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infra = InfrastructureBuilder::flat(
        "prod",
        3,
        6,
        Resources::new(16, 32_768, 1_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()?;
    let mut cloud = CloudController::new(&infra);
    let request = PlacementRequest::default();

    let ids: Vec<_> = ["billing", "search", "mail"]
        .iter()
        .map(|name| cloud.create_stack(*name, app(name), &request))
        .collect::<Result<_, _>>()?;
    println!(
        "deployed {} stacks across {} active hosts",
        ids.len(),
        cloud.state().active_host_count()
    );

    // Pick the busiest host and declare it dead.
    let dead = infra
        .hosts()
        .iter()
        .map(|h| h.id())
        .max_by_key(|&h| cloud.state().node_count(h))
        .expect("cluster has hosts");
    println!(
        "\nhost {} fails ({} nodes on it) — evacuating...",
        infra.host(dead).name(),
        cloud.state().node_count(dead),
    );

    let moved = cloud.evacuate_host(dead, &request)?;
    println!("moved {} node(s):", moved.len());
    for (stack, resource) in &moved {
        let record = cloud.stack(*stack).expect("stack is live");
        let node = record.names[resource];
        println!(
            "  {:12} ({}) -> {}",
            resource,
            record.name,
            infra.host(record.placement.host_of(node)).name(),
        );
    }
    assert!(cloud.nova().instances().iter().all(|i| i.host != dead));
    assert!(cloud.cinder().volumes().iter().all(|v| v.host != dead));
    println!(
        "\nno workload remains on {}; {} hosts still serve the three stacks",
        infra.host(dead).name(),
        cloud.state().active_host_count(),
    );
    Ok(())
}
