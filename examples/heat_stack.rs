//! The OpenStack pipeline of Fig. 1: submit a QoS-enhanced Heat
//! template to the (simulated) cloud controller, let Ostro decide the
//! placement, and inspect the annotated template and the booted
//! instances.
//!
//! Run with: `cargo run --example heat_stack`

use ostro::core::PlacementRequest;
use ostro::datacenter::InfrastructureBuilder;
use ostro::heat::{CloudController, HeatTemplate};
use ostro::model::{Bandwidth, Resources};

const TEMPLATE: &str = r#"{
  "heat_template_version": "2015-04-30",
  "description": "three-tier web application with QoS pipes",
  "resources": {
    "lb":    {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 2048}},
    "app1":  {"type": "OS::Nova::Server", "properties": {"vcpus": 4, "memory_mb": 8192}},
    "app2":  {"type": "OS::Nova::Server", "properties": {"vcpus": 4, "memory_mb": 8192}},
    "db":    {"type": "OS::Nova::Server", "properties": {"vcpus": 8, "memory_mb": 16384}},
    "dbvol": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 500}},
    "p-lb-app1": {"type": "ATT::QoS::Pipe",
                  "properties": {"between": ["lb", "app1"], "bandwidth_mbps": 300}},
    "p-lb-app2": {"type": "ATT::QoS::Pipe",
                  "properties": {"between": ["lb", "app2"], "bandwidth_mbps": 300}},
    "p-app1-db": {"type": "ATT::QoS::Pipe",
                  "properties": {"between": ["app1", "db"], "bandwidth_mbps": 150}},
    "p-app2-db": {"type": "ATT::QoS::Pipe",
                  "properties": {"between": ["app2", "db"], "bandwidth_mbps": 150}},
    "att-db":    {"type": "OS::Cinder::VolumeAttachment",
                  "properties": {"instance": "db", "volume": "dbvol",
                                  "bandwidth_mbps": 400}},
    "dz-app":    {"type": "ATT::QoS::DiversityZone",
                  "properties": {"level": "rack", "members": ["app1", "app2"]}}
  }
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let template: HeatTemplate = serde_json::from_str(TEMPLATE)?;

    let infra = InfrastructureBuilder::flat(
        "cloud",
        6,
        12,
        Resources::new(24, 65_536, 2_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()?;
    let mut cloud = CloudController::new(&infra);

    let stack_id = cloud.create_stack("webshop", template, &PlacementRequest::default())?;
    let stack = cloud.stack(stack_id).expect("stack just created");

    println!("annotated template:");
    println!("{}", serde_json::to_string_pretty(&stack.annotated)?);

    println!("\nNova instances:");
    for instance in cloud.nova().instances() {
        println!("  {:5} on {}", instance.name, infra.host(instance.host).name());
    }
    println!("Cinder volumes:");
    for volume in cloud.cinder().volumes() {
        println!(
            "  {:5} ({} GB) on {}",
            volume.name,
            volume.size_gb,
            infra.host(volume.host).name()
        );
    }
    println!(
        "\nstack metrics: bandwidth {}, hosts used {}, cloud-wide reserved {}",
        stack.outcome.reserved_bandwidth,
        stack.outcome.hosts_used,
        cloud.reserved_bandwidth(),
    );

    cloud.delete_stack(stack_id)?;
    println!("after teardown, cloud-wide reserved: {}", cloud.reserved_bandwidth());
    Ok(())
}
