//! Online adaptation (§IV-E): scale a running application out by 25%
//! and re-place incrementally — existing nodes stay where they are
//! unless capacity forces repositioning.
//!
//! Run with: `cargo run --example online_scaleout`

use ostro::core::{PlacementRequest, Scheduler};
use ostro::datacenter::{CapacityState, InfrastructureBuilder};
use ostro::model::{Bandwidth, Resources, TopologyBuilder, TopologyDelta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infra = InfrastructureBuilder::flat(
        "dc",
        4,
        8,
        Resources::new(16, 32_768, 1_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()?;
    let scheduler = Scheduler::new(&infra);
    let mut state = CapacityState::new(&infra);

    // Initial deployment: a frontend pool of 4 workers behind a queue.
    let mut b = TopologyBuilder::new("pipeline");
    let queue = b.vm("queue", 4, 8_192)?;
    let workers: Vec<_> =
        (0..4).map(|i| b.vm(format!("worker{i}"), 2, 4_096)).collect::<Result<_, _>>()?;
    for &w in &workers {
        b.link(queue, w, Bandwidth::from_mbps(100))?;
    }
    let topology = b.build()?;

    let request = PlacementRequest::default();
    let initial = scheduler.place(&topology, &state, &request)?;
    scheduler.commit(&topology, &initial.placement, &mut state)?;
    println!("initial placement:");
    for (node, host) in initial.placement.iter() {
        println!("  {:8} -> {}", topology.node(node).name(), infra.host(host).name());
    }

    // Scale out: one more worker, and retire worker0.
    let mut delta = TopologyDelta::new();
    let new_worker = delta.add_vm("worker4", 2, 4_096);
    delta.add_link(queue, new_worker, Bandwidth::from_mbps(100));
    delta.remove_node(workers[0]);
    let (topology2, mapping) = delta.apply(&topology)?;

    // Re-place: release the old usage, pin survivors to their hosts.
    scheduler.release(&topology, &initial.placement, &mut state)?;
    let mut prior = vec![None; topology2.node_count()];
    for (old, new) in mapping.surviving() {
        prior[new.index()] = Some(initial.placement.host_of(old));
    }
    let result = scheduler.replace_online(&topology2, &state, &request, &prior, 4)?;
    scheduler.commit(&topology2, &result.outcome.placement, &mut state)?;

    println!("\nafter scale-out (worker0 retired, worker4 added):");
    for (node, host) in result.outcome.placement.iter() {
        let marker = if mapping.added_ids().contains(&node) {
            " (new)"
        } else if result.repositioned.contains(&node) {
            " (moved)"
        } else {
            ""
        };
        println!("  {:8} -> {}{marker}", topology2.node(node).name(), infra.host(host).name(),);
    }
    println!(
        "\nre-placed in {:?} with {} repositioned node(s) over {} unpin round(s)",
        result.outcome.elapsed,
        result.repositioned.len(),
        result.rounds,
    );
    Ok(())
}
