//! A virtual-network-function service chain — the paper's motivating
//! VNF scenario (§I): firewall → router → CDN caches, with redundant
//! instances spread across racks for reliability and a tight decision
//! deadline, placed over two data-center sites.
//!
//! Run with: `cargo run --release --example vnf_chain`

use std::time::Duration;

use ostro::core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};
use ostro::datacenter::{CapacityState, InfrastructureBuilder};
use ostro::model::{Bandwidth, DiversityLevel, Resources, TopologyBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two sites, each with 2 pods x 3 racks x 8 hosts.
    let mut b = InfrastructureBuilder::new();
    let cap = Resources::new(32, 131_072, 4_000);
    for s in 0..2 {
        let site = b.site(format!("site{s}"), Bandwidth::from_gbps(400));
        for p in 0..2 {
            let pod = b.pod(site, format!("s{s}p{p}"), Bandwidth::from_gbps(200))?;
            for r in 0..3 {
                let rack =
                    b.rack_in_pod(pod, format!("s{s}p{p}r{r}"), Bandwidth::from_gbps(100))?;
                for h in 0..8 {
                    b.host(rack, format!("s{s}p{p}r{r}h{h}"), cap, Bandwidth::from_gbps(25))?;
                }
            }
        }
    }
    let infra = b.build()?;

    // The service chain: 2 firewalls -> 2 routers -> 4 CDN caches,
    // each redundancy group spread across racks; the cache pool spread
    // across pods. Caches write to local volumes.
    let mut t = TopologyBuilder::new("vnf-chain");
    let firewalls: Vec<_> =
        (0..2).map(|i| t.vm(format!("fw{i}"), 8, 16_384)).collect::<Result<_, _>>()?;
    let routers: Vec<_> =
        (0..2).map(|i| t.vm(format!("rt{i}"), 8, 32_768)).collect::<Result<_, _>>()?;
    let caches: Vec<_> =
        (0..4).map(|i| t.vm(format!("cache{i}"), 16, 65_536)).collect::<Result<_, _>>()?;
    for &fw in &firewalls {
        for &rt in &routers {
            t.link(fw, rt, Bandwidth::from_gbps(2))?;
        }
    }
    for (i, &cache) in caches.iter().enumerate() {
        t.link(routers[i % 2], cache, Bandwidth::from_gbps(1))?;
        let vol = t.volume(format!("cache{i}-vol"), 1_000)?;
        t.link(cache, vol, Bandwidth::from_gbps(3))?;
    }
    t.diversity_zone("fw-ha", DiversityLevel::Rack, &firewalls)?;
    t.diversity_zone("rt-ha", DiversityLevel::Rack, &routers)?;
    t.diversity_zone("cache-spread", DiversityLevel::Pod, &caches)?;
    let topology = t.build()?;

    let scheduler = Scheduler::new(&infra);
    let state = CapacityState::new(&infra);
    let request = PlacementRequest {
        algorithm: Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(800) },
        weights: ObjectiveWeights::new(0.8, 0.2)?,
        ..PlacementRequest::default()
    };
    let outcome = scheduler.place(&topology, &state, &request)?;

    println!("VNF chain placement:");
    for (node, host) in outcome.placement.iter() {
        let (rack, pod, site) = infra.location(host);
        println!(
            "  {:11} -> {:12} (rack {}, pod {}, site {})",
            topology.node(node).name(),
            infra.host(host).name(),
            infra.rack(rack).name(),
            infra.pod(pod).name(),
            infra.site(site).name(),
        );
    }
    println!(
        "\nreserved {}, hosts used {}, objective {:.4}, decided in {:?} \
         (deadline 800 ms{})",
        outcome.reserved_bandwidth,
        outcome.hosts_used,
        outcome.objective,
        outcome.elapsed,
        if outcome.stats.deadline_hit { ", deadline hit" } else { "" },
    );

    // Verify the anti-affinity promises actually hold.
    for zone in topology.zones() {
        let members = zone.members();
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                assert!(infra.satisfies_diversity(
                    outcome.placement.host_of(a),
                    outcome.placement.host_of(b),
                    zone.level(),
                ));
            }
        }
        println!("zone `{}` satisfied at {} level", zone.name(), zone.level());
    }
    Ok(())
}
