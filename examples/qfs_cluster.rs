//! The paper's testbed experiment (§IV-A/B): place the QFS cloud
//! storage application — 14 VMs, 15 volumes, a 12-way host diversity
//! zone — onto the 16-host cluster, comparing all five algorithms
//! under non-uniform and uniform resource availability.
//!
//! Run with: `cargo run --release --example qfs_cluster`

use std::time::Duration;

use ostro::core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};
use ostro::sim::scenarios::qfs_testbed;
use ostro::sim::workloads::qfs_topology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topology = qfs_topology()?;
    println!(
        "QFS application: {} VMs, {} volumes, {} links, total demand {}",
        topology.vm_count(),
        topology.volume_count(),
        topology.links().len(),
        topology.total_link_bandwidth(),
    );

    let algorithms = [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::BoundedAStar,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(500) },
    ];

    for (label, non_uniform) in
        [("non-uniform availability (Table I)", true), ("uniform availability (Table II)", false)]
    {
        println!("\n== {label} ==");
        let (infra, state) = qfs_testbed(non_uniform)?;
        let scheduler = Scheduler::new(&infra);
        for algorithm in algorithms {
            let request = PlacementRequest {
                algorithm,
                weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
                ..PlacementRequest::default()
            };
            let outcome = scheduler.place(&topology, &state, &request)?;
            println!(
                "{:5}  bandwidth {:>10}  new hosts {:>2}  hosts used {:>2}  {:>9.3?}",
                algorithm.abbreviation(),
                outcome.reserved_bandwidth.to_string(),
                outcome.new_active_hosts,
                outcome.hosts_used,
                outcome.elapsed,
            );
        }
    }
    Ok(())
}
