//! Quickstart: describe a small application topology, ask Ostro for a
//! holistic placement, and apply it.
//!
//! Run with: `cargo run --example quickstart`

use ostro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The application topology: a load balancer, two web servers
    //    that must sit on different hosts, a database, and its volume.
    let mut b = TopologyBuilder::new("webshop");
    let lb = b.vm("lb", 2, 2_048)?;
    let web1 = b.vm("web1", 2, 4_096)?;
    let web2 = b.vm("web2", 2, 4_096)?;
    let db = b.vm("db", 4, 8_192)?;
    let db_vol = b.volume("db-vol", 200)?;
    b.link(lb, web1, Bandwidth::from_mbps(200))?;
    b.link(lb, web2, Bandwidth::from_mbps(200))?;
    b.link(web1, db, Bandwidth::from_mbps(100))?;
    b.link(web2, db, Bandwidth::from_mbps(100))?;
    b.link(db, db_vol, Bandwidth::from_mbps(300))?;
    b.diversity_zone("web-spread", DiversityLevel::Host, &[web1, web2])?;
    let topology = b.build()?;

    // 2. The data center: 4 racks of 16 hosts behind a root switch.
    let infra = InfrastructureBuilder::flat(
        "dc-east",
        4,
        16,
        Resources::new(16, 32_768, 1_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()?;
    let mut state = CapacityState::new(&infra);

    // 3. Place the whole application at once.
    let scheduler = Scheduler::new(&infra);
    let outcome = scheduler.place(&topology, &state, &PlacementRequest::default())?;

    println!("placement for `{}`:", topology.name());
    for (node, host) in outcome.placement.iter() {
        println!("  {:8} -> {}", topology.node(node).name(), infra.host(host).name());
    }
    println!(
        "reserved bandwidth: {}, new hosts: {}, objective: {:.4}, took {:?}",
        outcome.reserved_bandwidth, outcome.new_active_hosts, outcome.objective, outcome.elapsed,
    );

    // 4. Commit the decision so the next application sees this usage.
    scheduler.commit(&topology, &outcome.placement, &mut state)?;
    println!("active hosts after commit: {}", state.active_host_count());
    Ok(())
}
