//! Shared harness code for the table/figure reproduction binaries and
//! the criterion benches.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md`'s experiment index); this library holds the
//! sweep drivers they share. All binaries accept a common set of flags
//! parsed by [`Args`]:
//!
//! * `--runs N` — repetitions per data point (paper: 20; default 3).
//! * `--sizes a,b,c` — override the topology sizes swept.
//! * `--racks N` / `--hosts N` — shrink the simulated data center.
//! * `--deadline-ms N` — DBA\*'s budget per placement.
//! * `--seed N` — base RNG seed.
//! * `--theta-bw X` / `--theta-c X` — objective weights.

pub mod args;
pub mod sweep;

pub use args::Args;
pub use sweep::{
    mesh_instance, multi_tier_instance, qfs_rows, sweep_mesh, sweep_multi_tier, SweepPoint,
};
