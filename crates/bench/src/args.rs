//! Minimal flag parsing shared by all reproduction binaries (no
//! external CLI dependency).

use std::time::Duration;

/// Common knobs of the reproduction binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct Args {
    /// Repetitions per data point.
    pub runs: usize,
    /// Topology sizes to sweep (binaries define their own defaults).
    pub sizes: Option<Vec<usize>>,
    /// Racks in the simulated data center.
    pub racks: usize,
    /// Hosts per rack.
    pub hosts_per_rack: usize,
    /// DBA\*'s time budget.
    pub deadline: Duration,
    /// Base RNG seed.
    pub seed: u64,
    /// Objective weight θbw.
    pub theta_bw: f64,
    /// Objective weight θc.
    pub theta_c: f64,
    /// Candidate-scoring participants (0 = available_parallelism).
    pub score_threads: usize,
    /// Per-chunk cache budget in bytes for parallel scoring (0 = the
    /// engine's L2-sized default). Purely a locality lever.
    pub chunk_bytes: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            runs: 3,
            sizes: None,
            racks: 150,
            hosts_per_rack: 16,
            deadline: Duration::from_secs(10),
            seed: 42,
            theta_bw: 0.6,
            theta_c: 0.4,
            score_threads: 0,
            chunk_bytes: 0,
        }
    }
}

impl Args {
    /// Parses flags from an iterator of argument strings (usually
    /// `std::env::args().skip(1)`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on an unknown flag or an
    /// unparsable value.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value =
                |name: &str| iter.next().ok_or_else(|| format!("flag {name} needs a value"));
            match flag.as_str() {
                "--runs" => out.runs = parse_num(&value("--runs")?)?,
                "--sizes" => {
                    let list = value("--sizes")?;
                    out.sizes = Some(
                        list.split(',').map(|s| parse_num(s.trim())).collect::<Result<_, _>>()?,
                    );
                }
                "--racks" => out.racks = parse_num(&value("--racks")?)?,
                "--hosts" => out.hosts_per_rack = parse_num(&value("--hosts")?)?,
                "--deadline-ms" => {
                    out.deadline =
                        Duration::from_millis(parse_num(&value("--deadline-ms")?)? as u64);
                }
                "--seed" => out.seed = parse_num(&value("--seed")?)? as u64,
                "--theta-bw" => out.theta_bw = parse_float(&value("--theta-bw")?)?,
                "--theta-c" => out.theta_c = parse_float(&value("--theta-c")?)?,
                "--score-threads" => {
                    out.score_threads = parse_num(&value("--score-threads")?)?;
                }
                "--chunk-bytes" => {
                    out.chunk_bytes = parse_num(&value("--chunk-bytes")?)?;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(out)
    }

    /// Parses from the process arguments, exiting with usage on error.
    #[must_use]
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "flags: --runs N --sizes a,b,c --racks N --hosts N \
                     --deadline-ms N --seed N --theta-bw X --theta-c X \
                     --score-threads N --chunk-bytes N"
                );
                std::process::exit(2);
            }
        }
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

fn parse_float(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("`{s}` is not a number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse(args.iter().map(|s| (*s).to_owned()))
    }

    #[test]
    fn defaults_match_paper_scale() {
        let a = Args::default();
        assert_eq!(a.racks, 150);
        assert_eq!(a.hosts_per_rack, 16);
        assert_eq!(a.theta_bw, 0.6);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(&[
            "--runs",
            "5",
            "--sizes",
            "25,50",
            "--racks",
            "10",
            "--hosts",
            "8",
            "--deadline-ms",
            "250",
            "--seed",
            "7",
            "--theta-bw",
            "0.99",
            "--theta-c",
            "0.01",
            "--score-threads",
            "2",
            "--chunk-bytes",
            "131072",
        ])
        .unwrap();
        assert_eq!(a.runs, 5);
        assert_eq!(a.sizes, Some(vec![25, 50]));
        assert_eq!(a.racks, 10);
        assert_eq!(a.hosts_per_rack, 8);
        assert_eq!(a.deadline, Duration::from_millis(250));
        assert_eq!(a.seed, 7);
        assert_eq!(a.theta_bw, 0.99);
        assert_eq!(a.theta_c, 0.01);
        assert_eq!(a.score_threads, 2);
        assert_eq!(a.chunk_bytes, 131_072);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--runs"]).is_err());
        assert!(parse(&["--runs", "abc"]).is_err());
        assert!(parse(&["--sizes", "1,x"]).is_err());
    }
}
