//! Extension experiment (beyond the paper): multi-tenant churn. A
//! stream of applications arrives and departs on one shared cloud;
//! each algorithm's acceptance rate, consolidation, and bandwidth
//! footprint are compared. This closes the loop the paper opens with
//! Table IV — here the non-uniform availability *emerges* from earlier
//! placements instead of being synthesized.

use ostro_bench::Args;
use ostro_core::{Algorithm, ObjectiveWeights};
use ostro_sim::churn::{run_churn, ChurnConfig};
use ostro_sim::report::TextTable;
use ostro_sim::scenarios::sized_datacenter;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let mut rng = SmallRng::seed_from_u64(args.seed);
    let racks = if args.racks == 150 { 20 } else { args.racks };
    let (infra, _) = match sized_datacenter(racks, args.hosts_per_rack, false, &mut rng) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("churn setup failed: {e}");
            std::process::exit(1);
        }
    };
    let config = ChurnConfig {
        arrivals: args.runs.max(1) * 25,
        mean_lifetime: 8,
        seed: args.seed,
        weights: ObjectiveWeights { bandwidth: args.theta_bw, hosts: args.theta_c },
        ..ChurnConfig::default()
    };
    let algorithms = [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::DeadlineBoundedAStar { deadline: args.deadline },
    ];
    let mut table = TextTable::new([
        "algo",
        "accepted",
        "rejected",
        "mean hosts",
        "peak hosts",
        "mean bw (Gbps)",
        "solver (s)",
    ]);
    for algorithm in algorithms {
        match run_churn(&infra, algorithm, &config) {
            Ok(report) => table.row([
                algorithm.abbreviation().to_owned(),
                report.accepted.to_string(),
                report.rejected.to_string(),
                format!("{:.1}", report.mean_active_hosts),
                report.peak_active_hosts.to_string(),
                format!("{:.2}", report.mean_reserved_mbps / 1_000.0),
                format!("{:.3}", report.mean_solver_secs),
            ]),
            Err(e) => {
                eprintln!("churn failed for {}: {e}", algorithm.abbreviation());
                std::process::exit(1);
            }
        }
    }
    println!(
        "Churn: {} arrivals on {} hosts ({} racks), mean lifetime {} ticks",
        config.arrivals,
        infra.host_count(),
        racks,
        config.mean_lifetime,
    );
    println!("{}", table.render());
}
