//! Reproduces **Table I**: the QFS application on the 16-host testbed
//! under *non-uniform* resource availability, comparing EGC, EGBW, EG,
//! BA\*, and DBA\*.
//!
//! Paper settings: θbw = 0.99, θc = 0.01, DBA\* deadline T = 0.5 s.
//! Run `--theta-c 0.4 --theta-bw 0.6` for the §IV-B weight-variation
//! experiment.

use ostro_bench::Args;
use ostro_sim::report::render_table_one_style;

fn main() {
    let mut args = Args::from_env();
    // Paper defaults for this experiment unless overridden.
    if (args.theta_bw, args.theta_c) == (0.6, 0.4)
        && !std::env::args().any(|a| a.starts_with("--theta"))
    {
        args.theta_bw = 0.99;
        args.theta_c = 0.01;
    }
    if !std::env::args().any(|a| a == "--deadline-ms") {
        args.deadline = std::time::Duration::from_millis(500);
    }
    let rows = match ostro_bench::qfs_rows(true, &args) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{}",
        render_table_one_style(
            &format!(
                "Table I: QFS under NON-UNIFORM availability \
                 (theta_bw={}, theta_c={}, T={:?}, runs={})",
                args.theta_bw, args.theta_c, args.deadline, args.runs
            ),
            &rows
        )
    );
}
