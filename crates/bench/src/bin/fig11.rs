//! Reproduces **Figure 11**: the total number of active hosts in the
//! data center after placing the mesh-communication application, as
//! topology size grows (heterogeneous requirements, non-uniform
//! availability).

use ostro_bench::{sweep_mesh, Args};
use ostro_sim::report::TextTable;

fn main() {
    let args = Args::from_env();
    let sizes = args.sizes.clone().unwrap_or_else(|| vec![25, 50, 75, 100, 125, 150, 175, 200]);
    let points = match sweep_mesh(&sizes, true, &args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fig11 failed: {e}");
            std::process::exit(1);
        }
    };
    let mut table = TextTable::new(["size", "EGC", "EGBW", "EG", "DBA*"]);
    for point in &points {
        table.row(
            std::iter::once(point.size.to_string())
                .chain(point.rows.iter().map(|r| format!("{:.1}", r.total_hosts))),
        );
    }
    println!(
        "Figure 11: total used hosts for mesh (heterogeneous / non-uniform, runs={})",
        args.runs
    );
    println!("{}", table.render());
}
