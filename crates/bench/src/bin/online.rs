//! Reproduces the **§IV-E online-adaptation** experiment: start from a
//! placed 200-VM multi-tier application, add 10% more small VMs to its
//! first two tiers, and incrementally re-place. The paper reports the
//! new optimization completing within 0.3 s and notes that larger
//! updates trigger repositioning of previously placed nodes.

use std::time::Duration;

use ostro_bench::{multi_tier_instance, Args};
use ostro_core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};
use ostro_model::{Bandwidth, TopologyDelta};
use ostro_sim::report::TextTable;

fn main() {
    let args = Args::from_env();
    let size = args.sizes.as_ref().and_then(|s| s.first().copied()).unwrap_or(200);
    let mut table = TextTable::new([
        "added VMs",
        "re-place time (s)",
        "repositioned",
        "unpin rounds",
        "added bw (Mbps)",
    ]);
    for percent in [5usize, 10, 20] {
        let seed = args.seed;
        let (infra, mut state, topo) = match multi_tier_instance(size, true, &args, seed) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("online setup failed: {e}");
                std::process::exit(1);
            }
        };
        let scheduler = Scheduler::new(&infra);
        let weights = ObjectiveWeights { bandwidth: args.theta_bw, hosts: args.theta_c };
        let initial_req = PlacementRequest {
            algorithm: Algorithm::Greedy,
            weights,
            seed,
            score_threads: args.score_threads,
            ..PlacementRequest::default()
        };
        let initial = match scheduler.place(&topo, &state, &initial_req) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("online initial placement failed: {e}");
                std::process::exit(1);
            }
        };
        scheduler.commit(&topo, &initial.placement, &mut state).expect("commit plan");

        // Add `percent`% small VMs across tiers 0 and 1, each linked
        // to an existing tier VM.
        let added = (size * percent).div_ceil(100);
        let mut delta = TopologyDelta::new();
        for i in 0..added {
            let vm = delta.add_vm(format!("extra{i}"), 1, 1_024);
            let tier = i % 2;
            let target = topo
                .node_by_name(&format!("tier{tier}-vm{}", i % (size / 5)))
                .expect("tier VM exists")
                .id();
            delta.add_link(target, vm, Bandwidth::from_mbps(50));
        }
        let (topo2, mapping) = delta.apply(&topo).expect("delta applies");

        // Release the old app, pin survivors, re-place incrementally.
        scheduler.release(&topo, &initial.placement, &mut state).expect("release");
        let mut prior = vec![None; topo2.node_count()];
        for (old, new) in mapping.surviving() {
            prior[new.index()] = Some(initial.placement.host_of(old));
        }
        let online_req = PlacementRequest {
            algorithm: Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(300) },
            weights,
            seed,
            score_threads: args.score_threads,
            ..PlacementRequest::default()
        };
        let started = std::time::Instant::now();
        match scheduler.replace_online(&topo2, &state, &online_req, &prior, 4) {
            Ok(result) => {
                let added_bw = result.outcome.reserved_bandwidth.as_mbps() as i64
                    - initial.reserved_bandwidth.as_mbps() as i64;
                table.row([
                    format!("{added} (+{percent}%)"),
                    format!("{:.3}", started.elapsed().as_secs_f64()),
                    result.repositioned.len().to_string(),
                    result.rounds.to_string(),
                    added_bw.to_string(),
                ]);
            }
            Err(e) => {
                table.row([
                    format!("{added} (+{percent}%)"),
                    "-".to_owned(),
                    "-".to_owned(),
                    "-".to_owned(),
                    format!("failed: {e}"),
                ]);
            }
        }
    }
    println!("Online adaptation (sec IV-E): multi-tier {size} VMs, add small VMs to tiers 0-1");
    println!("{}", table.render());
}
