//! Reproduces the **§IV-E online-adaptation** experiment: start from a
//! placed 200-VM multi-tier application, add 5/10/20% more small VMs
//! to its first two tiers, and incrementally re-place. The paper
//! reports the new optimization completing within 0.3 s and notes that
//! larger updates trigger repositioning of previously placed nodes.
//!
//! All three rows are served by **one** [`SchedulerSession`] — the
//! initial placement warms the bound cache once, and each row's
//! re-placement rounds reuse it, the way a long-running placement
//! service would. A row that fails reports its error in the table and
//! the run continues; only setup failures abort.

use std::time::Duration;

use ostro_bench::{multi_tier_instance, Args};
use ostro_core::{Algorithm, ObjectiveWeights, PlacementRequest, SchedulerSession};
use ostro_model::{Bandwidth, TopologyDelta};
use ostro_sim::report::TextTable;

fn main() {
    let args = Args::from_env();
    if let Err(message) = run(&args) {
        eprintln!("online setup failed: {message}");
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), String> {
    let size = args.sizes.as_ref().and_then(|s| s.first().copied()).unwrap_or(200);
    let seed = args.seed;
    let (infra, state, topo) =
        multi_tier_instance(size, true, args, seed).map_err(|e| e.to_string())?;
    let weights = ObjectiveWeights { bandwidth: args.theta_bw, hosts: args.theta_c };
    let initial_req = PlacementRequest {
        algorithm: Algorithm::Greedy,
        weights,
        seed,
        score_threads: args.score_threads,
        chunk_bytes: args.chunk_bytes,
        ..PlacementRequest::default()
    };
    let online_req = PlacementRequest {
        algorithm: Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(300) },
        weights,
        seed,
        score_threads: args.score_threads,
        chunk_bytes: args.chunk_bytes,
        ..PlacementRequest::default()
    };

    let mut session = SchedulerSession::with_state(&infra, state);
    let initial =
        session.place(&topo, &initial_req).map_err(|e| format!("initial placement: {e}"))?;
    session.commit(&topo, &initial.placement).map_err(|e| format!("initial commit: {e}"))?;

    let mut table = TextTable::new([
        "added VMs",
        "re-place time (s)",
        "repositioned",
        "unpin rounds",
        "added bw (Mbps)",
    ]);
    for percent in [5usize, 10, 20] {
        let added = (size * percent).div_ceil(100);
        let label = format!("{added} (+{percent}%)");
        match replace_row(&mut session, &topo, &initial, &online_req, size, added) {
            Ok(row) => table.row([
                label,
                format!("{:.3}", row.elapsed_secs),
                row.repositioned.to_string(),
                row.rounds.to_string(),
                row.added_bw_mbps.to_string(),
            ]),
            Err(message) => {
                table.row([label, "-".into(), "-".into(), "-".into(), message]);
            }
        }
        // Restore the baseline tenancy so the next row starts from the
        // same state (the journal invalidates only the touched hosts).
        session
            .commit(&topo, &initial.placement)
            .map_err(|e| format!("baseline re-commit: {e}"))?;
    }
    println!("Online adaptation (sec IV-E): multi-tier {size} VMs, add small VMs to tiers 0-1");
    println!("{}", table.render());
    Ok(())
}

struct Row {
    elapsed_secs: f64,
    repositioned: usize,
    rounds: u32,
    added_bw_mbps: i64,
}

/// Grows the application by `added` small VMs and incrementally
/// re-places it on the warm session. On return (Ok or Err) the session
/// state has the initial application fully released — the caller
/// restores the baseline by re-committing the initial placement.
fn replace_row(
    session: &mut SchedulerSession,
    topo: &ostro_model::ApplicationTopology,
    initial: &ostro_core::PlacementOutcome,
    online_req: &PlacementRequest,
    size: usize,
    added: usize,
) -> Result<Row, String> {
    // Release the old app first, so every exit path (including errors)
    // leaves the state in the same released shape for the caller's
    // baseline re-commit.
    session.release(topo, &initial.placement).map_err(|e| format!("release: {e}"))?;

    // Add small VMs across tiers 0 and 1, each linked to an existing
    // tier VM.
    let mut delta = TopologyDelta::new();
    for i in 0..added {
        let vm = delta.add_vm(format!("extra{i}"), 1, 1_024);
        let tier = i % 2;
        let name = format!("tier{tier}-vm{}", i % (size / 5));
        let target = topo.node_by_name(&name).ok_or_else(|| format!("no node `{name}`"))?.id();
        delta.add_link(target, vm, Bandwidth::from_mbps(50));
    }
    let (topo2, mapping) = delta.apply(topo).map_err(|e| format!("delta: {e}"))?;

    // Pin survivors, re-place incrementally.
    let mut prior = vec![None; topo2.node_count()];
    for (old, new) in mapping.surviving() {
        prior[new.index()] = Some(initial.placement.host_of(old));
    }
    let started = std::time::Instant::now();
    let result = session
        .replace_online(&topo2, online_req, &prior, 4)
        .map_err(|e| format!("failed: {e}"))?;
    Ok(Row {
        elapsed_secs: started.elapsed().as_secs_f64(),
        repositioned: result.repositioned.len(),
        rounds: result.rounds,
        added_bw_mbps: result.outcome.reserved_bandwidth.as_mbps() as i64
            - initial.reserved_bandwidth.as_mbps() as i64,
    })
}
