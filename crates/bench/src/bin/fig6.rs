//! Reproduces **Figure 6**: the tradeoff between DBA\*'s deadline T
//! and placement optimality, on the 200-VM heterogeneous multi-tier
//! application over the 2400-host data center. The paper sweeps T from
//! ~5 s to ~60 s and reports reserved bandwidth and newly used hosts.

use std::time::Duration;

use ostro_bench::{multi_tier_instance, Args};
use ostro_core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};
use ostro_sim::report::TextTable;

fn main() {
    let args = Args::from_env();
    let size = args.sizes.as_ref().and_then(|s| s.first().copied()).unwrap_or(200);
    let deadlines_s: &[u64] = &[5, 10, 15, 20, 30, 45, 60];
    let mut table =
        TextTable::new(["T (sec)", "bandwidth (Gbps)", "newly used hosts", "actual (sec)"]);
    for &t in deadlines_s {
        let mut bw = 0.0;
        let mut hosts = 0.0;
        let mut actual = 0.0;
        for run in 0..args.runs {
            let seed = args.seed + run as u64 * 1_000;
            let (infra, state, topo) = match multi_tier_instance(size, true, &args, seed) {
                Ok(v) => v,
                Err(e) => {
                    eprintln!("fig6 failed: {e}");
                    std::process::exit(1);
                }
            };
            let scheduler = Scheduler::new(&infra);
            let request = PlacementRequest {
                algorithm: Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(t) },
                weights: ObjectiveWeights { bandwidth: args.theta_bw, hosts: args.theta_c },
                seed,
                score_threads: args.score_threads,
                ..PlacementRequest::default()
            };
            match scheduler.place(&topo, &state, &request) {
                Ok(o) => {
                    bw += o.reserved_bandwidth.as_mbps() as f64 / 1_000.0;
                    hosts += o.new_active_hosts as f64;
                    actual += o.elapsed.as_secs_f64();
                }
                Err(e) => {
                    eprintln!("fig6 failed at T={t}: {e}");
                    std::process::exit(1);
                }
            }
        }
        let n = args.runs as f64;
        table.row([
            t.to_string(),
            format!("{:.2}", bw / n),
            format!("{:.1}", hosts / n),
            format!("{:.1}", actual / n),
        ]);
    }
    println!(
        "Figure 6: DBA* time-optimality tradeoff (multi-tier {size} VMs, heterogeneous, runs={})",
        args.runs
    );
    println!("{}", table.render());
}
