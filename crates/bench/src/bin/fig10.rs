//! Reproduces **Figure 10**: reserved bandwidth and run time of each
//! algorithm on the mesh-communication application, under
//! (a, c) heterogeneous + non-uniform (25–200 VMs) and
//! (b, d) homogeneous + uniform (35–280 VMs) conditions.

use ostro_bench::{sweep_mesh, Args};
use ostro_sim::report::{fmt_secs, TextTable};

fn main() {
    let args = Args::from_env();
    let het_sizes = args.sizes.clone().unwrap_or_else(|| vec![25, 50, 75, 100, 125, 150, 175, 200]);
    let hom_sizes =
        args.sizes.clone().unwrap_or_else(|| vec![35, 70, 105, 140, 175, 210, 245, 280]);
    for (bw_label, time_label, het, sizes) in [
        ("(a) heterogeneous", "(c) heterogeneous", true, &het_sizes),
        ("(b) homogeneous", "(d) homogeneous", false, &hom_sizes),
    ] {
        let points = match sweep_mesh(sizes, het, &args) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fig10 failed: {e}");
                std::process::exit(1);
            }
        };
        let mut bw_table = TextTable::new(["size", "EGC", "EGBW", "EG", "DBA*"]);
        let mut time_table = TextTable::new(["size", "EGC", "EGBW", "EG", "DBA*"]);
        for point in &points {
            bw_table
                .row(std::iter::once(point.size.to_string()).chain(
                    point.rows.iter().map(|r| format!("{:.1}", r.bandwidth_mbps / 1_000.0)),
                ));
            time_table.row(
                std::iter::once(point.size.to_string())
                    .chain(point.rows.iter().map(|r| fmt_secs(r.runtime))),
            );
        }
        println!("Figure 10{bw_label}: reserved bandwidth (Gbps) for mesh");
        println!("{}", bw_table.render());
        println!("Figure 10{time_label}: run time (sec) for mesh");
        println!("{}", time_table.render());
    }
}
