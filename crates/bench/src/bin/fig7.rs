//! Reproduces **Figure 7**: bandwidth reserved for the multi-tier
//! application as topology size grows from 25 to 200 VMs, under
//! (a) heterogeneous requirements + non-uniform availability and
//! (b) homogeneous requirements + uniform availability.

use ostro_bench::{sweep_multi_tier, Args};
use ostro_sim::report::TextTable;

fn main() {
    let args = Args::from_env();
    let sizes = args.sizes.clone().unwrap_or_else(|| vec![25, 50, 75, 100, 125, 150, 175, 200]);
    for (label, het) in
        [("(a) heterogeneous / non-uniform", true), ("(b) homogeneous / uniform", false)]
    {
        let points = match sweep_multi_tier(&sizes, het, &args) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fig7 failed: {e}");
                std::process::exit(1);
            }
        };
        let mut table = TextTable::new(["size", "EGC", "EGBW", "EG", "DBA*"]);
        for point in &points {
            table
                .row(std::iter::once(point.size.to_string()).chain(
                    point.rows.iter().map(|r| format!("{:.1}", r.bandwidth_mbps / 1_000.0)),
                ));
        }
        println!("Figure 7{label}: reserved bandwidth (Gbps) for multi-tier");
        println!("{}", table.render());
    }
}
