//! Reproduces **Figure 9**: run time of each algorithm on the
//! multi-tier application as topology size grows, under
//! (a) heterogeneous + non-uniform and (b) homogeneous + uniform
//! conditions.

use ostro_bench::{sweep_multi_tier, Args};
use ostro_sim::report::{fmt_secs, TextTable};

fn main() {
    let args = Args::from_env();
    let sizes = args.sizes.clone().unwrap_or_else(|| vec![25, 50, 75, 100, 125, 150, 175, 200]);
    for (label, het) in
        [("(a) heterogeneous / non-uniform", true), ("(b) homogeneous / uniform", false)]
    {
        let points = match sweep_multi_tier(&sizes, het, &args) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fig9 failed: {e}");
                std::process::exit(1);
            }
        };
        let mut table = TextTable::new(["size", "EGC", "EGBW", "EG", "DBA*"]);
        for point in &points {
            table.row(
                std::iter::once(point.size.to_string())
                    .chain(point.rows.iter().map(|r| fmt_secs(r.runtime))),
            );
        }
        println!("Figure 9{label}: run time (sec) for multi-tier");
        println!("{}", table.render());
    }
}
