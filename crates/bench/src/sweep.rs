//! Sweep drivers shared by the figure binaries: generate (topology,
//! state) instances at each scale, run the algorithm set, aggregate.

use std::time::Duration;

use ostro_core::{Algorithm, ObjectiveWeights};
use ostro_datacenter::{CapacityState, Infrastructure};
use ostro_model::ApplicationTopology;
use ostro_sim::requirements::RequirementMix;
use ostro_sim::runner::{aggregate, run_trial, ComparisonRow, SimError, TrialResult};
use ostro_sim::scenarios::{qfs_testbed, sized_datacenter};
use ostro_sim::workloads::{mesh, multi_tier, qfs_topology, MESH_GROUP_SIZE};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::args::Args;

/// One aggregated point of a figure: a topology size plus one row per
/// algorithm.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Topology size (number of VMs).
    pub size: usize,
    /// One aggregated row per algorithm, in the order requested.
    pub rows: Vec<ComparisonRow>,
}

/// The algorithm set of the paper's figures (Figs. 7–11): the three
/// greedy variants plus DBA\* with the given deadline.
#[must_use]
pub fn figure_algorithms(deadline: Duration) -> Vec<Algorithm> {
    vec![
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::DeadlineBoundedAStar { deadline },
    ]
}

/// Generates one multi-tier instance (topology + availability state)
/// for a given seed.
///
/// # Errors
///
/// Propagates scenario construction errors.
pub fn multi_tier_instance(
    size: usize,
    heterogeneous: bool,
    args: &Args,
    seed: u64,
) -> Result<(Infrastructure, CapacityState, ApplicationTopology), SimError> {
    let mix =
        if heterogeneous { RequirementMix::heterogeneous() } else { RequirementMix::homogeneous() };
    let mut rng = SmallRng::seed_from_u64(seed);
    let (infra, state) =
        sized_datacenter(args.racks, args.hosts_per_rack, heterogeneous, &mut rng)?;
    let topology = multi_tier(size, &mix, &mut rng)?;
    Ok((infra, state, topology))
}

/// Generates one mesh instance for a given seed. `size` is the VM
/// count and must be a multiple of [`MESH_GROUP_SIZE`].
///
/// # Errors
///
/// Propagates scenario construction errors.
pub fn mesh_instance(
    size: usize,
    heterogeneous: bool,
    args: &Args,
    seed: u64,
) -> Result<(Infrastructure, CapacityState, ApplicationTopology), SimError> {
    let mix =
        if heterogeneous { RequirementMix::heterogeneous() } else { RequirementMix::homogeneous() };
    let mut rng = SmallRng::seed_from_u64(seed);
    let (infra, state) =
        sized_datacenter(args.racks, args.hosts_per_rack, heterogeneous, &mut rng)?;
    let topology = mesh(size / MESH_GROUP_SIZE, &mix, &mut rng)?;
    Ok((infra, state, topology))
}

fn weights(args: &Args) -> ObjectiveWeights {
    ObjectiveWeights { bandwidth: args.theta_bw, hosts: args.theta_c }
}

fn sweep<F>(sizes: &[usize], args: &Args, make: F) -> Result<Vec<SweepPoint>, SimError>
where
    F: Fn(usize, u64) -> Result<(Infrastructure, CapacityState, ApplicationTopology), SimError>,
{
    let algorithms = figure_algorithms(args.deadline);
    let mut points = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut per_algo: Vec<Vec<TrialResult>> = vec![Vec::new(); algorithms.len()];
        for run in 0..args.runs {
            let seed = args.seed + run as u64 * 1_000 + size as u64;
            let (infra, state, topology) = make(size, seed)?;
            for (i, &algorithm) in algorithms.iter().enumerate() {
                let trial = run_trial(&infra, &state, &topology, algorithm, weights(args), seed)?;
                per_algo[i].push(trial);
            }
        }
        points.push(SweepPoint { size, rows: per_algo.iter().map(|rs| aggregate(rs)).collect() });
    }
    Ok(points)
}

/// Runs the multi-tier sweep behind Figures 7, 8, and 9.
///
/// # Errors
///
/// Propagates the first scenario or placement error.
pub fn sweep_multi_tier(
    sizes: &[usize],
    heterogeneous: bool,
    args: &Args,
) -> Result<Vec<SweepPoint>, SimError> {
    sweep(sizes, args, |size, seed| multi_tier_instance(size, heterogeneous, args, seed))
}

/// Runs the mesh sweep behind Figures 10 and 11.
///
/// # Errors
///
/// Propagates the first scenario or placement error.
pub fn sweep_mesh(
    sizes: &[usize],
    heterogeneous: bool,
    args: &Args,
) -> Result<Vec<SweepPoint>, SimError> {
    sweep(sizes, args, |size, seed| mesh_instance(size, heterogeneous, args, seed))
}

/// Runs the QFS testbed comparison behind Tables I and II: all five
/// algorithms on the Fig. 5 application.
///
/// # Errors
///
/// Propagates the first scenario or placement error.
pub fn qfs_rows(non_uniform: bool, args: &Args) -> Result<Vec<ComparisonRow>, SimError> {
    let (infra, state) = qfs_testbed(non_uniform)?;
    let topology = qfs_topology()?;
    let algorithms = [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::BoundedAStar,
        Algorithm::DeadlineBoundedAStar { deadline: args.deadline },
    ];
    let mut rows = Vec::new();
    for &algorithm in &algorithms {
        let mut results = Vec::new();
        for run in 0..args.runs {
            results.push(run_trial(
                &infra,
                &state,
                &topology,
                algorithm,
                weights(args),
                args.seed + run as u64,
            )?);
        }
        rows.push(aggregate(&results));
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> Args {
        Args {
            runs: 1,
            racks: 4,
            hosts_per_rack: 8,
            deadline: Duration::from_millis(300),
            theta_bw: 0.6,
            theta_c: 0.4,
            ..Args::default()
        }
    }

    #[test]
    fn multi_tier_sweep_produces_a_row_per_algorithm() {
        let args = tiny_args();
        let points = sweep_multi_tier(&[25], true, &args).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].rows.len(), 4);
        let labels: Vec<&str> = points[0].rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["EGC", "EGBW", "EG", "DBA*"]);
        for row in &points[0].rows {
            assert!(row.bandwidth_mbps >= 0.0);
            assert_eq!(row.runs, 1);
        }
    }

    #[test]
    fn mesh_sweep_runs() {
        let args = tiny_args();
        let points = sweep_mesh(&[25], false, &args).unwrap();
        assert_eq!(points[0].size, 25);
        assert_eq!(points[0].rows.len(), 4);
    }

    #[test]
    fn qfs_rows_cover_all_five_algorithms() {
        let args = Args { runs: 1, deadline: Duration::from_millis(500), ..Args::default() };
        let rows = qfs_rows(true, &args).unwrap();
        let labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["EGC", "EGBW", "EG", "BA*", "DBA*"]);
    }
}
