//! Recovery benchmark: EG vs BA\* vs DBA\* churn under *identical*
//! seeded fault plans — host crashes, transient launch failures, and
//! stale-capacity races — measuring how each algorithm's placements
//! hold up when the deployment pipeline has to retry, fall back, and
//! evacuate.
//!
//! Writes `BENCH_recovery.json` at the repository root with, per
//! algorithm, the wall time and the full churn report (acceptance
//! rate, recovery success rate, mean ticks to recover, abandoned
//! tenants, repositioning churn).
//!
//! Every algorithm is run **twice** with the same fault seed and the
//! two reports are asserted bit-identical (after zeroing the one
//! wall-clock field) — the determinism guarantee the fault plan makes.
//! DBA\* gets a generous deadline with a finite expansion cap so its
//! deterministic budget binds before the wall clock does.
//!
//! `--smoke` runs a fast 32-host variant (used by `scripts/verify.sh`)
//! and writes the artifact under `target/`.

use std::time::{Duration, Instant};

use ostro_core::Algorithm;
use ostro_sim::scenarios::sized_datacenter;
use ostro_sim::{run_churn, ChurnConfig, ChurnReport, FaultConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Scale knobs for one benchmark run.
struct Scale {
    racks: usize,
    hosts_per_rack: usize,
    arrivals: usize,
    crashes: usize,
    /// Deterministic expansion cap for the A\* searches.
    max_expansions: u64,
    /// DBA\* deadline — generous on purpose, so the expansion cap is
    /// what stops the search (wall-clock never fires = reproducible).
    deadline: Duration,
}

// Kept dense on purpose: a sparse cloud makes crashes land on empty
// hosts and the recovery path never exercises.
const FULL: Scale = Scale {
    racks: 8,
    hosts_per_rack: 8,
    arrivals: 48,
    crashes: 6,
    max_expansions: 250,
    deadline: Duration::from_secs(30),
};

const SMOKE: Scale = Scale {
    racks: 4,
    hosts_per_rack: 8,
    arrivals: 12,
    crashes: 2,
    max_expansions: 120,
    deadline: Duration::from_secs(10),
};

fn config(scale: &Scale) -> ChurnConfig {
    ChurnConfig {
        arrivals: scale.arrivals,
        mean_lifetime: 6,
        seed: 0xFA_17,
        faults: Some(FaultConfig {
            seed: 0x0BAD_CAFE,
            host_crashes: scale.crashes,
            launch_failure_prob: 0.08,
            stale_race_prob: 0.2,
            stale_race_fraction: 0.5,
            ..FaultConfig::default()
        }),
        max_expansions: scale.max_expansions,
        ..ChurnConfig::default()
    }
}

/// Zeroes the one legitimately wall-clock-dependent report field.
fn canonical(mut report: ChurnReport) -> ChurnReport {
    report.mean_solver_secs = 0.0;
    report
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };
    let hosts = scale.racks * scale.hosts_per_rack;

    let mut rng = SmallRng::seed_from_u64(0xB00C);
    let (infra, _) = sized_datacenter(scale.racks, scale.hosts_per_rack, false, &mut rng)
        .expect("valid benchmark data center");

    let algorithms: &[(&str, Algorithm)] = &[
        ("EG", Algorithm::Greedy),
        ("BA*", Algorithm::BoundedAStar),
        ("DBA*", Algorithm::DeadlineBoundedAStar { deadline: scale.deadline }),
    ];

    let cfg = config(&scale);
    let mut sections = Vec::new();
    for &(label, algorithm) in algorithms {
        let started = Instant::now();
        let first = canonical(run_churn(&infra, algorithm, &cfg).expect("churn run completes"));
        let wall = started.elapsed();
        let second = canonical(run_churn(&infra, algorithm, &cfg).expect("churn run completes"));
        assert_eq!(
            first, second,
            "{label}: two runs with the same fault seed diverged — \
             the recovery report must be bit-identical"
        );
        assert_eq!(
            first.faults.crashes_injected, scale.crashes,
            "{label}: the fault plan must inject every scheduled crash"
        );
        println!(
            "{label}: {:.2}s wall, acceptance {:.1}%, {} evacuated / {} abandoned \
             (recovery success {:.1}%), {} repositioned, {} retries",
            wall.as_secs_f64(),
            first.acceptance_rate() * 100.0,
            first.faults.tenants_evacuated,
            first.faults.tenants_abandoned,
            first.faults.recovery_success_rate() * 100.0,
            first.faults.repositioned_nodes,
            first.faults.launch_retries,
        );
        let report_json = serde_json::to_string(&first).expect("serializable report");
        sections.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"wall_secs\": {:.3},\n",
                "      \"acceptance_rate\": {:.4},\n",
                "      \"recovery_success_rate\": {:.4},\n",
                "      \"mean_ticks_to_recover\": {:.3},\n",
                "      \"report\": {}\n",
                "    }}"
            ),
            label,
            wall.as_secs_f64(),
            first.acceptance_rate(),
            first.faults.recovery_success_rate(),
            first.faults.mean_ticks_to_recover(),
            report_json,
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"failure-aware churn recovery\",\n",
            "  \"hosts\": {},\n",
            "  \"smoke\": {},\n",
            "  \"arrivals\": {},\n",
            "  \"host_crashes\": {},\n",
            "  \"launch_failure_prob\": 0.08,\n",
            "  \"stale_race_prob\": 0.2,\n",
            "  \"algorithms\": {{\n{}\n  }}\n",
            "}}\n"
        ),
        hosts,
        smoke,
        scale.arrivals,
        scale.crashes,
        sections.join(",\n"),
    );
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_recovery_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recovery.json")
    };
    std::fs::write(path, &json).expect("write recovery artifact");
    println!("wrote {path}");

    // Re-parse the artifact so a malformed write fails loudly, and pin
    // the core recovery invariants for every algorithm.
    let doc: serde_json::Value =
        serde_json::from_str(&json).expect("recovery artifact must be well-formed JSON");
    let algos = doc.get("algorithms").expect("algorithms section present");
    for &(label, _) in algorithms {
        let entry = algos.get(label).unwrap_or_else(|| panic!("{label} section present"));
        let success = entry
            .get("recovery_success_rate")
            .and_then(serde_json::Value::as_f64)
            .expect("recovery_success_rate present");
        assert!((0.0..=1.0).contains(&success), "{label}: success rate {success} out of range");
        let crashes = entry
            .get("report")
            .and_then(|r| r.get("faults"))
            .and_then(|f| f.get("crashes_injected"))
            .and_then(serde_json::Value::as_f64)
            .expect("crashes_injected present");
        assert_eq!(crashes as usize, scale.crashes, "{label}: crash count mismatch");
    }
}
