//! Criterion benches for Figures 9 and 10c/d: algorithm run time as
//! the multi-tier / mesh topologies scale, on a data center reduced to
//! a benchable size (the figure *binaries* run the full 2400 hosts).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ostro_bench::{mesh_instance, multi_tier_instance, Args};
use ostro_core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};

fn bench_args() -> Args {
    Args { racks: 10, hosts_per_rack: 8, ..Args::default() }
}

fn algorithms() -> [Algorithm; 4] {
    [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(300) },
    ]
}

fn bench_multi_tier(c: &mut Criterion) {
    let args = bench_args();
    let mut group = c.benchmark_group("fig9_multi_tier_runtime");
    group.sample_size(10);
    for size in [25usize, 50] {
        let (infra, state, topology) =
            multi_tier_instance(size, true, &args, 42 + size as u64).unwrap();
        let scheduler = Scheduler::new(&infra);
        for algorithm in algorithms() {
            let request = PlacementRequest {
                algorithm,
                weights: ObjectiveWeights::SIMULATION,
                ..PlacementRequest::default()
            };
            group.bench_with_input(
                BenchmarkId::new(algorithm.abbreviation(), size),
                &request,
                |b, request| {
                    b.iter(|| scheduler.place(&topology, &state, request).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let args = bench_args();
    let mut group = c.benchmark_group("fig10_mesh_runtime");
    group.sample_size(10);
    for size in [25usize, 50] {
        let (infra, state, topology) = mesh_instance(size, true, &args, 42 + size as u64).unwrap();
        let scheduler = Scheduler::new(&infra);
        for algorithm in algorithms() {
            let request = PlacementRequest {
                algorithm,
                weights: ObjectiveWeights::SIMULATION,
                ..PlacementRequest::default()
            };
            group.bench_with_input(
                BenchmarkId::new(algorithm.abbreviation(), size),
                &request,
                |b, request| {
                    b.iter(|| scheduler.place(&topology, &state, request).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_multi_tier, bench_mesh);
criterion_main!(benches);
