//! Criterion benches for Figures 9 and 10c/d: algorithm run time as
//! the multi-tier / mesh topologies scale, on a data center reduced to
//! a benchable size (the figure *binaries* run the full 2400 hosts).
//!
//! Also covers the multi-pod `pod_fleet` generator at CI-sized fleets,
//! comparing sharded and unsharded requests and emitting one
//! machine-readable `shard_curve_row {json}` line per fleet — the same
//! row shape `benches/shard.rs` prints for its 1k/10k/100k curve, so
//! both benches feed one latency-vs-fleet-size curve.

use std::time::Duration;

use criterion::{BenchmarkId, Criterion};
use ostro_bench::{mesh_instance, multi_tier_instance, Args};
use ostro_core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};
use ostro_model::{ApplicationTopology, Bandwidth, TopologyBuilder};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_args() -> Args {
    Args { racks: 10, hosts_per_rack: 8, ..Args::default() }
}

fn algorithms() -> [Algorithm; 4] {
    [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(300) },
    ]
}

fn bench_multi_tier(c: &mut Criterion) {
    let args = bench_args();
    let mut group = c.benchmark_group("fig9_multi_tier_runtime");
    group.sample_size(10);
    for size in [25usize, 50] {
        let (infra, state, topology) =
            multi_tier_instance(size, true, &args, 42 + size as u64).unwrap();
        let scheduler = Scheduler::new(&infra);
        for algorithm in algorithms() {
            let request = PlacementRequest {
                algorithm,
                weights: ObjectiveWeights::SIMULATION,
                ..PlacementRequest::default()
            };
            group.bench_with_input(
                BenchmarkId::new(algorithm.abbreviation(), size),
                &request,
                |b, request| {
                    b.iter(|| scheduler.place(&topology, &state, request).unwrap());
                },
            );
        }
    }
    group.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let args = bench_args();
    let mut group = c.benchmark_group("fig10_mesh_runtime");
    group.sample_size(10);
    for size in [25usize, 50] {
        let (infra, state, topology) = mesh_instance(size, true, &args, 42 + size as u64).unwrap();
        let scheduler = Scheduler::new(&infra);
        for algorithm in algorithms() {
            let request = PlacementRequest {
                algorithm,
                weights: ObjectiveWeights::SIMULATION,
                ..PlacementRequest::default()
            };
            group.bench_with_input(
                BenchmarkId::new(algorithm.abbreviation(), size),
                &request,
                |b, request| {
                    b.iter(|| scheduler.place(&topology, &state, request).unwrap());
                },
            );
        }
    }
    group.finish();
}

/// The multi-pod fleets this bench covers: CI-sized points below the
/// 1k/10k/100k curve `benches/shard.rs` measures.
const POD_FLEETS: [(usize, usize, usize); 2] = [(8, 2, 16), (10, 5, 20)];

/// The same 16-VM chain family on every pod fleet.
fn pod_fleet_topology() -> ApplicationTopology {
    let mut b = TopologyBuilder::new("pod-fleet-scaling");
    let ids: Vec<_> = (0..16).map(|i| b.vm(format!("vm{i}"), 2, 2_048).unwrap()).collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], Bandwidth::from_mbps(80)).unwrap();
    }
    b.build().unwrap()
}

fn bench_pod_fleet(c: &mut Criterion) {
    let topo = pod_fleet_topology();
    for (pods, racks, hosts_per_rack) in POD_FLEETS {
        let hosts = pods * racks * hosts_per_rack;
        let mut rng = SmallRng::seed_from_u64(0x5AAD_0000 ^ hosts as u64);
        let (infra, state) =
            ostro_sim::scenarios::pod_fleet(pods, racks, hosts_per_rack, true, &mut rng).unwrap();
        let scheduler = Scheduler::new(&infra);
        let mut group = c.benchmark_group(format!("pod_fleet_runtime/{hosts}"));
        group.sample_size(10);
        for (mode, shard) in [("sharded", true), ("unsharded", false)] {
            let request = PlacementRequest { shard, ..PlacementRequest::default() };
            group.bench_with_input(BenchmarkId::from_parameter(mode), &request, |b, request| {
                b.iter(|| scheduler.place(&topo, &state, request).unwrap());
            });
        }
        group.finish();
    }
}

fn median_ms(c: &Criterion, id: &str) -> f64 {
    c.measurements
        .iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("missing measurement {id}"))
        .median
        .as_secs_f64()
        * 1e3
}

/// One `shard_curve_row` line per pod fleet, shaped exactly like the
/// rows `benches/shard.rs` prints, so downstream tooling can merge
/// both into one curve.
fn emit_pod_fleet_rows(c: &Criterion) {
    for (pods, racks, hosts_per_rack) in POD_FLEETS {
        let hosts = pods * racks * hosts_per_rack;
        let sharded = median_ms(c, &format!("pod_fleet_runtime/{hosts}/sharded"));
        let unsharded = median_ms(c, &format!("pod_fleet_runtime/{hosts}/unsharded"));
        println!(
            "shard_curve_row {{\"fleet\": \"pod_fleet\", \"hosts\": {hosts}, \"pods\": {pods}, \
             \"sharded_ms\": {sharded:.3}, \"unsharded_ms\": {unsharded:.3}}}"
        );
    }
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_multi_tier(&mut criterion);
    bench_mesh(&mut criterion);
    bench_pod_fleet(&mut criterion);
    emit_pod_fleet_rows(&criterion);
}
