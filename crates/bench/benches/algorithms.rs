//! Criterion benches for the run-time rows of Tables I and II: every
//! algorithm on the QFS application over the 16-host testbed.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ostro_core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};
use ostro_sim::scenarios::qfs_testbed;
use ostro_sim::workloads::qfs_topology;

fn bench_qfs(c: &mut Criterion) {
    let topology = qfs_topology().unwrap();
    let algorithms = [
        Algorithm::GreedyCompute,
        Algorithm::GreedyBandwidth,
        Algorithm::Greedy,
        Algorithm::BoundedAStar,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(500) },
    ];
    for (label, non_uniform) in [("table1_non_uniform", true), ("table2_uniform", false)] {
        let (infra, state) = qfs_testbed(non_uniform).unwrap();
        let scheduler = Scheduler::new(&infra);
        let mut group = c.benchmark_group(label);
        group.sample_size(20);
        for algorithm in algorithms {
            let request = PlacementRequest {
                algorithm,
                weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
                ..PlacementRequest::default()
            };
            group.bench_with_input(
                BenchmarkId::from_parameter(algorithm.abbreviation()),
                &request,
                |b, request| {
                    b.iter(|| scheduler.place(&topology, &state, request).unwrap());
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_qfs);
criterion_main!(benches);
