//! Write-ahead-journal benchmark: crash-recovery latency as a function
//! of journal length, with and without snapshot compaction.
//!
//! For each journal length a seeded mutation stream (node reservations
//! and releases) is journaled twice — once with snapshots disabled, so
//! recovery replays every record, and once with the default snapshot
//! cadence, so recovery loads the snapshot and replays only the tail.
//! Each recovery's books are asserted bit-identical to the live
//! session's, so the numbers are only reported for *correct* replays.
//!
//! Writes `BENCH_wal.json` at the repository root with, per length,
//! journal size on disk, records replayed, and replay wall time for
//! both variants.
//!
//! `--smoke` runs a fast variant (used by `scripts/verify.sh`) and
//! writes the artifact under `target/`.

use std::path::Path;
use std::time::Instant;

use ostro_core::{recover, SchedulerSession, SyncPolicy, Wal, WalOptions};
use ostro_datacenter::{HostId, Infrastructure, InfrastructureBuilder};
use ostro_model::{Bandwidth, Resources};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for one benchmark run.
struct Scale {
    racks: usize,
    hosts_per_rack: usize,
    /// Journal lengths (records) to measure.
    lengths: &'static [u64],
    /// Snapshot cadence of the compacting variant.
    snapshot_every: u64,
}

const FULL: Scale =
    Scale { racks: 12, hosts_per_rack: 8, lengths: &[1_000, 10_000, 50_000], snapshot_every: 256 };

const SMOKE: Scale =
    Scale { racks: 4, hosts_per_rack: 8, lengths: &[200, 1_000], snapshot_every: 64 };

fn bench_infra(scale: &Scale) -> Infrastructure {
    InfrastructureBuilder::flat(
        "bench",
        scale.racks,
        scale.hosts_per_rack,
        Resources::new(64, 262_144, 8_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()
    .expect("valid benchmark data center")
}

/// Journals `records` seeded reserve/release mutations through a live
/// session, returning the session for ground-truth comparison.
fn journal_stream<'a>(
    infra: &'a Infrastructure,
    dir: &Path,
    records: u64,
    snapshot_every: u64,
) -> SchedulerSession<'a> {
    Wal::reset(dir).expect("reset journal dir");
    let options = WalOptions { snapshot_every, sync: SyncPolicy::OnSnapshot };
    let (wal, _) = Wal::open(dir, infra, options).expect("open journal");
    let mut session = SchedulerSession::new(infra);
    session.attach_wal(wal);

    let mut rng = SmallRng::seed_from_u64(0x0A11_0C8E ^ records);
    let mut held: Vec<(HostId, Resources)> = Vec::new();
    for _ in 0..records {
        if !held.is_empty() && rng.gen_bool(0.4) {
            let (host, res) = held.swap_remove(rng.gen_range(0..held.len()));
            session.release_node(host, res).expect("release journaled reservation");
        } else {
            let host = HostId::from_index(rng.gen_range(0..infra.host_count() as u32));
            let res = Resources::new(0, u64::from(rng.gen_range(1..16u32)), 0);
            session.reserve_node(host, res).expect("tiny reservation always fits");
            held.push((host, res));
        }
    }
    assert!(session.wal_error().is_none(), "journaling must not fail");
    session
}

/// One measured recovery: replay wall time, records replayed, and a
/// bit-identity check against the live books.
fn measure(infra: &Infrastructure, dir: &Path, live: &SchedulerSession) -> (f64, u64, bool) {
    let started = Instant::now();
    let recovery = recover(dir, infra).expect("recovery succeeds");
    let secs = started.elapsed().as_secs_f64();
    assert_eq!(
        &recovery.state,
        live.state(),
        "recovered books must be bit-identical to the live session"
    );
    (secs, recovery.records_replayed, recovery.snapshot_seq.is_some())
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };
    let infra = bench_infra(&scale);
    let base = std::env::temp_dir().join(format!("ostro-wal-bench-{}", std::process::id()));

    let mut sections = Vec::new();
    for &records in scale.lengths {
        // Variant 1: no snapshots — recovery replays the whole journal.
        let dir = base.join(format!("plain-{records}"));
        let live = journal_stream(&infra, &dir, records, 0);
        let wal_bytes = std::fs::metadata(dir.join("wal.log")).expect("journal exists").len();
        let (plain_secs, plain_replayed, had_snapshot) = measure(&infra, &dir, &live);
        assert!(!had_snapshot, "snapshots were disabled");
        assert_eq!(plain_replayed, records, "every record replays without snapshots");
        drop(live);

        // Variant 2: snapshot compaction — recovery loads the snapshot
        // and replays only the records since.
        let dir = base.join(format!("snap-{records}"));
        let live = journal_stream(&infra, &dir, records, scale.snapshot_every);
        let snap_bytes = std::fs::metadata(dir.join("wal.log")).expect("journal exists").len();
        let (snap_secs, snap_replayed, had_snapshot) = measure(&infra, &dir, &live);
        assert!(had_snapshot, "the cadence must have produced a snapshot");
        assert!(
            snap_replayed < records,
            "compaction must leave fewer than {records} records to replay"
        );
        drop(live);

        println!(
            "{records} records: full replay {:.1}ms ({} records, {} B); \
             snapshot replay {:.1}ms ({} records, {} B journal)",
            plain_secs * 1e3,
            plain_replayed,
            wal_bytes,
            snap_secs * 1e3,
            snap_replayed,
            snap_bytes,
        );
        sections.push(format!(
            concat!(
                "    {{\n",
                "      \"records\": {},\n",
                "      \"no_snapshot\": {{\"replay_secs\": {:.6}, \"records_replayed\": {}, ",
                "\"wal_bytes\": {}}},\n",
                "      \"with_snapshot\": {{\"replay_secs\": {:.6}, \"records_replayed\": {}, ",
                "\"wal_bytes\": {}}}\n",
                "    }}"
            ),
            records, plain_secs, plain_replayed, wal_bytes, snap_secs, snap_replayed, snap_bytes,
        ));
    }
    std::fs::remove_dir_all(&base).ok();

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"write-ahead-journal replay latency\",\n",
            "  \"hosts\": {},\n",
            "  \"smoke\": {},\n",
            "  \"snapshot_every\": {},\n",
            "  \"lengths\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.racks * scale.hosts_per_rack,
        smoke,
        scale.snapshot_every,
        sections.join(",\n"),
    );
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_wal_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wal.json")
    };
    std::fs::write(path, &json).expect("write wal artifact");
    println!("wrote {path}");

    // Re-parse the artifact so a malformed write fails loudly, and pin
    // the headline claim: snapshot recovery replays fewer records.
    let doc: serde_json::Value =
        serde_json::from_str(&json).expect("wal artifact must be well-formed JSON");
    let lengths = doc.get("lengths").and_then(serde_json::Value::as_array).expect("lengths array");
    assert_eq!(lengths.len(), scale.lengths.len());
    for entry in lengths {
        let full = entry
            .get("no_snapshot")
            .and_then(|v| v.get("records_replayed"))
            .and_then(serde_json::Value::as_f64)
            .expect("no_snapshot records");
        let snap = entry
            .get("with_snapshot")
            .and_then(|v| v.get("records_replayed"))
            .and_then(serde_json::Value::as_f64)
            .expect("with_snapshot records");
        assert!(snap < full, "snapshot replay ({snap}) must beat full replay ({full})");
    }
}
