//! Chaos harness for the overload-resilient placement service: seeded
//! fault plans (planner panics, WAL faults, planning latency spikes,
//! arrival bursts) driven through `PlacementService::serve`, asserting
//! the service's resilience contract rather than raw speed:
//!
//! * **No acked-but-lost commit** — a WAL-attached run under storm
//!   faults ends with recovery reproducing the live books exactly.
//! * **No hang** — every submitted ticket resolves; shed, panicked,
//!   and un-durable requests all get *typed* errors.
//! * **Degraded mode earns its keep** — under a seeded burst (waves of
//!   4x the batch size) the engine-ladder degradation sustains at
//!   least 2x the goodput of the same burst with degradation off,
//!   with bounded p99 (full runs only; smoke still records both).
//! * **Determinism** — two same-seed storm runs produce bit-identical
//!   deterministic reports (counts and order-independent digests).
//!
//! Writes `BENCH_chaos.json` at the repository root (`--smoke` writes
//! a fast variant under `target/`).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ostro_core::{
    wal, Algorithm, DegradePolicy, DurabilityPolicy, Placement, PlacementError, PlacementRequest,
    PlacementService, SchedulerSession, ServiceConfig, ServiceResponse, Ticket, Wal, WalOptions,
};
use ostro_datacenter::{CapacityState, Infrastructure};
use ostro_model::ApplicationTopology;
use ostro_sim::scenarios::sized_datacenter;
use ostro_sim::stream::{arrival_stream, StreamConfig, StreamEvent, StreamPlan};
use ostro_sim::{ChaosConfig, ChaosPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Scale {
    racks: usize,
    hosts_per_rack: usize,
    /// Arrivals in the burst drill.
    burst_requests: usize,
    /// Arrivals per burst wave (4x the service batch below).
    wave: usize,
    /// Service batch size for the burst drill.
    batch: usize,
    /// DBA* per-request planning deadline in the burst drill.
    plan_deadline_ms: u64,
    /// Admission deadline budget in the burst drill.
    budget_ms: u64,
    /// Degrade thresholds (high, low, floor) for the burst drill.
    degrade: (usize, usize, usize),
    /// Arrivals in the deterministic storm drill.
    storm_requests: usize,
}

const FULL: Scale = Scale {
    racks: 16,
    hosts_per_rack: 16,
    burst_requests: 96,
    wave: 32,
    batch: 8,
    plan_deadline_ms: 40,
    budget_ms: 120,
    degrade: (8, 2, 16),
    storm_requests: 96,
};
const SMOKE: Scale = Scale {
    racks: 4,
    hosts_per_rack: 16,
    burst_requests: 16,
    wave: 8,
    batch: 2,
    plan_deadline_ms: 10,
    budget_ms: 60,
    degrade: (2, 1, 4),
    storm_requests: 24,
};

/// splitmix64 finalizer, for order-independent decision digests.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Typed-outcome tally for one run; every arrival lands in exactly one
/// bucket, so `total()` == arrivals proves nothing hung or vanished.
#[derive(Default)]
struct Outcomes {
    placed: u64,
    shed_queue: u64,
    shed_deadline: u64,
    panicked: u64,
    durability: u64,
    rejected: u64,
    /// XOR fold over placed arrival ordinals (order-independent).
    commit_digest: u64,
    /// XOR fold over shed/panicked ordinals, tagged per kind.
    shed_digest: u64,
}

impl Outcomes {
    fn total(&self) -> u64 {
        self.placed
            + self.shed_queue
            + self.shed_deadline
            + self.panicked
            + self.durability
            + self.rejected
    }

    fn sheds(&self) -> u64 {
        self.shed_queue + self.shed_deadline
    }

    fn absorb(&mut self, arrival: usize, response: &ServiceResponse) {
        let a = arrival as u64;
        match response {
            ServiceResponse::Placed(_) => {
                self.placed += 1;
                self.commit_digest ^= mix64(a);
            }
            ServiceResponse::Failed(PlacementError::QueueFull { .. }) => {
                self.shed_queue += 1;
                self.shed_digest ^= mix64(a ^ 0x0dec_1ded);
            }
            ServiceResponse::Failed(PlacementError::DeadlineExceeded { .. }) => {
                self.shed_deadline += 1;
                self.shed_digest ^= mix64(a ^ 0xdead_11fe);
            }
            ServiceResponse::Failed(PlacementError::PlannerPanic { .. }) => {
                self.panicked += 1;
                self.shed_digest ^= mix64(a ^ 0x9a_0a1c);
            }
            ServiceResponse::Failed(PlacementError::Durability { .. }) => {
                self.durability += 1;
                self.shed_digest ^= mix64(a ^ 0xd15c_f011);
            }
            ServiceResponse::Failed(_) => self.rejected += 1,
            ServiceResponse::Released { .. } => unreachable!("arrival resolved as a release"),
        }
    }
}

struct BurstReport {
    outcomes: Outcomes,
    wall: Duration,
    latencies: Vec<Duration>,
    stats: ostro_core::ServiceStats,
}

impl BurstReport {
    fn goodput(&self) -> f64 {
        self.outcomes.placed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }
}

/// The burst drill: the plan's waves are each dumped into the queue at
/// once (a 4x-batch arrival burst), drained, then the wave's
/// departures run — sustained overload pulses against a bounded queue
/// and a deadline budget, with or without engine-ladder degradation.
fn run_burst(
    infra: &Infrastructure,
    base: &CapacityState,
    plan: &StreamPlan,
    request: &PlacementRequest,
    scale: &Scale,
    degrade_enabled: bool,
) -> BurstReport {
    let (high, low, floor) = scale.degrade;
    let config = ServiceConfig {
        planners: 1,
        batch: scale.batch,
        durable_acks: false,
        queue_depth: scale.wave - scale.wave / 4,
        deadline_ms: scale.budget_ms,
        degrade: DegradePolicy {
            enabled: degrade_enabled,
            high,
            low,
            floor,
            ..DegradePolicy::default()
        },
        ..ServiceConfig::default()
    };
    let service = PlacementService::new(SchedulerSession::with_state(infra, base.clone()), config);
    let shapes: Vec<Arc<ApplicationTopology>> = plan.shapes.iter().cloned().map(Arc::new).collect();

    let mut outcomes = Outcomes::default();
    let mut latencies = Vec::with_capacity(plan.arrivals());
    let started = Instant::now();
    service.serve(|handle| {
        let mut placements: Vec<Option<Placement>> = vec![None; plan.arrivals()];
        for wave in plan.waves() {
            let mut tickets: Vec<(usize, Instant, Ticket)> = Vec::new();
            for event in wave {
                if let StreamEvent::Arrive { arrival, shape } = *event {
                    let ticket = handle.submit(Arc::clone(&shapes[shape]), request.clone());
                    tickets.push((arrival, Instant::now(), ticket));
                }
            }
            for (arrival, submitted, ticket) in tickets {
                let (response, delivered) = ticket.wait_timed();
                latencies.push(delivered.duration_since(submitted));
                if let ServiceResponse::Placed(outcome) = &response {
                    placements[arrival] = Some(outcome.outcome.placement.clone());
                }
                outcomes.absorb(arrival, &response);
            }
            let mut releases = Vec::new();
            for event in wave {
                if let StreamEvent::Depart { arrival } = *event {
                    if let Some(placement) = placements[arrival].take() {
                        let shape = plan.shape_of[arrival];
                        releases.push(handle.submit_release(Arc::clone(&shapes[shape]), placement));
                    }
                }
            }
            for ticket in releases {
                assert!(
                    matches!(ticket.wait(), ServiceResponse::Released { .. }),
                    "burst drill: releases must never fail"
                );
            }
        }
    });
    let wall = started.elapsed();
    let stats = service.stats();
    BurstReport { outcomes, wall, latencies, stats }
}

/// The deterministic chaos storm: one planner, batch 1, a serialized
/// driver, and a seeded [`ChaosPlan`] injecting planner panics,
/// planning stalls, and WAL faults (disk-full and torn appends) into a
/// WAL-attached service under the `Reject` durability policy. Returns
/// the deterministic report line — every count and digest, nothing
/// wall-clock — which must be bit-identical across same-seed runs.
fn run_storm(
    infra: &Infrastructure,
    base: &CapacityState,
    plan: &StreamPlan,
    request: &PlacementRequest,
    chaos: &ChaosPlan,
    run_tag: &str,
) -> String {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("bench-chaos-wal-{}-{run_tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (journal, _) =
        Wal::open(&dir, infra, WalOptions { snapshot_every: 0, ..WalOptions::default() })
            .expect("open storm WAL");
    let mut session = SchedulerSession::with_state(infra, base.clone());
    session.attach_wal(journal);
    session.checkpoint().expect("checkpoint storm base state");
    session.set_wal_fault_hook(Some(chaos.wal_hook()));
    let config = ServiceConfig {
        planners: 1,
        batch: 1,
        durable_acks: true,
        wal_policy: DurabilityPolicy::Reject,
        wal_retries: 1,
        ..ServiceConfig::default()
    };
    let mut service = PlacementService::new(session, config);
    service.set_plan_hook(Some(chaos.plan_hook()));
    let shapes: Vec<Arc<ApplicationTopology>> = plan.shapes.iter().cloned().map(Arc::new).collect();

    let mut outcomes = Outcomes::default();
    let mut released = 0u64;
    let mut release_failures = 0u64;
    service.serve(|handle| {
        let mut placements: Vec<Option<Placement>> = vec![None; plan.arrivals()];
        for event in &plan.events {
            match *event {
                StreamEvent::Arrive { arrival, shape } => {
                    let response =
                        handle.submit(Arc::clone(&shapes[shape]), request.clone()).wait();
                    if let ServiceResponse::Placed(outcome) = &response {
                        placements[arrival] = Some(outcome.outcome.placement.clone());
                    }
                    outcomes.absorb(arrival, &response);
                }
                StreamEvent::Depart { arrival } => {
                    if let Some(placement) = placements[arrival].take() {
                        let shape = plan.shape_of[arrival];
                        match handle.submit_release(Arc::clone(&shapes[shape]), placement).wait() {
                            ServiceResponse::Released { .. } => released += 1,
                            ServiceResponse::Failed(PlacementError::Durability { .. }) => {
                                release_failures += 1;
                            }
                            other => panic!("storm release failed untyped: {other:?}"),
                        }
                    }
                }
            }
        }
    });

    assert_eq!(
        outcomes.total(),
        plan.arrivals() as u64,
        "storm: every arrival must resolve exactly once (no hangs, no drops)"
    );
    let stats = service.stats();
    assert_eq!(stats.planner_panics, outcomes.panicked, "every panic surfaces as a typed error");

    // The resilience core: nothing acknowledged is lost. The live books
    // and a cold recovery from the journal must agree exactly — failed
    // group commits were rolled back off both.
    let mut session = service.into_session();
    let latched = session.take_wal_error();
    let live = session.into_state();
    let recovered = wal::recover(&dir, infra).expect("recover storm WAL");
    assert_eq!(recovered.state, live, "storm: recovered books diverged from acknowledged commits");
    let _ = std::fs::remove_dir_all(&dir);

    format!(
        concat!(
            "{{\n",
            "      \"arrivals\": {},\n",
            "      \"placed\": {},\n",
            "      \"released\": {},\n",
            "      \"release_durability_failures\": {},\n",
            "      \"planner_panics\": {},\n",
            "      \"shed_queue_full\": {},\n",
            "      \"shed_deadline\": {},\n",
            "      \"durability_rejections\": {},\n",
            "      \"capacity_rejections\": {},\n",
            "      \"wal_faults\": {},\n",
            "      \"wal_retry_syncs\": {},\n",
            "      \"non_durable_acks\": {},\n",
            "      \"wal_error_latched\": {},\n",
            "      \"commit_digest\": \"{:016x}\",\n",
            "      \"shed_digest\": \"{:016x}\"\n",
            "    }}"
        ),
        plan.arrivals(),
        outcomes.placed,
        released,
        release_failures,
        outcomes.panicked,
        outcomes.shed_queue,
        outcomes.shed_deadline,
        outcomes.durability + release_failures,
        outcomes.rejected,
        stats.wal_faults,
        stats.wal_retry_syncs,
        stats.non_durable_acks,
        latched.is_some(),
        outcomes.commit_digest,
        outcomes.shed_digest,
    )
}

fn json_burst(report: &BurstReport) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"goodput_per_sec\": {:.2},\n",
            "      \"p50_ms\": {:.2},\n",
            "      \"p99_ms\": {:.2},\n",
            "      \"placed\": {},\n",
            "      \"shed_queue_full\": {},\n",
            "      \"shed_deadline\": {},\n",
            "      \"capacity_rejections\": {},\n",
            "      \"degraded_decisions\": {},\n",
            "      \"degraded_transitions\": {}\n",
            "    }}"
        ),
        report.goodput(),
        report.percentile_ms(0.50),
        report.percentile_ms(0.99),
        report.outcomes.placed,
        report.outcomes.shed_queue,
        report.outcomes.shed_deadline,
        report.outcomes.rejected,
        report.stats.degraded_decisions,
        report.stats.degraded_transitions,
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };
    let hosts = scale.racks * scale.hosts_per_rack;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rng = SmallRng::seed_from_u64(0xC4A0_57AE);
    let (infra, base) = sized_datacenter(scale.racks, scale.hosts_per_rack, true, &mut rng)
        .expect("valid chaos data center");

    // ---- Drill 1: seeded 4x arrival burst, degraded mode off vs on.
    let burst_plan = arrival_stream(&StreamConfig {
        requests: scale.burst_requests,
        depart_prob: 0.3,
        seed: 0x5EED_57AE,
        burst: scale.wave,
    })
    .expect("valid burst stream");
    let burst_request = PlacementRequest {
        algorithm: Algorithm::DeadlineBoundedAStar {
            deadline: Duration::from_millis(scale.plan_deadline_ms),
        },
        ..PlacementRequest::default()
    };
    let baseline = run_burst(&infra, &base, &burst_plan, &burst_request, &scale, false);
    let degraded = run_burst(&infra, &base, &burst_plan, &burst_request, &scale, true);
    for (label, report) in [("baseline", &baseline), ("degraded", &degraded)] {
        println!(
            "burst {label}: {:.1} placed/s (p50 {:.1} ms, p99 {:.1} ms), \
             {} placed / {} queue-shed / {} deadline-shed / {} rejected, {} degraded decisions",
            report.goodput(),
            report.percentile_ms(0.50),
            report.percentile_ms(0.99),
            report.outcomes.placed,
            report.outcomes.shed_queue,
            report.outcomes.shed_deadline,
            report.outcomes.rejected,
            report.stats.degraded_decisions,
        );
        assert_eq!(
            report.outcomes.total(),
            burst_plan.arrivals() as u64,
            "burst {label}: every arrival must resolve exactly once"
        );
    }
    let ratio = degraded.goodput() / baseline.goodput().max(1e-9);
    println!("degraded-mode goodput ratio under 4x burst: {ratio:.2}x");
    assert!(
        baseline.outcomes.sheds() > 0,
        "the burst must overwhelm the undegraded service into shedding"
    );
    assert!(degraded.stats.degraded_decisions > 0, "the burst must trip the degrade ladder");
    assert!(
        degraded.percentile_ms(0.99) <= 10.0 * scale.budget_ms as f64,
        "degraded p99 {:.1} ms blew the bounded-latency contract",
        degraded.percentile_ms(0.99)
    );
    if !smoke {
        assert!(
            ratio >= 2.0,
            "degraded mode must sustain >=2x the goodput of no-degradation under the burst \
             (got {ratio:.2}x)"
        );
    }

    // ---- Drill 2: deterministic chaos storm, run twice for
    // bit-identity. Chaos panics unwind through the planner on
    // schedule; keep the default hook from spamming stderr.
    let storm_plan = arrival_stream(&StreamConfig {
        requests: scale.storm_requests,
        depart_prob: 0.3,
        seed: 0x5EED_57AE,
        burst: 0,
    })
    .expect("valid storm stream");
    let storm_request =
        PlacementRequest { algorithm: Algorithm::Greedy, ..PlacementRequest::default() };
    let chaos = ChaosPlan::new(ChaosConfig {
        seed: 0xC4A0_5EED,
        panic_prob: 0.08,
        latency_prob: 0.10,
        latency_ms: 1,
        wal_fault_prob: 0.12,
        torn_fraction: 0.5,
    });
    let prior_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let storm_a = run_storm(&infra, &base, &storm_plan, &storm_request, &chaos, "a");
    let storm_b = run_storm(&infra, &base, &storm_plan, &storm_request, &chaos, "b");
    std::panic::set_hook(prior_hook);
    assert_eq!(storm_a, storm_b, "two same-seed storm runs must be bit-identical");
    println!("storm report (identical across two same-seed runs):\n    {storm_a}");

    let artifact_path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_chaos_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json")
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"placement service chaos harness\",\n",
            "  \"hosts\": {},\n",
            "  \"smoke\": {},\n",
            "  \"cores\": {},\n",
            "  \"burst\": {{\n",
            "    \"arrivals\": {},\n",
            "    \"wave\": {},\n",
            "    \"batch\": {},\n",
            "    \"deadline_budget_ms\": {},\n",
            "    \"baseline\": {},\n",
            "    \"degraded\": {},\n",
            "    \"goodput_ratio\": {:.2}\n",
            "  }},\n",
            "  \"storm\": {{\n",
            "    \"report\": {},\n",
            "    \"bit_identical_reruns\": true,\n",
            "    \"recovered_matches_live\": true\n",
            "  }}\n",
            "}}\n"
        ),
        hosts,
        smoke,
        cores,
        burst_plan.arrivals(),
        scale.wave,
        scale.batch,
        scale.budget_ms,
        json_burst(&baseline),
        json_burst(&degraded),
        ratio,
        storm_a,
    );
    std::fs::write(artifact_path, &json).expect("write chaos artifact");
    println!("wrote {artifact_path}");
    serde_json::from_str::<serde_json::Value>(&json)
        .expect("chaos artifact must be well-formed JSON");
}
