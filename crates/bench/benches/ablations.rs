//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * the estimate-based heuristic lower bound on/off in EG (the paper's
//!   core idea vs a myopic greedy);
//! * diversity-zone symmetry reduction (§III-B3) on/off in BA\*;
//! * parallel vs serial candidate scoring in EG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ostro_bench::{multi_tier_instance, Args};
use ostro_core::{Algorithm, ObjectiveWeights, PlacementRequest, Scheduler};

fn bench_args() -> Args {
    Args { racks: 10, hosts_per_rack: 8, ..Args::default() }
}

fn bench_estimate_ablation(c: &mut Criterion) {
    let args = bench_args();
    let (infra, state, topology) = multi_tier_instance(25, true, &args, 7).unwrap();
    let scheduler = Scheduler::new(&infra);
    let mut group = c.benchmark_group("ablation_estimate");
    group.sample_size(10);
    for (label, use_estimate) in [("eg_with_estimate", true), ("eg_without_estimate", false)] {
        let request = PlacementRequest {
            algorithm: Algorithm::Greedy,
            weights: ObjectiveWeights::SIMULATION,
            use_estimate,
            ..PlacementRequest::default()
        };
        // Record the quality difference once, so the bench log shows
        // what the speedup costs.
        let outcome = scheduler.place(&topology, &state, &request).unwrap();
        eprintln!(
            "{label}: bandwidth {}, new hosts {}",
            outcome.reserved_bandwidth, outcome.new_active_hosts
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &request, |b, request| {
            b.iter(|| scheduler.place(&topology, &state, request).unwrap());
        });
    }
    group.finish();
}

fn bench_symmetry_ablation(c: &mut Criterion) {
    let args = bench_args();
    let (infra, state, topology) = multi_tier_instance(25, false, &args, 7).unwrap();
    let scheduler = Scheduler::new(&infra);
    let mut group = c.benchmark_group("ablation_symmetry");
    group.sample_size(10);
    for (label, zone_symmetry) in [("bastar_symmetry_on", true), ("bastar_symmetry_off", false)] {
        let request = PlacementRequest {
            algorithm: Algorithm::BoundedAStar,
            weights: ObjectiveWeights::SIMULATION,
            zone_symmetry,
            max_expansions: 200,
            ..PlacementRequest::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &request, |b, request| {
            b.iter(|| scheduler.place(&topology, &state, request).unwrap());
        });
    }
    group.finish();
}

fn bench_parallel_ablation(c: &mut Criterion) {
    let args = bench_args();
    let (infra, state, topology) = multi_tier_instance(50, true, &args, 7).unwrap();
    let scheduler = Scheduler::new(&infra);
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    for (label, parallel) in [("eg_parallel", true), ("eg_serial", false)] {
        let request = PlacementRequest {
            algorithm: Algorithm::Greedy,
            weights: ObjectiveWeights::SIMULATION,
            parallel,
            ..PlacementRequest::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &request, |b, request| {
            b.iter(|| scheduler.place(&topology, &state, request).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_estimate_ablation,
    bench_symmetry_ablation,
    bench_parallel_ablation
);
criterion_main!(benches);
