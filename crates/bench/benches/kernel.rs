//! Search-kernel microbenchmarks: child-expansion throughput
//! (place/undo cycles per second, delta-undo vs the clone-based
//! reference) and candidate-scoring latency, on a flat and a 3-level
//! data center of 1,024 hosts each.
//!
//! Besides the usual stdout report, writes `BENCH_kernel.json` at the
//! repository root with the derived per-cycle times and the
//! delta-vs-clone speedup.
//!
//! `--smoke` runs a fast 64-host variant (used by `scripts/verify.sh`)
//! and writes `target/BENCH_kernel_smoke.json` instead, leaving the
//! committed artifact untouched. Both artifacts carry a seeded
//! `decision_digest` folding every EG/BA*/DBA* assignment into one
//! hash — verify.sh diffs it between the `simd` and scalar builds to
//! pin that vectorized filtering never changes a placement decision.

use std::time::Duration;

use criterion::Criterion;
use ostro_core::bench_support as kernel;
use ostro_core::{Algorithm, PlacementRequest, Scheduler};
use ostro_datacenter::{CapacityState, HostId, Infrastructure, InfrastructureBuilder};
use ostro_model::{ApplicationTopology, Bandwidth, Resources, TopologyBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Expansions per timed call; large enough to amortize harness setup.
const CYCLES: u64 = 2_048;
/// Nodes pre-placed before the measured expansions, so each clone in
/// the baseline copies a realistically loaded search state.
const PREFIX: usize = 96;
/// Application size: a 128-VM chain with cross links.
const VMS: usize = 128;

/// The `--smoke` variant: 64 hosts, a 24-VM chain, and few enough
/// cycles that the whole bench finishes in seconds.
const SMOKE_CYCLES: u64 = 256;
const SMOKE_PREFIX: usize = 12;
const SMOKE_VMS: usize = 24;

/// One run's geometry, full-scale or smoke.
struct Scale {
    vms: usize,
    prefix: usize,
    cycles: u64,
    /// flat: racks x hosts-per-rack; three-level: racks-per-pod is
    /// derived so both data centers keep the same host count.
    racks: usize,
    hosts_per_rack: usize,
    min_hosts: usize,
}

const FULL: Scale = Scale {
    vms: VMS,
    prefix: PREFIX,
    cycles: CYCLES,
    racks: 32,
    hosts_per_rack: 32,
    min_hosts: 1_024,
};
const SMOKE: Scale = Scale {
    vms: SMOKE_VMS,
    prefix: SMOKE_PREFIX,
    cycles: SMOKE_CYCLES,
    racks: 8,
    hosts_per_rack: 8,
    min_hosts: 64,
};

fn app_topology(vms: usize) -> ApplicationTopology {
    let mut b = TopologyBuilder::new("kernel");
    let ids: Vec<_> = (0..vms).map(|i| b.vm(format!("vm{i}"), 1, 1_024).unwrap()).collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], Bandwidth::from_mbps(50)).unwrap();
    }
    for i in (0..vms.saturating_sub(5)).step_by(8) {
        b.link(ids[i], ids[i + 4], Bandwidth::from_mbps(25)).unwrap();
    }
    b.build().unwrap()
}

/// `racks` racks x `hosts_per_rack` hosts under one root switch
/// (transparent pod).
fn flat_infra(scale: &Scale) -> Infrastructure {
    InfrastructureBuilder::flat(
        "flat",
        scale.racks,
        scale.hosts_per_rack,
        Resources::new(64, 131_072, 4_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()
    .unwrap()
}

/// 2 sites x 4 pods x racks x hosts with a real pod-switch layer, so
/// routes span all three levels; host count matches the flat variant.
fn three_level_infra(scale: &Scale) -> Infrastructure {
    let racks_per_pod = (scale.racks * scale.hosts_per_rack) / (2 * 4 * 16);
    let (racks_per_pod, hosts_per_rack) = if racks_per_pod == 0 {
        (2, scale.racks * scale.hosts_per_rack / 16)
    } else {
        (racks_per_pod, 16)
    };
    let mut b = InfrastructureBuilder::new();
    for s in 0..2 {
        let site = b.site(format!("s{s}"), Bandwidth::from_gbps(400));
        for p in 0..4 {
            let pod = b.pod(site, format!("s{s}p{p}"), Bandwidth::from_gbps(200)).unwrap();
            for r in 0..racks_per_pod {
                let rack =
                    b.rack_in_pod(pod, format!("s{s}p{p}r{r}"), Bandwidth::from_gbps(100)).unwrap();
                for h in 0..hosts_per_rack {
                    b.host(
                        rack,
                        format!("s{s}p{p}r{r}h{h}"),
                        Resources::new(64, 131_072, 4_000),
                        Bandwidth::from_gbps(10),
                    )
                    .unwrap();
                }
            }
        }
    }
    b.build().unwrap()
}

fn bench_kernel(c: &mut Criterion, scale: &Scale) {
    let topo = app_topology(scale.vms);
    for (label, infra) in [("flat", flat_infra(scale)), ("three_level", three_level_infra(scale))] {
        assert!(infra.host_count() >= scale.min_hosts);
        let base = CapacityState::new(&infra);

        let mut group = c.benchmark_group(format!("child_expansion/{label}"));
        group.sample_size(20);
        // Harness construction alone, subtracted out when deriving
        // per-cycle figures.
        group.bench_function("setup_only", |b| {
            b.iter(|| kernel::expansion_cycles_delta(&topo, &infra, &base, scale.prefix, 0));
        });
        group.bench_function("delta_undo", |b| {
            b.iter(|| {
                kernel::expansion_cycles_delta(&topo, &infra, &base, scale.prefix, scale.cycles)
            });
        });
        group.bench_function("clone_based", |b| {
            b.iter(|| {
                kernel::expansion_cycles_clone(&topo, &infra, &base, scale.prefix, scale.cycles)
            });
        });
        group.finish();

        let mut group = c.benchmark_group(format!("candidate_scoring/{label}"));
        group.sample_size(10);
        // The memo-off single-thread engine: what every scoring round
        // cost before chunked dispatch and bound memoization landed.
        group.bench_function("serial", |b| {
            b.iter(|| kernel::scoring_round(&topo, &infra, &base, false, false, 1, scale.prefix));
        });
        // The engine's current defaults: chunked dispatch plus the
        // heuristic-bound memo cache (cold per call, but untouched
        // hosts with equal availability share one resolution).
        group.bench_function("parallel", |b| {
            b.iter(|| kernel::scoring_round(&topo, &infra, &base, true, true, 0, scale.prefix));
        });
        // Chunked dispatch with the memo cache disabled, isolating the
        // dispatch overhead from the caching win.
        group.bench_function("parallel_uncached", |b| {
            b.iter(|| kernel::scoring_round(&topo, &infra, &base, true, false, 0, scale.prefix));
        });
        group.finish();
    }
}

/// splitmix64 finalizer, used to fold placement decisions into the
/// digest below.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small seeded topology family for the decision digest: chains with
/// cross links and varied per-VM demands.
fn digest_topology(seed: u64) -> ApplicationTopology {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vms = rng.gen_range(6..=12);
    let mut b = TopologyBuilder::new(format!("digest{seed}"));
    let ids: Vec<_> = (0..vms)
        .map(|i| {
            b.vm(format!("vm{i}"), rng.gen_range(1..=4), 1_024 * rng.gen_range(1..=4)).unwrap()
        })
        .collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], Bandwidth::from_mbps(rng.gen_range(10..=200))).unwrap();
    }
    if vms > 4 {
        b.link(ids[0], ids[vms / 2], Bandwidth::from_mbps(rng.gen_range(10..=100))).unwrap();
    }
    b.build().unwrap()
}

/// Places a seeded scenario set through the public [`Scheduler`] API
/// with EG, BA*, and DBA* on both data-center shapes, folding every
/// (node, host) assignment into one hash. `scripts/verify.sh` diffs
/// this value between the `simd` and scalar builds: the vectorized
/// candidate sweep must never change a decision.
fn decision_digest() -> u64 {
    let algorithms = [
        Algorithm::Greedy,
        Algorithm::BoundedAStar,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(5) },
    ];
    let mut digest = 0u64;
    for (shape, infra) in [("flat", flat_infra(&SMOKE)), ("three_level", three_level_infra(&SMOKE))]
    {
        // Seeded background load so candidate masks have real structure.
        let mut rng = SmallRng::seed_from_u64(0x00D1_6E57 ^ shape.len() as u64);
        let mut base = CapacityState::new(&infra);
        for _ in 0..infra.host_count() / 2 {
            let host = HostId::from_index(rng.gen_range(0..infra.host_count() as u32));
            let res = Resources::new(rng.gen_range(1..8), 1_024 * rng.gen_range(1..16), 0);
            let _ = base.reserve_node(host, res);
        }
        let scheduler = Scheduler::new(&infra);
        for algorithm in algorithms {
            let request = PlacementRequest {
                algorithm,
                max_expansions: 50_000,
                ..PlacementRequest::default()
            };
            for seed in 0..4u64 {
                let topo = digest_topology(seed);
                digest = mix64(digest ^ mix64(seed ^ (shape.len() as u64) << 8));
                match scheduler.place(&topo, &base, &request) {
                    Ok(outcome) => {
                        for (node, host) in outcome.placement.iter() {
                            digest = mix64(
                                digest ^ (((node.index() as u64) << 32) | host.index() as u64),
                            );
                        }
                    }
                    Err(_) => digest = mix64(digest ^ 0xDEAD),
                }
            }
        }
    }
    digest
}

fn median_of(c: &Criterion, id: &str) -> Duration {
    c.measurements
        .iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("missing measurement {id}"))
        .median
}

/// Nanoseconds per expansion cycle, with harness setup subtracted.
fn per_cycle_ns(c: &Criterion, label: &str, which: &str, cycles: u64) -> f64 {
    let setup = median_of(c, &format!("child_expansion/{label}/setup_only"));
    let total = median_of(c, &format!("child_expansion/{label}/{which}"));
    let net = total.saturating_sub(setup).max(Duration::from_nanos(1));
    net.as_nanos() as f64 / cycles as f64
}

fn write_artifact(c: &Criterion, smoke: bool, digest: u64) {
    let cycles = if smoke { SMOKE_CYCLES } else { CYCLES };
    let mut sections = Vec::new();
    for label in ["flat", "three_level"] {
        let delta_ns = per_cycle_ns(c, label, "delta_undo", cycles);
        let clone_ns = per_cycle_ns(c, label, "clone_based", cycles);
        let speedup = clone_ns / delta_ns;
        let scoring_serial = median_of(c, &format!("candidate_scoring/{label}/serial"));
        let scoring_parallel = median_of(c, &format!("candidate_scoring/{label}/parallel"));
        let scoring_uncached =
            median_of(c, &format!("candidate_scoring/{label}/parallel_uncached"));
        let scoring_speedup = scoring_serial.as_secs_f64() / scoring_parallel.as_secs_f64();
        sections.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"delta_undo_ns_per_cycle\": {:.1},\n",
                "      \"clone_based_ns_per_cycle\": {:.1},\n",
                "      \"delta_undo_cycles_per_sec\": {:.0},\n",
                "      \"clone_based_cycles_per_sec\": {:.0},\n",
                "      \"speedup\": {:.2},\n",
                "      \"scoring_serial_us\": {:.1},\n",
                "      \"scoring_parallel_us\": {:.1},\n",
                "      \"scoring_parallel_uncached_us\": {:.1},\n",
                "      \"scoring_speedup\": {:.2}\n",
                "    }}"
            ),
            label,
            delta_ns,
            clone_ns,
            1e9 / delta_ns,
            1e9 / clone_ns,
            speedup,
            scoring_serial.as_secs_f64() * 1e6,
            scoring_parallel.as_secs_f64() * 1e6,
            scoring_uncached.as_secs_f64() * 1e6,
            scoring_speedup,
        ));
        println!(
            "{label}: delta {delta_ns:.0} ns/cycle, clone {clone_ns:.0} ns/cycle, \
             speedup {speedup:.2}x"
        );
    }
    let scale = if smoke { &SMOKE } else { &FULL };
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"search-kernel child expansion and candidate scoring\",\n",
            "  \"hosts\": {},\n",
            "  \"vms\": {},\n",
            "  \"prefix_placed\": {},\n",
            "  \"cycles_per_call\": {},\n",
            "  \"simd\": {},\n",
            "  \"decision_digest\": \"{:016x}\",\n",
            "  \"topologies\": {{\n{}\n  }}\n",
            "}}\n"
        ),
        scale.racks * scale.hosts_per_rack,
        scale.vms,
        scale.prefix,
        cycles,
        cfg!(feature = "simd"),
        digest,
        sections.join(",\n"),
    );
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_kernel_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json")
    };
    std::fs::write(path, json).expect("write kernel benchmark artifact");
    println!("decision digest: {digest:016x}");
    println!("wrote {path}");
}

fn main() {
    // The vendored criterion facade ignores argv; parse by hand so
    // `--smoke` composes with whatever the harness passes through.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let scale = if smoke { &SMOKE } else { &FULL };
    let mut criterion = Criterion::default().configure_from_args();
    bench_kernel(&mut criterion, scale);
    let digest = decision_digest();
    write_artifact(&criterion, smoke, digest);
}
