//! Search-kernel microbenchmarks: child-expansion throughput
//! (place/undo cycles per second, delta-undo vs the clone-based
//! reference) and candidate-scoring latency, on a flat and a 3-level
//! data center of 1,024 hosts each.
//!
//! Besides the usual stdout report, writes `BENCH_kernel.json` at the
//! repository root with the derived per-cycle times and the
//! delta-vs-clone speedup.

use std::time::Duration;

use criterion::Criterion;
use ostro_core::bench_support as kernel;
use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
use ostro_model::{ApplicationTopology, Bandwidth, Resources, TopologyBuilder};

/// Expansions per timed call; large enough to amortize harness setup.
const CYCLES: u64 = 2_048;
/// Nodes pre-placed before the measured expansions, so each clone in
/// the baseline copies a realistically loaded search state.
const PREFIX: usize = 96;
/// Application size: a 128-VM chain with cross links.
const VMS: usize = 128;

fn app_topology() -> ApplicationTopology {
    let mut b = TopologyBuilder::new("kernel");
    let ids: Vec<_> = (0..VMS).map(|i| b.vm(format!("vm{i}"), 1, 1_024).unwrap()).collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], Bandwidth::from_mbps(50)).unwrap();
    }
    for i in (0..VMS.saturating_sub(5)).step_by(8) {
        b.link(ids[i], ids[i + 4], Bandwidth::from_mbps(25)).unwrap();
    }
    b.build().unwrap()
}

/// 32 racks x 32 hosts under one root switch (transparent pod).
fn flat_infra() -> Infrastructure {
    InfrastructureBuilder::flat(
        "flat",
        32,
        32,
        Resources::new(64, 131_072, 4_000),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()
    .unwrap()
}

/// 2 sites x 4 pods x 8 racks x 16 hosts = 1,024 hosts with a real
/// pod-switch layer, so routes span all three levels.
fn three_level_infra() -> Infrastructure {
    let mut b = InfrastructureBuilder::new();
    for s in 0..2 {
        let site = b.site(format!("s{s}"), Bandwidth::from_gbps(400));
        for p in 0..4 {
            let pod = b.pod(site, format!("s{s}p{p}"), Bandwidth::from_gbps(200)).unwrap();
            for r in 0..8 {
                let rack =
                    b.rack_in_pod(pod, format!("s{s}p{p}r{r}"), Bandwidth::from_gbps(100)).unwrap();
                for h in 0..16 {
                    b.host(
                        rack,
                        format!("s{s}p{p}r{r}h{h}"),
                        Resources::new(64, 131_072, 4_000),
                        Bandwidth::from_gbps(10),
                    )
                    .unwrap();
                }
            }
        }
    }
    b.build().unwrap()
}

fn bench_kernel(c: &mut Criterion) {
    let topo = app_topology();
    for (label, infra) in [("flat", flat_infra()), ("three_level", three_level_infra())] {
        assert!(infra.host_count() >= 1_024);
        let base = CapacityState::new(&infra);

        let mut group = c.benchmark_group(format!("child_expansion/{label}"));
        group.sample_size(20);
        // Harness construction alone, subtracted out when deriving
        // per-cycle figures.
        group.bench_function("setup_only", |b| {
            b.iter(|| kernel::expansion_cycles_delta(&topo, &infra, &base, PREFIX, 0));
        });
        group.bench_function("delta_undo", |b| {
            b.iter(|| kernel::expansion_cycles_delta(&topo, &infra, &base, PREFIX, CYCLES));
        });
        group.bench_function("clone_based", |b| {
            b.iter(|| kernel::expansion_cycles_clone(&topo, &infra, &base, PREFIX, CYCLES));
        });
        group.finish();

        let mut group = c.benchmark_group(format!("candidate_scoring/{label}"));
        group.sample_size(10);
        // The memo-off single-thread engine: what every scoring round
        // cost before chunked dispatch and bound memoization landed.
        group.bench_function("serial", |b| {
            b.iter(|| kernel::scoring_round(&topo, &infra, &base, false, false, 1, PREFIX));
        });
        // The engine's current defaults: chunked dispatch plus the
        // heuristic-bound memo cache (cold per call, but untouched
        // hosts with equal availability share one resolution).
        group.bench_function("parallel", |b| {
            b.iter(|| kernel::scoring_round(&topo, &infra, &base, true, true, 0, PREFIX));
        });
        // Chunked dispatch with the memo cache disabled, isolating the
        // dispatch overhead from the caching win.
        group.bench_function("parallel_uncached", |b| {
            b.iter(|| kernel::scoring_round(&topo, &infra, &base, true, false, 0, PREFIX));
        });
        group.finish();
    }
}

fn median_of(c: &Criterion, id: &str) -> Duration {
    c.measurements
        .iter()
        .find(|m| m.id == id)
        .unwrap_or_else(|| panic!("missing measurement {id}"))
        .median
}

/// Nanoseconds per expansion cycle, with harness setup subtracted.
fn per_cycle_ns(c: &Criterion, label: &str, which: &str) -> f64 {
    let setup = median_of(c, &format!("child_expansion/{label}/setup_only"));
    let total = median_of(c, &format!("child_expansion/{label}/{which}"));
    let net = total.saturating_sub(setup).max(Duration::from_nanos(1));
    net.as_nanos() as f64 / CYCLES as f64
}

fn write_artifact(c: &Criterion) {
    let mut sections = Vec::new();
    for label in ["flat", "three_level"] {
        let delta_ns = per_cycle_ns(c, label, "delta_undo");
        let clone_ns = per_cycle_ns(c, label, "clone_based");
        let speedup = clone_ns / delta_ns;
        let scoring_serial = median_of(c, &format!("candidate_scoring/{label}/serial"));
        let scoring_parallel = median_of(c, &format!("candidate_scoring/{label}/parallel"));
        let scoring_uncached =
            median_of(c, &format!("candidate_scoring/{label}/parallel_uncached"));
        let scoring_speedup = scoring_serial.as_secs_f64() / scoring_parallel.as_secs_f64();
        sections.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"delta_undo_ns_per_cycle\": {:.1},\n",
                "      \"clone_based_ns_per_cycle\": {:.1},\n",
                "      \"delta_undo_cycles_per_sec\": {:.0},\n",
                "      \"clone_based_cycles_per_sec\": {:.0},\n",
                "      \"speedup\": {:.2},\n",
                "      \"scoring_serial_us\": {:.1},\n",
                "      \"scoring_parallel_us\": {:.1},\n",
                "      \"scoring_parallel_uncached_us\": {:.1},\n",
                "      \"scoring_speedup\": {:.2}\n",
                "    }}"
            ),
            label,
            delta_ns,
            clone_ns,
            1e9 / delta_ns,
            1e9 / clone_ns,
            speedup,
            scoring_serial.as_secs_f64() * 1e6,
            scoring_parallel.as_secs_f64() * 1e6,
            scoring_uncached.as_secs_f64() * 1e6,
            scoring_speedup,
        ));
        println!(
            "{label}: delta {delta_ns:.0} ns/cycle, clone {clone_ns:.0} ns/cycle, \
             speedup {speedup:.2}x"
        );
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"search-kernel child expansion and candidate scoring\",\n",
            "  \"hosts\": 1024,\n",
            "  \"vms\": {},\n",
            "  \"prefix_placed\": {},\n",
            "  \"cycles_per_call\": {},\n",
            "  \"topologies\": {{\n{}\n  }}\n",
            "}}\n"
        ),
        VMS,
        PREFIX,
        CYCLES,
        sections.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    std::fs::write(path, json).expect("write BENCH_kernel.json");
    println!("wrote {path}");
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_kernel(&mut criterion);
    write_artifact(&criterion);
}
