//! Scaling curve for the two-level sharded placement: pod-digest
//! pre-selection plus range-restricted exact search, measured on
//! multi-pod fleets from 1k to 100k hosts against the plain unsharded
//! engine.
//!
//! Writes `BENCH_shard.json` at the repository root with the latency
//! curve, the quality ratio at the smallest size (where unsharded is
//! cheap enough to compare), and the PR's two scaling gates:
//! the 100k-host sharded point must land within 2x of the 10k-host
//! sharded point, and the *unsharded* 10k point must already exceed
//! the sharded 100k point.
//!
//! `--smoke` runs a 64-host fleet (used by `scripts/verify.sh`) and
//! writes `target/BENCH_shard_smoke.json` instead. Both artifacts
//! carry two seeded decision digests over EG/BA*/DBA*:
//! `unsharded_digest` (plain requests) and `sharded_all_digest`
//! (sharded requests whose K spans every pod) — verify.sh diffs them
//! to pin that K-covering-all-pods sharding never changes a decision.
//!
//! Each stdout row is also emitted as a machine-readable
//! `shard_curve_row {json}` line; `benches/scaling.rs` emits rows of
//! the same shape for its smaller fleets, so both feed one curve.

use std::time::Duration;

use criterion::Criterion;
use ostro_core::{Algorithm, PlacementRequest, SchedulerSession};
use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::{ApplicationTopology, Bandwidth, Resources, TopologyBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One fleet on the curve. Host counts: pods x racks x hosts-per-rack.
/// The 10k and 100k fleets share a 1,000-host pod size, so the exact
/// stage does identical work at both and the curve isolates the
/// fleet-size-dependent costs.
struct Fleet {
    pods: usize,
    racks_per_pod: usize,
    hosts_per_rack: usize,
    /// Measure the unsharded baseline too (skipped at 100k, where only
    /// the sharded engine is expected to stay interactive).
    unsharded: bool,
}

impl Fleet {
    const fn hosts(&self) -> usize {
        self.pods * self.racks_per_pod * self.hosts_per_rack
    }
}

const CURVE: [Fleet; 3] = [
    Fleet { pods: 10, racks_per_pod: 5, hosts_per_rack: 20, unsharded: true },
    Fleet { pods: 10, racks_per_pod: 25, hosts_per_rack: 40, unsharded: true },
    Fleet { pods: 100, racks_per_pod: 25, hosts_per_rack: 40, unsharded: false },
];

const SMOKE_FLEET: [Fleet; 1] =
    [Fleet { pods: 4, racks_per_pod: 2, hosts_per_rack: 8, unsharded: true }];

fn build_fleet(f: &Fleet) -> (Infrastructure, CapacityState) {
    let mut rng = SmallRng::seed_from_u64(0x5AAD_0000 ^ f.hosts() as u64);
    ostro_sim::scenarios::pod_fleet(f.pods, f.racks_per_pod, f.hosts_per_rack, true, &mut rng)
        .expect("fleet dimensions are nonzero")
}

/// The measured tenant: a 24-VM chain with cross links — large enough
/// that the exact stage does real expansion work at every fleet size.
fn app_topology() -> ApplicationTopology {
    let mut b = TopologyBuilder::new("shard-bench");
    let ids: Vec<_> = (0..24).map(|i| b.vm(format!("vm{i}"), 2, 2_048).unwrap()).collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], Bandwidth::from_mbps(80)).unwrap();
    }
    for i in (0..ids.len() - 5).step_by(6) {
        b.link(ids[i], ids[i + 4], Bandwidth::from_mbps(40)).unwrap();
    }
    b.build().unwrap()
}

fn request(shard: bool) -> PlacementRequest {
    PlacementRequest { shard, ..PlacementRequest::default() }
}

fn bench_curve(c: &mut Criterion, fleets: &[Fleet]) {
    let topo = app_topology();
    for f in fleets {
        let hosts = f.hosts();
        let (infra, state) = build_fleet(f);
        let mut group = c.benchmark_group(format!("shard_curve/{hosts}"));
        group.sample_size(10);
        // Sessions are the intended long-running deployment: pod
        // digests and capacity columns stay journal-maintained instead
        // of being rebuilt per request.
        let mut session = SchedulerSession::with_state(&infra, state.clone());
        group.bench_function("sharded", |b| {
            b.iter(|| session.place(&topo, &request(true)).unwrap());
        });
        if f.unsharded {
            let mut session = SchedulerSession::with_state(&infra, state.clone());
            group.bench_function("unsharded", |b| {
                b.iter(|| session.place(&topo, &request(false)).unwrap());
            });
        }
        group.finish();
    }
}

/// splitmix64 finalizer for the decision digests.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded topology family for the digests: chains with cross links
/// and varied demands.
fn digest_topology(seed: u64) -> ApplicationTopology {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vms = rng.gen_range(5..=10);
    let mut b = TopologyBuilder::new(format!("digest{seed}"));
    let ids: Vec<_> = (0..vms)
        .map(|i| {
            b.vm(format!("vm{i}"), rng.gen_range(1..=4), 1_024 * rng.gen_range(1..=4)).unwrap()
        })
        .collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], Bandwidth::from_mbps(rng.gen_range(10..=150))).unwrap();
    }
    b.build().unwrap()
}

/// Folds EG/BA*/DBA* decisions over seeded topologies on the smoke
/// fleet into one hash. `all_pods` switches the requests to sharded
/// mode with K spanning every pod — which must not change a single
/// assignment, so `scripts/verify.sh` string-diffs the two values.
fn decision_digest(all_pods: bool) -> u64 {
    let (infra, mut base) = build_fleet(&SMOKE_FLEET[0]);
    // Extra seeded background load on top of the Table IV profile.
    let mut rng = SmallRng::seed_from_u64(0x00D1_6E58);
    for _ in 0..infra.host_count() / 2 {
        let host = HostId::from_index(rng.gen_range(0..infra.host_count() as u32));
        let res = Resources::new(rng.gen_range(1..6), 1_024 * rng.gen_range(1..8), 0);
        let _ = base.reserve_node(host, res);
    }
    let algorithms = [
        Algorithm::Greedy,
        Algorithm::BoundedAStar,
        Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(5) },
    ];
    let scheduler = ostro_core::Scheduler::new(&infra);
    let mut digest = 0u64;
    for algorithm in algorithms {
        let request = PlacementRequest {
            algorithm,
            max_expansions: 50_000,
            shard: all_pods,
            pods_considered: if all_pods { infra.pods().len() } else { 0 },
            ..PlacementRequest::default()
        };
        for seed in 0..4u64 {
            let topo = digest_topology(seed);
            digest = mix64(digest ^ mix64(seed));
            match scheduler.place(&topo, &base, &request) {
                Ok(outcome) => {
                    for (node, host) in outcome.placement.iter() {
                        digest =
                            mix64(digest ^ (((node.index() as u64) << 32) | host.index() as u64));
                    }
                }
                Err(_) => digest = mix64(digest ^ 0xDEAD),
            }
        }
    }
    digest
}

/// Untimed single-shot objectives at the smallest fleet: how much
/// placement quality the top-K restriction gives up when the unsharded
/// search is still affordable to run.
fn quality_ratio(fleet: &Fleet) -> (f64, f64, f64) {
    let (infra, state) = build_fleet(fleet);
    let topo = app_topology();
    let scheduler = ostro_core::Scheduler::new(&infra);
    let sharded = scheduler.place(&topo, &state, &request(true)).expect("sharded placement");
    let unsharded = scheduler.place(&topo, &state, &request(false)).expect("unsharded placement");
    (sharded.objective, unsharded.objective, sharded.objective / unsharded.objective.max(1e-12))
}

fn median_ms(c: &Criterion, id: &str) -> Option<f64> {
    c.measurements.iter().find(|m| m.id == id).map(|m| m.median.as_secs_f64() * 1e3)
}

fn write_artifact(c: &Criterion, smoke: bool, fleets: &[Fleet]) {
    let mut rows = Vec::new();
    let mut sharded_ms = std::collections::BTreeMap::new();
    let mut unsharded_ms = std::collections::BTreeMap::new();
    for f in fleets {
        let hosts = f.hosts();
        let sharded = median_ms(c, &format!("shard_curve/{hosts}/sharded"))
            .unwrap_or_else(|| panic!("missing sharded measurement for {hosts}"));
        sharded_ms.insert(hosts, sharded);
        let unsharded = median_ms(c, &format!("shard_curve/{hosts}/unsharded"));
        if let Some(u) = unsharded {
            unsharded_ms.insert(hosts, u);
        }
        let unsharded_json = unsharded.map_or("null".to_owned(), |u| format!("{u:.3}"));
        rows.push(format!(
            concat!(
                "    {{\"hosts\": {}, \"pods\": {}, ",
                "\"sharded_ms\": {:.3}, \"unsharded_ms\": {}}}"
            ),
            hosts, f.pods, sharded, unsharded_json,
        ));
        println!(
            "shard_curve_row {{\"fleet\": \"pod_fleet\", \"hosts\": {hosts}, \"pods\": {}, \
             \"sharded_ms\": {sharded:.3}, \"unsharded_ms\": {unsharded_json}}}",
            f.pods,
        );
    }
    let (sharded_obj, unsharded_obj, ratio) = quality_ratio(&fleets[0]);
    let unsharded_digest = decision_digest(false);
    let sharded_all_digest = decision_digest(true);
    let gates = if smoke {
        "  \"gates\": null,\n".to_owned()
    } else {
        let s10k = sharded_ms[&10_000];
        let s100k = sharded_ms[&100_000];
        let u10k = unsharded_ms[&10_000];
        format!(
            concat!(
                "  \"gates\": {{\n",
                "    \"sharded_100k_over_10k\": {:.2},\n",
                "    \"sharded_100k_within_2x_of_10k\": {},\n",
                "    \"unsharded_10k_over_sharded_100k\": {:.2},\n",
                "    \"unsharded_10k_exceeds_sharded_100k\": {}\n",
                "  }},\n"
            ),
            s100k / s10k,
            s100k <= 2.0 * s10k,
            u10k / s100k,
            u10k > s100k,
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"two-level sharded placement scaling curve\",\n",
            "  \"smoke\": {},\n",
            "  \"vms\": 24,\n",
            "  \"pods_considered\": \"default (4)\",\n",
            "  \"curve\": [\n{}\n  ],\n",
            "{}",
            "  \"quality\": {{\n",
            "    \"hosts\": {},\n",
            "    \"sharded_objective\": {:.6},\n",
            "    \"unsharded_objective\": {:.6},\n",
            "    \"sharded_over_unsharded\": {:.4}\n",
            "  }},\n",
            "  \"unsharded_digest\": \"{:016x}\",\n",
            "  \"sharded_all_digest\": \"{:016x}\"\n",
            "}}\n"
        ),
        smoke,
        rows.join(",\n"),
        gates,
        fleets[0].hosts(),
        sharded_obj,
        unsharded_obj,
        ratio,
        unsharded_digest,
        sharded_all_digest,
    );
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_shard_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json")
    };
    std::fs::write(path, json).expect("write shard benchmark artifact");
    println!("unsharded digest: {unsharded_digest:016x}");
    println!("sharded (K = all pods) digest: {sharded_all_digest:016x}");
    println!("wrote {path}");
}

fn main() {
    // The vendored criterion facade ignores argv; parse by hand so
    // `--smoke` composes with whatever the harness passes through.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let fleets: &[Fleet] = if smoke { &SMOKE_FLEET } else { &CURVE };
    let mut criterion = Criterion::default().configure_from_args();
    bench_curve(&mut criterion, fleets);
    write_artifact(&criterion, smoke, fleets);
}
