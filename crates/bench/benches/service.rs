//! Sustained-load benchmark for the concurrent placement service: one
//! 1,024-host data center admitting a seeded arrival/departure stream
//! (`ostro_sim::stream`), comparing the serial warm-session baseline
//! against the optimistic snapshot-plan / validate-commit pipeline at
//! increasing planner counts.
//!
//! Every service row is checked for the service's core contract —
//! replaying the acknowledged mutations in commit-sequence order over
//! the base state reproduces the final books exactly — and the run
//! ends with a crash drill: a WAL-attached service is dropped
//! mid-stream with no checkpoint and recovery must reproduce every
//! acknowledged commit.
//!
//! Writes `BENCH_service.json` at the repository root with sustained
//! req/s and p50/p99 submit-to-ack latency per planner count. The ≥4×
//! scaling assertion only fires when the machine actually has ≥ 8
//! cores (request-level parallelism cannot beat physics on fewer);
//! the artifact records the detected core count so readers can judge
//! the numbers. `--smoke` runs a fast 64-host variant for
//! `scripts/verify.sh`, writing under `target/`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ostro_core::{
    wal, Algorithm, Placement, PlacementRequest, PlacementService, Scheduler, SchedulerSession,
    ServiceConfig, ServiceResponse, Ticket, Wal, WalOptions,
};
use ostro_datacenter::{CapacityState, Infrastructure};
use ostro_model::ApplicationTopology;
use ostro_sim::scenarios::sized_datacenter;
use ostro_sim::stream::{arrival_stream, StreamConfig, StreamEvent, StreamPlan};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Scale {
    racks: usize,
    hosts_per_rack: usize,
    requests: usize,
    planner_counts: &'static [usize],
}

const FULL: Scale =
    Scale { racks: 64, hosts_per_rack: 16, requests: 160, planner_counts: &[1, 2, 4, 8] };
const SMOKE: Scale = Scale { racks: 4, hosts_per_rack: 16, requests: 16, planner_counts: &[1, 2] };

/// An acknowledged mutation, for the commit-order replay check.
enum Acked {
    Commit { seq: u64, shape: usize, placement: Placement },
    Release { seq: u64, shape: usize, placement: Placement },
}

impl Acked {
    fn seq(&self) -> u64 {
        match self {
            Acked::Commit { seq, .. } | Acked::Release { seq, .. } => *seq,
        }
    }
}

struct RunReport {
    wall: Duration,
    latencies: Vec<Duration>,
    placed: usize,
    rejected: usize,
    released: usize,
}

impl RunReport {
    fn requests_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }
}

/// Replays `acked` in commit-sequence order over `base` and asserts
/// the fold equals `final_state` — the linearizability contract every
/// service row must honor regardless of interleaving.
fn assert_commit_order_replay(
    infra: &Infrastructure,
    base: &CapacityState,
    shapes: &[ApplicationTopology],
    mut acked: Vec<Acked>,
    final_state: &CapacityState,
    label: &str,
) {
    acked.sort_by_key(Acked::seq);
    let scheduler = Scheduler::new(infra);
    let mut state = base.clone();
    let mut last = 0u64;
    for event in &acked {
        assert!(event.seq() > last, "{label}: duplicate or reordered commit seq");
        last = event.seq();
        match event {
            Acked::Commit { shape, placement, .. } => scheduler
                .commit(&shapes[*shape], placement, &mut state)
                .expect("acked commit must replay"),
            Acked::Release { shape, placement, .. } => scheduler
                .release(&shapes[*shape], placement, &mut state)
                .expect("acked release must replay"),
        }
    }
    assert_eq!(&state, final_state, "{label}: commit-order replay diverged from the service books");
}

/// The serial baseline: one warm session serves the identical schedule
/// one event at a time (intra-request parallel scoring allowed — the
/// honest pre-service engine).
fn run_serial(
    infra: &Infrastructure,
    base: &CapacityState,
    plan: &StreamPlan,
    request: &PlacementRequest,
) -> RunReport {
    let mut session = SchedulerSession::with_state(infra, base.clone());
    let mut report = RunReport {
        wall: Duration::ZERO,
        latencies: Vec::with_capacity(plan.arrivals()),
        placed: 0,
        rejected: 0,
        released: 0,
    };
    let mut placements: Vec<Option<Placement>> = vec![None; plan.arrivals()];
    let started = Instant::now();
    for event in &plan.events {
        match *event {
            StreamEvent::Arrive { arrival, shape } => {
                let t0 = Instant::now();
                let outcome = session.place(&plan.shapes[shape], request);
                report.latencies.push(t0.elapsed());
                match outcome {
                    Ok(outcome) => {
                        session
                            .commit(&plan.shapes[shape], &outcome.placement)
                            .expect("commit serial decision");
                        placements[arrival] = Some(outcome.placement);
                        report.placed += 1;
                    }
                    Err(_) => report.rejected += 1,
                }
            }
            StreamEvent::Depart { arrival } => {
                if let Some(placement) = placements[arrival].take() {
                    session
                        .release(&plan.shapes[plan.shape_of[arrival]], &placement)
                        .expect("release serial tenant");
                    report.released += 1;
                }
            }
        }
    }
    report.wall = started.elapsed();
    report
}

/// One service row: the same schedule submitted through the batched
/// front-end at `planners` planner threads. Departures wait on their
/// own arrival's ticket (a tenant can only tear down what was stood
/// up); everything else stays in flight.
fn run_service(
    infra: &Infrastructure,
    base: &CapacityState,
    plan: &StreamPlan,
    request: &PlacementRequest,
    planners: usize,
) -> (RunReport, ostro_core::ServiceStats) {
    let shapes: Vec<Arc<ApplicationTopology>> = plan.shapes.iter().cloned().map(Arc::new).collect();
    let config = ServiceConfig { planners, durable_acks: false, ..ServiceConfig::default() };
    let service = PlacementService::new(SchedulerSession::with_state(infra, base.clone()), config);

    let mut report = RunReport {
        wall: Duration::ZERO,
        latencies: Vec::with_capacity(plan.arrivals()),
        placed: 0,
        rejected: 0,
        released: 0,
    };
    let mut acked: Vec<Acked> = Vec::new();
    let started = Instant::now();
    service.serve(|handle| {
        let mut pending: Vec<Option<(Instant, Ticket)>> = Vec::new();
        pending.resize_with(plan.arrivals(), || None);
        let mut placements: Vec<Option<Placement>> = vec![None; plan.arrivals()];
        let mut release_tickets: Vec<(usize, Ticket)> = Vec::new();
        let resolve = |arrival: usize,
                       slot: (Instant, Ticket),
                       report: &mut RunReport,
                       acked: &mut Vec<Acked>|
         -> Option<Placement> {
            let (submitted, ticket) = slot;
            let (response, delivered) = ticket.wait_timed();
            report.latencies.push(delivered.duration_since(submitted));
            match response {
                ServiceResponse::Placed(outcome) => {
                    report.placed += 1;
                    acked.push(Acked::Commit {
                        seq: outcome.seq,
                        shape: plan.shape_of[arrival],
                        placement: outcome.outcome.placement.clone(),
                    });
                    Some(outcome.outcome.placement)
                }
                ServiceResponse::Failed(_) => {
                    report.rejected += 1;
                    None
                }
                ServiceResponse::Released { .. } => unreachable!("arrival resolved as release"),
            }
        };
        for event in &plan.events {
            match *event {
                StreamEvent::Arrive { arrival, shape } => {
                    let ticket = handle.submit(Arc::clone(&shapes[shape]), request.clone());
                    pending[arrival] = Some((Instant::now(), ticket));
                }
                StreamEvent::Depart { arrival } => {
                    if let Some(slot) = pending[arrival].take() {
                        placements[arrival] = resolve(arrival, slot, &mut report, &mut acked);
                    }
                    if let Some(placement) = placements[arrival].take() {
                        let shape = plan.shape_of[arrival];
                        let ticket =
                            handle.submit_release(Arc::clone(&shapes[shape]), placement.clone());
                        release_tickets.push((arrival, ticket));
                        placements[arrival] = Some(placement);
                    }
                }
            }
        }
        for arrival in 0..plan.arrivals() {
            if let Some(slot) = pending[arrival].take() {
                placements[arrival] = resolve(arrival, slot, &mut report, &mut acked);
            }
        }
        for (arrival, ticket) in release_tickets {
            match ticket.wait() {
                ServiceResponse::Released { seq } => {
                    report.released += 1;
                    let placement =
                        placements[arrival].take().expect("released arrival had a placement");
                    acked.push(Acked::Release { seq, shape: plan.shape_of[arrival], placement });
                }
                other => panic!("release of arrival {arrival} failed: {other:?}"),
            }
        }
    });
    report.wall = started.elapsed();

    let stats = service.stats();
    let final_state = service.into_session().into_state();
    assert_commit_order_replay(
        infra,
        base,
        &plan.shapes,
        acked,
        &final_state,
        &format!("service@{planners}"),
    );
    (report, stats)
}

/// The crash drill: a WAL-attached service with durable acks is fed
/// the first half of the stream, then dropped cold — no checkpoint, no
/// graceful shutdown. Recovery from the journal alone must reproduce
/// every acknowledged mutation, and a session rebuilt from the
/// recovered books must keep serving.
fn crash_drill(
    infra: &Infrastructure,
    base: &CapacityState,
    plan: &StreamPlan,
    request: &PlacementRequest,
) -> (usize, u64) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("bench-service-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (journal, _) = Wal::open(&dir, infra, WalOptions::default()).expect("open drill WAL");
    let mut session = SchedulerSession::with_state(infra, base.clone());
    session.attach_wal(journal);
    // Snapshot the (non-uniform) base tenancy so recovery replays the
    // journal over the books the service actually started from. After
    // this, no checkpoint runs again — the "crash" drops everything.
    session.checkpoint().expect("checkpoint drill base state");
    let service = PlacementService::new(
        session,
        ServiceConfig { planners: 2, batch: 4, durable_acks: true, ..ServiceConfig::default() },
    );

    let shapes: Vec<Arc<ApplicationTopology>> = plan.shapes.iter().cloned().map(Arc::new).collect();
    let half = &plan.events[..plan.events.len() / 2];
    let mut acked = 0usize;
    service.serve(|handle| {
        let mut pending: Vec<Option<Ticket>> = Vec::new();
        pending.resize_with(plan.arrivals(), || None);
        let mut placements: Vec<Option<Placement>> = vec![None; plan.arrivals()];
        for event in half {
            match *event {
                StreamEvent::Arrive { arrival, shape } => {
                    pending[arrival] =
                        Some(handle.submit(Arc::clone(&shapes[shape]), request.clone()));
                }
                StreamEvent::Depart { arrival } => {
                    if let Some(ticket) = pending[arrival].take() {
                        if let ServiceResponse::Placed(outcome) = ticket.wait() {
                            acked += 1;
                            placements[arrival] = Some(outcome.outcome.placement);
                        }
                    }
                    if let Some(placement) = placements[arrival].take() {
                        let shape = plan.shape_of[arrival];
                        if let ServiceResponse::Released { .. } =
                            handle.submit_release(Arc::clone(&shapes[shape]), placement).wait()
                        {
                            acked += 1;
                        }
                    }
                }
            }
        }
        for ticket in pending.into_iter().flatten() {
            if let ServiceResponse::Placed(_) = ticket.wait() {
                acked += 1;
            }
        }
    });
    let wal_syncs = service.stats().wal_syncs;

    // "Crash": every handle dropped with no checkpoint. The journal on
    // disk is all that survives.
    let live = service.into_session().into_state();
    let recovered = wal::recover(&dir, infra).expect("recover drill WAL");
    assert_eq!(
        recovered.state, live,
        "crash drill: recovered books diverged from acknowledged commits"
    );

    // The recovered books must be servable: place one more tenant.
    let mut resumed = SchedulerSession::with_state(infra, recovered.state);
    let outcome = resumed.place(&plan.shapes[1], request).expect("place on recovered books");
    resumed.commit(&plan.shapes[1], &outcome.placement).expect("commit on recovered books");

    let _ = std::fs::remove_dir_all(&dir);
    (acked, wal_syncs)
}

fn json_run(report: &RunReport) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"requests_per_sec\": {:.2},\n",
            "      \"p50_ms\": {:.2},\n",
            "      \"p99_ms\": {:.2},\n",
            "      \"placed\": {},\n",
            "      \"rejected\": {},\n",
            "      \"released\": {}\n",
            "    }}"
        ),
        report.requests_per_sec(),
        report.percentile_ms(0.50),
        report.percentile_ms(0.99),
        report.placed,
        report.rejected,
        report.released,
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let scale = if smoke { SMOKE } else { FULL };
    let hosts = scale.racks * scale.hosts_per_rack;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut rng = SmallRng::seed_from_u64(0x57AE);
    let (infra, base) = sized_datacenter(scale.racks, scale.hosts_per_rack, true, &mut rng)
        .expect("valid benchmark data center");
    let plan = arrival_stream(&StreamConfig {
        requests: scale.requests,
        depart_prob: 0.3,
        seed: 0x5EED_57AE,
        burst: 0,
    })
    .expect("valid arrival stream");
    let request = PlacementRequest { algorithm: Algorithm::Greedy, ..PlacementRequest::default() };

    let serial = run_serial(&infra, &base, &plan, &request);
    println!(
        "serial baseline @ {hosts} hosts: {:.2} req/s (p50 {:.1} ms, p99 {:.1} ms), \
         {} placed / {} rejected / {} released",
        serial.requests_per_sec(),
        serial.percentile_ms(0.50),
        serial.percentile_ms(0.99),
        serial.placed,
        serial.rejected,
        serial.released,
    );

    let mut rows = Vec::new();
    let mut best_rps = 0f64;
    for &planners in scale.planner_counts {
        let (report, stats) = run_service(&infra, &base, &plan, &request, planners);
        println!(
            "service @ {planners} planners: {:.2} req/s (p50 {:.1} ms, p99 {:.1} ms), \
             {} stale-admitted / {} conflicts / {} replans / {} overlap / {} serialized, \
             {} batches",
            report.requests_per_sec(),
            report.percentile_ms(0.50),
            report.percentile_ms(0.99),
            stats.stale_admissions,
            stats.commit_conflicts,
            stats.replans,
            stats.overlap_conflicts,
            stats.serialized_fallbacks,
            stats.batches,
        );
        assert_eq!(
            report.placed as u64 + report.rejected as u64,
            plan.arrivals() as u64,
            "service@{planners}: every arrival must resolve"
        );
        best_rps = best_rps.max(report.requests_per_sec());
        rows.push(format!(
            concat!(
                "{{\n",
                "      \"planners\": {},\n",
                "      \"requests_per_sec\": {:.2},\n",
                "      \"p50_ms\": {:.2},\n",
                "      \"p99_ms\": {:.2},\n",
                "      \"placed\": {},\n",
                "      \"rejected\": {},\n",
                "      \"released\": {},\n",
                "      \"stale_admissions\": {},\n",
                "      \"commit_conflicts\": {},\n",
                "      \"replans\": {},\n",
                "      \"overlap_conflicts\": {},\n",
                "      \"serialized_fallbacks\": {},\n",
                "      \"batches\": {},\n",
                "      \"snapshots_published\": {}\n",
                "    }}"
            ),
            planners,
            report.requests_per_sec(),
            report.percentile_ms(0.50),
            report.percentile_ms(0.99),
            report.placed,
            report.rejected,
            report.released,
            stats.stale_admissions,
            stats.commit_conflicts,
            stats.replans,
            stats.overlap_conflicts,
            stats.serialized_fallbacks,
            stats.batches,
            stats.snapshots_published,
        ));
    }
    let speedup = best_rps / serial.requests_per_sec().max(1e-9);
    println!("best service speedup over serial baseline: {speedup:.2}x ({cores} cores)");

    let (drill_acked, drill_syncs) = crash_drill(&infra, &base, &plan, &request);
    println!("crash drill: {drill_acked} acked mutations recovered after {drill_syncs} group-commit syncs");

    // Regression gate (full runs only): regenerating must not lose
    // >10% req/s against the checked-in artifact on a comparable box.
    let artifact_path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_service_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json")
    };
    if !smoke {
        if let Ok(prior) = std::fs::read_to_string(artifact_path) {
            if let Ok(doc) = serde_json::from_str::<serde_json::Value>(&prior) {
                let prior_cores = doc.get("cores").and_then(serde_json::Value::as_u64).unwrap_or(0);
                let prior_best =
                    doc.get("best_requests_per_sec").and_then(serde_json::Value::as_f64);
                if prior_cores == cores as u64 {
                    if let Some(prior_best) = prior_best {
                        assert!(
                            best_rps >= prior_best * 0.9,
                            "service throughput regressed >10%: {best_rps:.2} req/s vs \
                             {prior_best:.2} in the checked-in artifact"
                        );
                    }
                }
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"concurrent placement service\",\n",
            "  \"hosts\": {},\n",
            "  \"smoke\": {},\n",
            "  \"cores\": {},\n",
            "  \"arrivals\": {},\n",
            "  \"departures\": {},\n",
            "  \"serial\": {},\n",
            "  \"service\": [\n    {}\n  ],\n",
            "  \"best_requests_per_sec\": {:.2},\n",
            "  \"best_speedup\": {:.2},\n",
            "  \"crash_drill\": {{\n",
            "    \"acked_mutations\": {},\n",
            "    \"group_commit_syncs\": {},\n",
            "    \"recovered_matches\": true\n",
            "  }}\n",
            "}}\n"
        ),
        hosts,
        smoke,
        cores,
        plan.arrivals(),
        plan.departures(),
        json_run(&serial),
        rows.join(",\n    "),
        best_rps,
        speedup,
        drill_acked,
        drill_syncs,
    );
    std::fs::write(artifact_path, &json).expect("write service artifact");
    println!("wrote {artifact_path}");

    let doc: serde_json::Value =
        serde_json::from_str(&json).expect("service artifact must be well-formed JSON");
    let parsed =
        doc.get("best_speedup").and_then(serde_json::Value::as_f64).expect("speedup present");

    // Scaling is a physics claim: only assert it where the physics
    // exists. The artifact always records the core count.
    if !smoke && cores >= 8 {
        assert!(parsed >= 4.0, "service speedup {parsed:.2}x below the 4x target at {cores} cores");
    }
}
