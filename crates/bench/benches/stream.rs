//! Sustained online-service benchmark: one 1,024-host data center
//! serving a long arrival/departure stream, comparing a **warm**
//! [`SchedulerSession`] (cross-request bound cache, dirty-host
//! invalidation, persistent scoring pool) against a **cold**
//! per-request scheduler driven over an identically evolving state.
//!
//! Every event's decision is asserted bit-identical between the two
//! engines — the speedup is pure reuse, not a different search.
//!
//! Writes `BENCH_stream.json` at the repository root with sustained
//! requests/sec and p50/p99 solve latency for both engines.
//!
//! `--smoke` runs a fast 64-host variant (used by `scripts/verify.sh`),
//! writes the artifact under `target/`, re-parses it to prove it is
//! well-formed JSON, and asserts the warm engine is no slower than the
//! cold one. The full run asserts the headline ≥3x sustained-req/s
//! speedup.

use std::time::{Duration, Instant};

use ostro_core::{Algorithm, PlacementRequest, Scheduler, SchedulerSession};
use ostro_datacenter::{CapacityState, Infrastructure};
use ostro_model::ApplicationTopology;
use ostro_sim::scenarios::sized_datacenter;
use ostro_sim::workloads::{mesh, multi_tier};
use ostro_sim::RequirementMix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Scale knobs for one benchmark run.
struct Scale {
    racks: usize,
    hosts_per_rack: usize,
    /// Arrival/departure cycles: each cycle deploys `batch` tenants,
    /// then departs them newest-first. Successive cycles replay the
    /// same template stack — the recurring workload an online service
    /// actually sees, and the pattern the session's value-keyed cache
    /// turns into pure reuse.
    cycles: usize,
    /// Tenants deployed per cycle.
    batch: usize,
}

const FULL: Scale = Scale { racks: 64, hosts_per_rack: 16, cycles: 10, batch: 8 };
const SMOKE: Scale = Scale { racks: 4, hosts_per_rack: 16, cycles: 3, batch: 4 };

impl Scale {
    /// Placement solves in the stream (departures are bookkeeping).
    const fn events(&self) -> usize {
        self.cycles * self.batch
    }
}

/// One engine's measurements over the stream.
struct StreamReport {
    wall: Duration,
    latencies: Vec<Duration>,
    placed: usize,
    rejected: usize,
    session_hits: u64,
    session_misses: u64,
    dirty_hosts: u64,
}

impl StreamReport {
    fn requests_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }

    fn warm_hit_rate(&self) -> f64 {
        let total = self.session_hits + self.session_misses;
        if total == 0 {
            0.0
        } else {
            self.session_hits as f64 / total as f64
        }
    }
}

/// Builds the fixed set of application shapes the stream cycles
/// through. The same [`ApplicationTopology`] values are reused for
/// every recurrence, the way a service sees the same stack templates
/// again and again — which is exactly what the session's value-keyed
/// cache exploits.
fn shape_set(seed: u64) -> Vec<ApplicationTopology> {
    let mix = RequirementMix::homogeneous();
    let mut rng = SmallRng::seed_from_u64(seed);
    vec![
        multi_tier(25, &mix, &mut rng).expect("valid multi-tier workload"),
        mesh(5, &mix, &mut rng).expect("valid mesh workload"),
        multi_tier(50, &mix, &mut rng).expect("valid multi-tier workload"),
    ]
}

/// The warm engine: one session serves every cycle. Arrivals within a
/// cycle deploy shape `k % shapes`; at the cycle's end all tenants
/// depart newest-first, returning the data center to its base tenancy.
/// From the second cycle on, every bound the search needs was already
/// computed by the first — the solves are pure cache traversal.
fn run_warm(
    infra: &Infrastructure,
    base: &CapacityState,
    shapes: &[ApplicationTopology],
    request: &PlacementRequest,
    scale: &Scale,
) -> (StreamReport, Vec<StreamEvent>, CapacityState) {
    let mut session = SchedulerSession::with_state(infra, base.clone());
    let mut report = empty_report(scale.events());
    let mut events = Vec::with_capacity(scale.events());
    let started = Instant::now();
    for _cycle in 0..scale.cycles {
        let mut live: Vec<(usize, ostro_core::Placement)> = Vec::new();
        for k in 0..scale.batch {
            let shape = k % shapes.len();
            let t0 = Instant::now();
            let outcome = session.place(&shapes[shape], request);
            report.latencies.push(t0.elapsed());
            match outcome {
                Ok(outcome) => {
                    report.session_hits += outcome.stats.session_cache_hits;
                    report.session_misses += outcome.stats.session_cache_misses;
                    report.dirty_hosts += outcome.stats.session_dirty_hosts;
                    session.commit(&shapes[shape], &outcome.placement).expect("commit decision");
                    events.push(StreamEvent {
                        placement: Some(outcome.placement.clone()),
                        objective_bits: outcome.objective.to_bits(),
                    });
                    live.push((shape, outcome.placement));
                    report.placed += 1;
                }
                Err(_) => {
                    events.push(StreamEvent { placement: None, objective_bits: 0 });
                    report.rejected += 1;
                }
            }
        }
        while let Some((shape, placement)) = live.pop() {
            session.release(&shapes[shape], &placement).expect("release live tenant");
        }
    }
    report.wall = started.elapsed();
    (report, events, session.into_state())
}

/// The same schedule served cold: a fresh solve against the evolving
/// state with no cross-request reuse, asserting each decision matches
/// the warm run's bit-for-bit.
fn run_cold(
    infra: &Infrastructure,
    base: &CapacityState,
    shapes: &[ApplicationTopology],
    request: &PlacementRequest,
    scale: &Scale,
    warm_events: &[StreamEvent],
) -> (StreamReport, CapacityState) {
    let scheduler = Scheduler::new(infra);
    let mut state = base.clone();
    let mut report = empty_report(scale.events());
    let mut i = 0usize;
    let started = Instant::now();
    for _cycle in 0..scale.cycles {
        let mut live: Vec<(usize, ostro_core::Placement)> = Vec::new();
        for k in 0..scale.batch {
            let shape = k % shapes.len();
            let t0 = Instant::now();
            let outcome = scheduler.place(&shapes[shape], &state, request);
            report.latencies.push(t0.elapsed());
            match outcome {
                Ok(outcome) => {
                    let warm = &warm_events[i];
                    assert_eq!(
                        warm.placement.as_ref(),
                        Some(&outcome.placement),
                        "event {i}: warm session diverged from cold scheduler"
                    );
                    assert_eq!(
                        warm.objective_bits,
                        outcome.objective.to_bits(),
                        "event {i}: objective bits diverged"
                    );
                    scheduler
                        .commit(&shapes[shape], &outcome.placement, &mut state)
                        .expect("commit");
                    live.push((shape, outcome.placement));
                    report.placed += 1;
                }
                Err(_) => {
                    assert!(warm_events[i].placement.is_none(), "event {i}: feasibility diverged");
                    report.rejected += 1;
                }
            }
            i += 1;
        }
        while let Some((shape, placement)) = live.pop() {
            scheduler.release(&shapes[shape], &placement, &mut state).expect("release tenant");
        }
    }
    report.wall = started.elapsed();
    (report, state)
}

/// What each warm event decided, for the cold run's identity check.
struct StreamEvent {
    placement: Option<ostro_core::Placement>,
    objective_bits: u64,
}

fn empty_report(events: usize) -> StreamReport {
    StreamReport {
        wall: Duration::ZERO,
        latencies: Vec::with_capacity(events),
        placed: 0,
        rejected: 0,
        session_hits: 0,
        session_misses: 0,
        dirty_hosts: 0,
    }
}

fn json_engine(report: &StreamReport) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"requests_per_sec\": {:.2},\n",
            "      \"p50_ms\": {:.2},\n",
            "      \"p99_ms\": {:.2},\n",
            "      \"placed\": {},\n",
            "      \"rejected\": {},\n",
            "      \"session_hit_rate\": {:.4},\n",
            "      \"dirty_hosts\": {}\n",
            "    }}"
        ),
        report.requests_per_sec(),
        report.percentile_ms(0.50),
        report.percentile_ms(0.99),
        report.placed,
        report.rejected,
        report.warm_hit_rate(),
        report.dirty_hosts,
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let score_threads = argv
        .iter()
        .position(|a| a == "--score-threads")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);
    let chunk_bytes = argv
        .iter()
        .position(|a| a == "--chunk-bytes")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);
    let scale = if smoke { SMOKE } else { FULL };
    let hosts = scale.racks * scale.hosts_per_rack;

    // Table IV non-uniform availability: most hosts carry a distinct
    // residual-capacity triple, so a per-request engine cannot pool
    // bounds across hosts by group signature and must recompute them
    // request after request — the regime a long-running service lives
    // in, and the one the session cache is built for.
    let mut rng = SmallRng::seed_from_u64(0x57AE);
    let (infra, base) = sized_datacenter(scale.racks, scale.hosts_per_rack, true, &mut rng)
        .expect("valid benchmark data center");
    let shapes = shape_set(0x057A_EA44);
    let request = PlacementRequest {
        algorithm: Algorithm::Greedy,
        score_threads,
        chunk_bytes,
        ..PlacementRequest::default()
    };

    let (warm, events, warm_state) = run_warm(&infra, &base, &shapes, &request, &scale);
    let (cold, cold_state) = run_cold(&infra, &base, &shapes, &request, &scale, &events);
    assert_eq!(warm_state, cold_state, "final states diverged between engines");
    let speedup = warm.requests_per_sec() / cold.requests_per_sec().max(1e-9);

    println!(
        "stream @ {hosts} hosts: cold {:.2} req/s (p50 {:.1} ms, p99 {:.1} ms), \
         warm {:.2} req/s (p50 {:.1} ms, p99 {:.1} ms), speedup {speedup:.2}x, \
         warm hit rate {:.1}%, {} dirty-host refreshes",
        cold.requests_per_sec(),
        cold.percentile_ms(0.50),
        cold.percentile_ms(0.99),
        warm.requests_per_sec(),
        warm.percentile_ms(0.50),
        warm.percentile_ms(0.99),
        warm.warm_hit_rate() * 100.0,
        warm.dirty_hosts,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"sustained online placement stream\",\n",
            "  \"hosts\": {},\n",
            "  \"smoke\": {},\n",
            "  \"score_threads\": {},\n",
            "  \"events\": {},\n",
            "  \"cycles\": {},\n",
            "  \"batch\": {},\n",
            "  \"engines\": {{\n",
            "    \"cold\": {},\n",
            "    \"warm\": {}\n",
            "  }},\n",
            "  \"speedup\": {:.2}\n",
            "}}\n"
        ),
        hosts,
        smoke,
        score_threads,
        scale.events(),
        scale.cycles,
        scale.batch,
        json_engine(&cold),
        json_engine(&warm),
        speedup,
    );
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_stream_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json")
    };
    std::fs::write(path, &json).expect("write stream artifact");
    println!("wrote {path}");

    // Re-parse the artifact so a malformed write fails loudly, and pin
    // the engine ordering.
    let doc: serde_json::Value =
        serde_json::from_str(&json).expect("stream artifact must be well-formed JSON");
    let parsed_speedup =
        doc.get("speedup").and_then(serde_json::Value::as_f64).expect("speedup present");
    assert!(
        warm.warm_hit_rate() > 0.5,
        "warm hit rate {:.2} too low — the session is not reusing bounds",
        warm.warm_hit_rate()
    );
    if smoke {
        assert!(
            parsed_speedup >= 1.0,
            "warm session slower than cold scheduler: {parsed_speedup:.2}x"
        );
    } else {
        assert!(
            parsed_speedup >= 3.0,
            "warm-vs-cold speedup {parsed_speedup:.2}x below the 3x headline at {hosts} hosts"
        );
    }
}
