//! End-to-end placement-throughput benchmark: drives full EG / BA\* /
//! DBA\* solves over a stream of generated multi-tier and mesh
//! requests against one evolving data center, comparing the scoring
//! engine with the heuristic-bound memo cache enabled (the default)
//! against the memo-off baseline.
//!
//! Writes `BENCH_throughput.json` at the repository root with
//! requests/sec, p50/p99 solve latency, and the bound-cache hit rate
//! per algorithm and engine.
//!
//! `--smoke` runs a fast 64-host variant (used by `scripts/verify.sh`),
//! writes the artifact under `target/`, re-parses it to prove it is
//! well-formed JSON, and asserts the cached engine is no slower than
//! the cold one.

use std::time::{Duration, Instant};

use ostro_core::{Algorithm, PlacementRequest, Scheduler};
use ostro_datacenter::{CapacityState, Infrastructure};
use ostro_model::ApplicationTopology;
use ostro_sim::scenarios::sized_datacenter;
use ostro_sim::workloads::{mesh, multi_tier};
use ostro_sim::RequirementMix;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Scale knobs for one benchmark run.
struct Scale {
    racks: usize,
    hosts_per_rack: usize,
    /// Requests in the EG stream (the headline throughput number).
    eg_requests: usize,
    /// Requests in the BA\*/DBA\* streams (search is far heavier per
    /// request, so the streams are shorter).
    astar_requests: usize,
    /// Expansion cap for BA\* (DBA\* is capped by its deadline too).
    max_expansions: u64,
    deadline: Duration,
}

const FULL: Scale = Scale {
    racks: 64,
    hosts_per_rack: 16,
    eg_requests: 32,
    astar_requests: 6,
    max_expansions: 300,
    deadline: Duration::from_millis(500),
};

const SMOKE: Scale = Scale {
    racks: 4,
    hosts_per_rack: 16,
    eg_requests: 10,
    astar_requests: 3,
    max_expansions: 150,
    deadline: Duration::from_millis(250),
};

/// One algorithm's stream measured under one engine configuration.
struct StreamReport {
    wall: Duration,
    latencies: Vec<Duration>,
    placed: usize,
    rejected: usize,
    cache_hits: u64,
    cache_misses: u64,
}

impl StreamReport {
    fn requests_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    fn percentile_ms(&self, q: f64) -> f64 {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx].as_secs_f64() * 1e3
    }

    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Generates the request stream: alternating multi-tier and mesh
/// applications of 25–50 VMs, deterministic in `seed`.
fn request_stream(n: usize, seed: u64) -> Vec<ApplicationTopology> {
    let mix = RequirementMix::heterogeneous();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                let vms = [25, 50][i / 2 % 2];
                multi_tier(vms, &mix, &mut rng).expect("valid multi-tier workload")
            } else {
                let groups = [5, 10][i / 2 % 2];
                mesh(groups, &mix, &mut rng).expect("valid mesh workload")
            }
        })
        .collect()
}

/// Solves (and commits) every request in order against a private clone
/// of `base`, so both engine configurations see identical streams.
fn run_stream(
    infra: &Infrastructure,
    base: &CapacityState,
    requests: &[ApplicationTopology],
    algorithm: Algorithm,
    memoize: bool,
    score_threads: usize,
    max_expansions: u64,
) -> StreamReport {
    let scheduler = Scheduler::new(infra);
    let mut state = base.clone();
    let mut report = StreamReport {
        wall: Duration::ZERO,
        latencies: Vec::with_capacity(requests.len()),
        placed: 0,
        rejected: 0,
        cache_hits: 0,
        cache_misses: 0,
    };
    let request = PlacementRequest {
        algorithm,
        memoize_bounds: memoize,
        score_threads,
        max_expansions,
        ..PlacementRequest::default()
    };
    let started = Instant::now();
    for topo in requests {
        let t0 = Instant::now();
        match scheduler.place(topo, &state, &request) {
            Ok(outcome) => {
                report.latencies.push(t0.elapsed());
                report.cache_hits += outcome.stats.bound_cache_hits;
                report.cache_misses += outcome.stats.bound_cache_misses;
                scheduler
                    .commit(topo, &outcome.placement, &mut state)
                    .expect("search only returns placements that fit");
                report.placed += 1;
            }
            Err(_) => {
                report.latencies.push(t0.elapsed());
                report.rejected += 1;
            }
        }
    }
    report.wall = started.elapsed();
    report
}

fn json_engine(report: &StreamReport) -> String {
    format!(
        concat!(
            "{{\n",
            "        \"requests_per_sec\": {:.2},\n",
            "        \"p50_ms\": {:.2},\n",
            "        \"p99_ms\": {:.2},\n",
            "        \"cache_hit_rate\": {:.4},\n",
            "        \"placed\": {},\n",
            "        \"rejected\": {}\n",
            "      }}"
        ),
        report.requests_per_sec(),
        report.percentile_ms(0.50),
        report.percentile_ms(0.99),
        report.hit_rate(),
        report.placed,
        report.rejected,
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let score_threads = argv
        .iter()
        .position(|a| a == "--score-threads")
        .and_then(|i| argv.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0usize);
    let scale = if smoke { SMOKE } else { FULL };
    let hosts = scale.racks * scale.hosts_per_rack;

    let mut rng = SmallRng::seed_from_u64(0xB00C);
    let (infra, base) = sized_datacenter(scale.racks, scale.hosts_per_rack, false, &mut rng)
        .expect("valid benchmark data center");

    let algorithms: &[(&str, Algorithm, usize)] = &[
        ("EG", Algorithm::Greedy, scale.eg_requests),
        ("BA*", Algorithm::BoundedAStar, scale.astar_requests),
        (
            "DBA*",
            Algorithm::DeadlineBoundedAStar { deadline: scale.deadline },
            scale.astar_requests,
        ),
    ];

    let mut sections = Vec::new();
    let mut eg_speedup = 0.0;
    for &(label, algorithm, n) in algorithms {
        let requests = request_stream(n, 0x0057_7280);
        let cold = run_stream(
            &infra,
            &base,
            &requests,
            algorithm,
            false,
            score_threads,
            scale.max_expansions,
        );
        let cached = run_stream(
            &infra,
            &base,
            &requests,
            algorithm,
            true,
            score_threads,
            scale.max_expansions,
        );
        let speedup = cached.requests_per_sec() / cold.requests_per_sec().max(1e-9);
        if label == "EG" {
            eg_speedup = speedup;
        }
        println!(
            "{label}: cold {:.2} req/s (p50 {:.1} ms), cached {:.2} req/s (p50 {:.1} ms), \
             speedup {speedup:.2}x, hit rate {:.1}%",
            cold.requests_per_sec(),
            cold.percentile_ms(0.50),
            cached.requests_per_sec(),
            cached.percentile_ms(0.50),
            cached.hit_rate() * 100.0,
        );
        sections.push(format!(
            concat!(
                "    \"{}\": {{\n",
                "      \"requests\": {},\n",
                "      \"cold\": {},\n",
                "      \"cached\": {},\n",
                "      \"speedup\": {:.2}\n",
                "    }}"
            ),
            label,
            n,
            json_engine(&cold),
            json_engine(&cached),
            speedup,
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"end-to-end placement throughput\",\n",
            "  \"hosts\": {},\n",
            "  \"smoke\": {},\n",
            "  \"score_threads\": {},\n",
            "  \"algorithms\": {{\n{}\n  }}\n",
            "}}\n"
        ),
        hosts,
        smoke,
        score_threads,
        sections.join(",\n"),
    );
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_throughput_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json")
    };
    std::fs::write(path, &json).expect("write throughput artifact");
    println!("wrote {path}");

    // Re-parse the artifact so a malformed write fails loudly, and pin
    // the engine ordering: the memo cache must never lose to the cold
    // baseline (smoke), and must deliver the advertised win at full
    // scale.
    let doc: serde_json::Value =
        serde_json::from_str(&json).expect("throughput artifact must be well-formed JSON");
    let eg = doc.get("algorithms").and_then(|a| a.get("EG")).expect("EG section present");
    let cold_rps = eg
        .get("cold")
        .and_then(|e| e.get("requests_per_sec"))
        .and_then(serde_json::Value::as_f64)
        .expect("cold requests_per_sec present");
    let cached_rps = eg
        .get("cached")
        .and_then(|e| e.get("requests_per_sec"))
        .and_then(serde_json::Value::as_f64)
        .expect("cached requests_per_sec present");
    assert!(
        cached_rps >= cold_rps,
        "memoized EG engine slower than cold baseline: {cached_rps:.2} < {cold_rps:.2} req/s"
    );
    if !smoke {
        assert!(
            eg_speedup >= 1.5,
            "EG throughput speedup {eg_speedup:.2}x below the 1.5x floor at {hosts} hosts"
        );
    }
}
