//! Objective-score recovery of the maintenance plane's budgeted
//! defragmentation sweeps on a churn-decayed fleet.
//!
//! The scenario: a multi-pod fleet is filled by seeded arrivals, then
//! decayed by seeded departures until the survivors sit scattered
//! across half-empty hosts. The maintenance plane then runs its
//! round-robin sweeps under the per-sweep migration budget, and the
//! harness compares the fleet's fragmentation gauges —
//! stranded-capacity index, tenant scatter, bandwidth inflation, and
//! the normalized fleet objective — against the no-maintenance
//! baseline that saw the *same* churn.
//!
//! Writes `BENCH_defrag.json` at the repository root with the
//! before/after gauges, the migration spend, and three gates:
//! the fleet objective must strictly improve, every sweep must respect
//! its move budget, and two same-seed maintenance runs must produce
//! bit-identical migration logs and final placement digests.
//!
//! `--smoke` runs a 64-host fleet (used by `scripts/verify.sh`) and
//! writes `target/BENCH_defrag_smoke.json` instead; the gates are
//! identical, so the smoke artifact is the CI contract.

use std::sync::Arc;
use std::time::Instant;

use criterion::Criterion;
use ostro_core::{
    FragStats, MaintStats, MaintenanceConfig, MaintenanceLoad, MaintenancePlane, PlacementRequest,
    SchedulerSession, TenantRecord,
};
use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::{ApplicationTopology, Bandwidth, TopologyBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct Fleet {
    pods: usize,
    racks_per_pod: usize,
    hosts_per_rack: usize,
    /// Seeded arrivals in the fill phase; roughly one tenant per host.
    arrivals: usize,
    /// Maintenance ticks after the decay (enough for the round-robin
    /// sweep cursor to cover the surviving ledger a few times).
    maintenance_ticks: u64,
}

impl Fleet {
    const fn hosts(&self) -> usize {
        self.pods * self.racks_per_pod * self.hosts_per_rack
    }
}

/// 1,200 hosts — past the issue's 1k+ floor but small enough that the
/// decay phase (one exact placement per arrival) stays respectable.
const FULL: Fleet = Fleet {
    pods: 12,
    racks_per_pod: 5,
    hosts_per_rack: 20,
    arrivals: 1_200,
    maintenance_ticks: 48,
};

const SMOKE: Fleet =
    Fleet { pods: 4, racks_per_pod: 2, hosts_per_rack: 8, arrivals: 72, maintenance_ticks: 24 };

const SEED: u64 = 0xDEF4_A6_5EED;

fn build_fleet(f: &Fleet) -> (Infrastructure, CapacityState) {
    // Uniform availability: the decay, not pre-existing load, should
    // be the only source of fragmentation.
    let mut rng = SmallRng::seed_from_u64(SEED ^ f.hosts() as u64);
    ostro_sim::scenarios::pod_fleet(f.pods, f.racks_per_pod, f.hosts_per_rack, false, &mut rng)
        .expect("fleet dimensions are nonzero")
}

/// Seeded tenant family: short chains whose links make scatter and
/// bandwidth inflation visible gauges.
fn tenant(seed: u64) -> ApplicationTopology {
    let mut rng = SmallRng::seed_from_u64(SEED ^ seed.wrapping_mul(0x9E37_79B9));
    let vms = rng.gen_range(2..=4);
    let mut b = TopologyBuilder::new(format!("t{seed}"));
    let ids: Vec<_> = (0..vms)
        .map(|i| {
            b.vm(format!("vm{i}"), rng.gen_range(1..=3), 1_024 * rng.gen_range(1..=3)).unwrap()
        })
        .collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], Bandwidth::from_mbps(rng.gen_range(50..=150))).unwrap();
    }
    b.build().unwrap()
}

fn request() -> PlacementRequest {
    PlacementRequest { shard: true, ..PlacementRequest::default() }
}

/// Fill-then-decay churn: place `arrivals` tenants, then depart every
/// second one (seeded shuffle), leaving the survivors scattered.
fn churn_decay(session: &mut SchedulerSession, fleet: &Fleet) -> (Vec<TenantRecord>, usize, usize) {
    let req = request();
    let mut ledger: Vec<TenantRecord> = Vec::with_capacity(fleet.arrivals);
    let mut placed = 0usize;
    for id in 0..fleet.arrivals as u64 {
        let topo = tenant(id);
        let Ok(out) = session.place(&topo, &req) else { continue };
        session.commit(&topo, &out.placement).expect("planned placement commits");
        ledger.push(TenantRecord { id, topology: Arc::new(topo), placement: out.placement });
        placed += 1;
    }
    let mut rng = SmallRng::seed_from_u64(SEED ^ 0xD_EC_A7);
    let mut departures = 0usize;
    let mut survivors = Vec::with_capacity(ledger.len() / 2);
    for t in ledger {
        if rng.gen_bool(0.5) {
            session.release(&t.topology, &t.placement).expect("ledger release balances");
            departures += 1;
        } else {
            survivors.push(t);
        }
    }
    (survivors, placed, departures)
}

/// splitmix64 finalizer for the placement digests.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Folds the ledger's final placements into one digest; two
/// maintenance runs agree iff every tenant ended on the same hosts.
fn ledger_digest(ledger: &[TenantRecord]) -> u64 {
    let mut digest = 0u64;
    for t in ledger {
        digest = mix64(digest ^ t.id);
        for (node, host) in t.placement.iter() {
            digest = mix64(digest ^ (((node.index() as u64) << 32) | host.index() as u64));
        }
    }
    digest
}

struct MaintenanceRun {
    stats: MaintStats,
    frag: FragStats,
    digest: u64,
    log_json: String,
    elapsed_ms: f64,
}

/// One same-seed maintenance run over a freshly churn-decayed fleet.
/// Every host heartbeats every tick, so the plane does pure defrag —
/// no drains — and the sweep budget is the only throttle.
fn run_maintenance(fleet: &Fleet, infra: &Infrastructure, base: &CapacityState) -> MaintenanceRun {
    let mut session = SchedulerSession::with_state(infra, base.clone());
    let (mut ledger, _, _) = churn_decay(&mut session, fleet);
    let cfg = MaintenanceConfig { request: request(), ..MaintenanceConfig::default() };
    let mut plane = MaintenancePlane::new(cfg, infra.host_count());
    let start = Instant::now();
    for tick in 0..fleet.maintenance_ticks {
        for i in 0..infra.host_count() {
            plane.heartbeat(HostId::from_index(i as u32), tick);
        }
        plane.tick(&mut session, &mut ledger, tick, MaintenanceLoad::default());
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let frag = FragStats::compute(infra, session.state(), &ledger);
    let log_json = serde_json::to_string(plane.migration_log()).expect("migration log serializes");
    MaintenanceRun {
        stats: *plane.stats(),
        frag,
        digest: ledger_digest(&ledger),
        log_json,
        elapsed_ms,
    }
}

fn frag_json(f: &FragStats, indent: &str) -> String {
    format!(
        concat!(
            "{{\n",
            "{i}  \"active_hosts\": {},\n",
            "{i}  \"stranded_index\": {:.4},\n",
            "{i}  \"scatter_mean\": {:.4},\n",
            "{i}  \"bandwidth_inflation\": {:.4},\n",
            "{i}  \"reserved_mbps\": {},\n",
            "{i}  \"fleet_objective\": {:.6}\n",
            "{i}}}"
        ),
        f.active_hosts,
        f.stranded_index,
        f.scatter_mean,
        f.bandwidth_inflation,
        f.reserved_mbps,
        f.fleet_objective,
        i = indent,
    )
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let fleet: &Fleet = if smoke { &SMOKE } else { &FULL };
    let hosts = fleet.hosts();
    let (infra, base) = build_fleet(fleet);

    // The no-maintenance baseline at equal churn: same seed, same
    // arrivals, same departures, zero maintenance ticks.
    let mut baseline_session = SchedulerSession::with_state(&infra, base.clone());
    let (baseline_ledger, placed, departed) = churn_decay(&mut baseline_session, fleet);
    let before = FragStats::compute(&infra, baseline_session.state(), &baseline_ledger);

    // Two same-seed maintenance runs: the second exists purely to pin
    // bit-determinism (identical migration logs and final digests).
    let run = run_maintenance(fleet, &infra, &base);
    let rerun = run_maintenance(fleet, &infra, &base);
    let deterministic = run.log_json == rerun.log_json && run.digest == rerun.digest;
    let after = run.frag;
    let stats = run.stats;

    // Criterion point: the fragmentation gauge itself, measured on the
    // decayed fleet (it runs inside every sweep decision pipeline).
    let mut criterion = Criterion::default().configure_from_args();
    let mut group = criterion.benchmark_group(format!("defrag/{hosts}"));
    group.sample_size(10);
    group.bench_function("frag_stats", |b| {
        b.iter(|| FragStats::compute(&infra, baseline_session.state(), &baseline_ledger));
    });
    group.finish();
    let frag_stats_ms = criterion
        .measurements
        .iter()
        .find(|m| m.id == format!("defrag/{hosts}/frag_stats"))
        .map_or(f64::NAN, |m| m.median.as_secs_f64() * 1e3);

    let budget = MaintenanceConfig::default().sweep_budget;
    let within_budget =
        stats.sweeps == 0 || stats.moves_spent <= u64::from(budget) * fleet.maintenance_ticks;
    let objective_improved = after.fleet_objective < before.fleet_objective;
    let recovered_pct = if before.fleet_objective > 0.0 {
        (before.fleet_objective - after.fleet_objective) / before.fleet_objective * 100.0
    } else {
        0.0
    };

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"budgeted defragmentation sweeps on a churn-decayed fleet\",\n",
            "  \"smoke\": {smoke},\n",
            "  \"hosts\": {hosts},\n",
            "  \"churn\": {{\"arrivals\": {placed}, \"departures\": {departed}, ",
            "\"survivors\": {survivors}}},\n",
            "  \"frag_before\": {before},\n",
            "  \"frag_after\": {after},\n",
            "  \"maintenance\": {{\n",
            "    \"ticks\": {ticks},\n",
            "    \"sweep_budget\": {budget},\n",
            "    \"sweeps\": {sweeps},\n",
            "    \"defrag_migrations\": {migrations},\n",
            "    \"moves_spent\": {moves},\n",
            "    \"hosts_freed\": {freed},\n",
            "    \"bw_saved_mbps\": {bw_saved},\n",
            "    \"elapsed_ms\": {elapsed:.1},\n",
            "    \"frag_stats_ms\": {frag_ms:.4}\n",
            "  }},\n",
            "  \"recovery\": {{\n",
            "    \"objective_before\": {obj_before:.6},\n",
            "    \"objective_after\": {obj_after:.6},\n",
            "    \"objective_recovered_pct\": {rec_pct:.2},\n",
            "    \"active_hosts_before\": {ah_before},\n",
            "    \"active_hosts_after\": {ah_after}\n",
            "  }},\n",
            "  \"migration_log_digest\": \"{log_digest:016x}\",\n",
            "  \"final_placement_digest\": \"{digest:016x}\",\n",
            "  \"gates\": {{\n",
            "    \"objective_strictly_improved\": {objective_improved},\n",
            "    \"moves_within_budget\": {within_budget},\n",
            "    \"same_seed_bit_identical\": {deterministic}\n",
            "  }}\n",
            "}}\n"
        ),
        smoke = smoke,
        hosts = hosts,
        placed = placed,
        departed = departed,
        survivors = baseline_ledger.len(),
        before = frag_json(&before, "  "),
        after = frag_json(&after, "  "),
        ticks = fleet.maintenance_ticks,
        budget = budget,
        sweeps = stats.sweeps,
        migrations = stats.defrag_migrations,
        moves = stats.moves_spent,
        freed = stats.hosts_freed,
        bw_saved = stats.bw_saved_mbps,
        elapsed = run.elapsed_ms,
        frag_ms = frag_stats_ms,
        obj_before = before.fleet_objective,
        obj_after = after.fleet_objective,
        rec_pct = recovered_pct,
        ah_before = before.active_hosts,
        ah_after = after.active_hosts,
        log_digest =
            mix64(run.log_json.len() as u64 ^ ledger_digest(&[])) ^ hash_str(&run.log_json),
        digest = run.digest,
        objective_improved = objective_improved,
        within_budget = within_budget,
        deterministic = deterministic,
    );
    let path = if smoke {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_defrag_smoke.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_defrag.json")
    };
    std::fs::write(path, &json).expect("write defrag benchmark artifact");
    println!("{json}");
    println!("wrote {path}");
    assert!(objective_improved, "maintenance must strictly beat the no-maintenance baseline");
    assert!(within_budget, "sweeps must respect the per-sweep move budget");
    assert!(deterministic, "same-seed maintenance runs must be bit-identical");
}

/// FNV-1a over the migration log text, mixed for the digest line.
fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}
