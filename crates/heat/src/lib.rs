//! Simulated OpenStack integration for Ostro (Fig. 1 of the paper).
//!
//! The real Ostro ships as a wrapper around the OpenStack Heat service:
//! a tenant submits a *QoS-enhanced Heat template* (a Heat template
//! extended with bandwidth *pipes* and *diversity zones*), the wrapper
//! extracts the application topology, Ostro computes a holistic
//! placement, the template is annotated with per-resource scheduler
//! hints, and the Heat engine drives Nova (compute) and Cinder (block
//! storage) to deploy onto the designated hosts.
//!
//! This crate reproduces that pipeline against the in-process
//! data-center model instead of a live cloud:
//!
//! * [`HeatTemplate`] — the JSON template dialect, with
//!   `OS::Nova::Server`, `OS::Cinder::Volume`,
//!   `OS::Cinder::VolumeAttachment`, `ATT::QoS::Pipe`, and
//!   `ATT::QoS::DiversityZone` resources.
//! * [`extract_topology`] / [`topology_to_template`] — the wrapper's
//!   translation between templates and [`ApplicationTopology`].
//! * [`annotate_template`] — stamping the placement decision back into
//!   the template as `scheduler_hints`.
//! * [`CloudController`] — a mock Heat engine + Nova + Cinder that
//!   executes annotated templates against a [`CapacityState`].
//!
//! [`ApplicationTopology`]: ostro_model::ApplicationTopology
//! [`CapacityState`]: ostro_datacenter::CapacityState
//!
//! # Example
//!
//! ```
//! use ostro_datacenter::InfrastructureBuilder;
//! use ostro_heat::{CloudController, HeatTemplate};
//! use ostro_core::PlacementRequest;
//! use ostro_model::{Bandwidth, Resources};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let template: HeatTemplate = serde_json::from_str(r#"{
//!   "heat_template_version": "2015-04-30",
//!   "resources": {
//!     "web":  {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 2048}},
//!     "db":   {"type": "OS::Nova::Server", "properties": {"vcpus": 4, "memory_mb": 8192}},
//!     "data": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 120}},
//!     "p1":   {"type": "ATT::QoS::Pipe",
//!              "properties": {"between": ["web", "db"], "bandwidth_mbps": 100}},
//!     "att":  {"type": "OS::Cinder::VolumeAttachment",
//!              "properties": {"instance": "db", "volume": "data", "bandwidth_mbps": 200}},
//!     "dz":   {"type": "ATT::QoS::DiversityZone",
//!              "properties": {"level": "host", "members": ["web", "db"]}}
//!   }
//! }"#)?;
//!
//! let infra = InfrastructureBuilder::flat(
//!     "dc", 2, 8,
//!     Resources::new(16, 32_768, 1_000),
//!     Bandwidth::from_gbps(10),
//!     Bandwidth::from_gbps(100),
//! ).build()?;
//! let mut cloud = CloudController::new(&infra);
//! let stack_id = cloud.create_stack("demo", template, &PlacementRequest::default())?;
//! let stack = cloud.stack(stack_id).unwrap();
//! assert_eq!(stack.placement.assignments().len(), 3);
//! assert_eq!(cloud.nova().instance_count(), 2);
//! assert_eq!(cloud.cinder().volume_count(), 1);
//! # Ok(())
//! # }
//! ```

mod annotate;
mod error;
mod services;
mod template;
mod wrapper;

pub use annotate::annotate_template;
pub use error::HeatError;
pub use services::{
    CinderService, CloudController, Instance, NovaService, StackId, StackRecord, VolumeRecord,
};
pub use template::{
    HeatTemplate, PipeProperties, Resource, SchedulerHints, ServerProperties,
    VolumeAttachmentProperties, VolumeProperties, ZoneLevel, ZoneProperties,
};
pub use wrapper::{extract_topology, topology_to_template, NameMap};
