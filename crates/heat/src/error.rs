use std::error::Error;
use std::fmt;

use ostro_core::PlacementError;
use ostro_datacenter::CapacityError;
use ostro_model::ModelError;

/// Errors produced by the Heat wrapper and the mock cloud services.
#[derive(Debug)]
#[non_exhaustive]
pub enum HeatError {
    /// A pipe, attachment, or zone references a resource that does not
    /// exist in the template.
    BadReference {
        /// The referencing resource's name.
        from: String,
        /// The missing or wrong-typed target.
        target: String,
    },
    /// A pipe or attachment endpoint is not a server or volume.
    NotANode {
        /// The referencing resource's name.
        from: String,
        /// The referenced non-node resource.
        target: String,
    },
    /// A volume attachment's `instance` is not a server, or its
    /// `volume` is not a volume.
    BadAttachment {
        /// The attachment resource's name.
        name: String,
    },
    /// The template declares no servers or volumes.
    EmptyTemplate,
    /// The extracted topology failed model validation.
    Model(ModelError),
    /// Placement failed.
    Placement(PlacementError),
    /// Deploying the decided placement failed (should not happen when
    /// the state matches what Ostro planned against).
    Capacity(CapacityError),
    /// An unknown stack id was supplied.
    UnknownStack(u64),
}

impl fmt::Display for HeatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadReference { from, target } => {
                write!(f, "resource `{from}` references unknown resource `{target}`")
            }
            Self::NotANode { from, target } => {
                write!(
                    f,
                    "resource `{from}` references `{target}`, which is not a server or volume"
                )
            }
            Self::BadAttachment { name } => {
                write!(f, "attachment `{name}` must connect a server to a volume")
            }
            Self::EmptyTemplate => write!(f, "template declares no servers or volumes"),
            Self::Model(e) => write!(f, "invalid topology: {e}"),
            Self::Placement(e) => write!(f, "placement failed: {e}"),
            Self::Capacity(e) => write!(f, "deployment failed: {e}"),
            Self::UnknownStack(id) => write!(f, "unknown stack id {id}"),
        }
    }
}

impl Error for HeatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::Placement(e) => Some(e),
            Self::Capacity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for HeatError {
    fn from(e: ModelError) -> Self {
        HeatError::Model(e)
    }
}

impl From<PlacementError> for HeatError {
    fn from(e: PlacementError) -> Self {
        HeatError::Placement(e)
    }
}

impl From<CapacityError> for HeatError {
    fn from(e: CapacityError) -> Self {
        HeatError::Capacity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = HeatError::BadReference { from: "p1".into(), target: "ghost".into() };
        assert!(e.to_string().contains("ghost"));
        assert!(e.source().is_none());
        let e: HeatError = ModelError::EmptyTopology.into();
        assert!(e.source().is_some());
        assert!(HeatError::UnknownStack(4).to_string().contains('4'));
    }
}
