//! The Ostro Heat wrapper: translating between QoS-enhanced Heat
//! templates and [`ApplicationTopology`] values.

use std::collections::BTreeMap;

use ostro_model::{ApplicationTopology, Bandwidth, NodeId, TopologyBuilder};

use crate::error::HeatError;
use crate::template::{
    HeatTemplate, PipeProperties, Resource, ServerProperties, VolumeAttachmentProperties,
    VolumeProperties, ZoneProperties,
};

/// Maps template resource names to topology node ids (and back via the
/// topology's own name index).
pub type NameMap = BTreeMap<String, NodeId>;

/// Extracts the application topology from a template.
///
/// Servers and volumes become nodes named after their resource keys;
/// pipes and bandwidth-bearing volume attachments become links; QoS
/// diversity zones become topology diversity zones. Plain attachments
/// (no bandwidth) impose no placement constraint.
///
/// # Errors
///
/// [`HeatError::EmptyTemplate`], [`HeatError::BadReference`],
/// [`HeatError::NotANode`], [`HeatError::BadAttachment`], or a wrapped
/// [`ModelError`](ostro_model::ModelError) from topology validation.
pub fn extract_topology(
    template: &HeatTemplate,
) -> Result<(ApplicationTopology, NameMap), HeatError> {
    if template.server_count() + template.volume_count() == 0 {
        return Err(HeatError::EmptyTemplate);
    }
    let mut builder = TopologyBuilder::new("heat-stack");
    let mut names: NameMap = BTreeMap::new();

    for (name, resource) in &template.resources {
        match resource {
            Resource::Server {
                properties: ServerProperties { vcpus, memory_mb, best_effort_cpu, .. },
            } => {
                let id = if *best_effort_cpu {
                    builder.vm_best_effort(name, *vcpus, *memory_mb)?
                } else {
                    builder.vm(name, *vcpus, *memory_mb)?
                };
                names.insert(name.clone(), id);
            }
            Resource::Volume { properties: VolumeProperties { size_gb, .. } } => {
                let id = builder.volume(name, *size_gb)?;
                names.insert(name.clone(), id);
            }
            _ => {}
        }
    }

    let resolve = |from: &str, target: &str| -> Result<NodeId, HeatError> {
        match names.get(target) {
            Some(&id) => Ok(id),
            None if template.resources.contains_key(target) => {
                Err(HeatError::NotANode { from: from.to_owned(), target: target.to_owned() })
            }
            None => {
                Err(HeatError::BadReference { from: from.to_owned(), target: target.to_owned() })
            }
        }
    };

    for (name, resource) in &template.resources {
        match resource {
            Resource::Pipe {
                properties: PipeProperties { between: (a, b), bandwidth_mbps, within },
            } => {
                let (na, nb) = (resolve(name, a)?, resolve(name, b)?);
                let bw = Bandwidth::from_mbps(*bandwidth_mbps);
                match within {
                    Some(level) => builder.link_within(na, nb, bw, (*level).into())?,
                    None => builder.link(na, nb, bw)?,
                };
            }
            Resource::VolumeAttachment {
                properties: VolumeAttachmentProperties { instance, volume, bandwidth_mbps },
            } => {
                let vm = resolve(name, instance)?;
                let vol = resolve(name, volume)?;
                let vm_ok =
                    matches!(template.resources.get(instance), Some(Resource::Server { .. }));
                let vol_ok =
                    matches!(template.resources.get(volume), Some(Resource::Volume { .. }));
                if !vm_ok || !vol_ok {
                    return Err(HeatError::BadAttachment { name: name.clone() });
                }
                if let Some(bw) = bandwidth_mbps {
                    builder.link(vm, vol, Bandwidth::from_mbps(*bw))?;
                }
            }
            Resource::DiversityZone { properties: ZoneProperties { level, members } } => {
                let ids: Vec<NodeId> =
                    members.iter().map(|m| resolve(name, m)).collect::<Result<_, _>>()?;
                builder.diversity_zone(name, (*level).into(), &ids)?;
            }
            _ => {}
        }
    }

    Ok((builder.build()?, names))
}

/// Renders a topology back into a QoS-enhanced Heat template (the
/// inverse of [`extract_topology`], up to generated pipe names).
#[must_use]
pub fn topology_to_template(topology: &ApplicationTopology) -> HeatTemplate {
    let mut template = HeatTemplate::new();
    template.description = Some(format!("generated from topology `{}`", topology.name()));
    for node in topology.nodes() {
        let resource = match *node.kind() {
            ostro_model::NodeKind::Vm { vcpus, memory_mb } => Resource::Server {
                properties: ServerProperties {
                    vcpus,
                    memory_mb,
                    best_effort_cpu: node.is_best_effort(),
                    scheduler_hints: None,
                },
            },
            ostro_model::NodeKind::Volume { size_gb } => {
                Resource::Volume { properties: VolumeProperties { size_gb, scheduler_hints: None } }
            }
        };
        template.resources.insert(node.name().to_owned(), resource);
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        template.resources.insert(
            format!("pipe-{}", link.id().index()),
            Resource::Pipe {
                properties: PipeProperties {
                    between: (
                        topology.node(a).name().to_owned(),
                        topology.node(b).name().to_owned(),
                    ),
                    bandwidth_mbps: link.bandwidth().as_mbps(),
                    within: link.max_proximity().map(Into::into),
                },
            },
        );
    }
    for zone in topology.zones() {
        template.resources.insert(
            zone.name().to_owned(),
            Resource::DiversityZone {
                properties: ZoneProperties {
                    level: zone.level().into(),
                    members: zone
                        .members()
                        .iter()
                        .map(|&m| topology.node(m).name().to_owned())
                        .collect(),
                },
            },
        );
    }
    template
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::ZoneLevel;
    use ostro_model::DiversityLevel;

    fn template() -> HeatTemplate {
        serde_json::from_str(
            r#"{
          "heat_template_version": "2015-04-30",
          "resources": {
            "web": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 2048}},
            "db":  {"type": "OS::Nova::Server", "properties": {"vcpus": 4, "memory_mb": 8192}},
            "vol": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 50}},
            "att": {"type": "OS::Cinder::VolumeAttachment",
                    "properties": {"instance": "db", "volume": "vol", "bandwidth_mbps": 200}},
            "p":   {"type": "ATT::QoS::Pipe",
                    "properties": {"between": ["web", "db"], "bandwidth_mbps": 100}},
            "z":   {"type": "ATT::QoS::DiversityZone",
                    "properties": {"level": "host", "members": ["web", "db"]}}
          }
        }"#,
        )
        .unwrap()
    }

    #[test]
    fn extracts_nodes_links_and_zones() {
        let (topo, names) = extract_topology(&template()).unwrap();
        assert_eq!(topo.vm_count(), 2);
        assert_eq!(topo.volume_count(), 1);
        assert_eq!(topo.links().len(), 2); // pipe + bandwidth attachment
        assert_eq!(topo.zones().len(), 1);
        assert_eq!(topo.zones()[0].level(), DiversityLevel::Host);
        let web = names["web"];
        let db = names["db"];
        assert_eq!(topo.bandwidth_between(web, db), Some(Bandwidth::from_mbps(100)));
        let vol = names["vol"];
        assert_eq!(topo.bandwidth_between(db, vol), Some(Bandwidth::from_mbps(200)));
    }

    #[test]
    fn attachment_without_bandwidth_creates_no_link() {
        let mut t = template();
        if let Some(Resource::VolumeAttachment { properties }) = t.resources.get_mut("att") {
            properties.bandwidth_mbps = None;
        }
        let (topo, _) = extract_topology(&t).unwrap();
        assert_eq!(topo.links().len(), 1);
    }

    #[test]
    fn bad_reference_is_reported() {
        let mut t = template();
        t.resources.insert(
            "bad".into(),
            Resource::Pipe {
                properties: PipeProperties {
                    between: ("web".into(), "ghost".into()),
                    bandwidth_mbps: 5,
                    within: None,
                },
            },
        );
        match extract_topology(&t).unwrap_err() {
            HeatError::BadReference { from, target } => {
                assert_eq!(from, "bad");
                assert_eq!(target, "ghost");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn pipe_to_non_node_is_reported() {
        let mut t = template();
        t.resources.insert(
            "meta-pipe".into(),
            Resource::Pipe {
                properties: PipeProperties {
                    between: ("web".into(), "z".into()), // a zone, not a node
                    bandwidth_mbps: 5,
                    within: None,
                },
            },
        );
        assert!(matches!(extract_topology(&t).unwrap_err(), HeatError::NotANode { .. }));
    }

    #[test]
    fn attachment_must_connect_server_to_volume() {
        let mut t = template();
        if let Some(Resource::VolumeAttachment { properties }) = t.resources.get_mut("att") {
            properties.volume = "web".into(); // a server, not a volume
        }
        assert!(matches!(extract_topology(&t).unwrap_err(), HeatError::BadAttachment { .. }));
    }

    #[test]
    fn empty_template_is_rejected() {
        let t = HeatTemplate::new();
        assert!(matches!(extract_topology(&t).unwrap_err(), HeatError::EmptyTemplate));
    }

    #[test]
    fn topology_round_trips_to_template_and_back() {
        let (topo, _) = extract_topology(&template()).unwrap();
        let rendered = topology_to_template(&topo);
        assert_eq!(rendered.server_count(), 2);
        assert_eq!(rendered.volume_count(), 1);
        match &rendered.resources["z"] {
            Resource::DiversityZone { properties } => {
                assert_eq!(properties.level, ZoneLevel::Host);
            }
            other => panic!("wrong variant {other:?}"),
        }
        let (topo2, _) = extract_topology(&rendered).unwrap();
        assert_eq!(topo2.vm_count(), topo.vm_count());
        assert_eq!(topo2.links().len(), topo.links().len());
        assert_eq!(topo2.total_link_bandwidth(), topo.total_link_bandwidth());
    }
}
