//! The QoS-enhanced Heat template dialect: standard Heat JSON plus the
//! `ATT::QoS::Pipe` and `ATT::QoS::DiversityZone` resource types the
//! paper adds for bandwidth and anti-affinity requirements.

use std::collections::BTreeMap;

use ostro_model::{DiversityLevel, Proximity};
use serde::{Deserialize, Serialize};

/// A parsed QoS-enhanced Heat template.
///
/// Resources are keyed by name in a sorted map so serialization is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatTemplate {
    /// The Heat template format version (e.g. `"2015-04-30"`).
    pub heat_template_version: String,
    /// Free-form template description.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub description: Option<String>,
    /// All declared resources, by name.
    pub resources: BTreeMap<String, Resource>,
}

impl HeatTemplate {
    /// An empty template with the version the paper's prototype targeted.
    #[must_use]
    pub fn new() -> Self {
        HeatTemplate {
            heat_template_version: "2015-04-30".to_owned(),
            description: None,
            resources: BTreeMap::new(),
        }
    }

    /// Number of server resources.
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.resources.values().filter(|r| matches!(r, Resource::Server { .. })).count()
    }

    /// Number of volume resources.
    #[must_use]
    pub fn volume_count(&self) -> usize {
        self.resources.values().filter(|r| matches!(r, Resource::Volume { .. })).count()
    }
}

impl Default for HeatTemplate {
    fn default() -> Self {
        HeatTemplate::new()
    }
}

/// One Heat resource, dispatched on its `type` field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum Resource {
    /// A virtual machine.
    #[serde(rename = "OS::Nova::Server")]
    Server {
        /// The server's sizing and (after annotation) placement hints.
        properties: ServerProperties,
    },
    /// A block-storage volume.
    #[serde(rename = "OS::Cinder::Volume")]
    Volume {
        /// The volume's sizing and (after annotation) placement hints.
        properties: VolumeProperties,
    },
    /// Attaches a volume to a server, optionally with an I/O bandwidth
    /// guarantee (which becomes a topology link).
    #[serde(rename = "OS::Cinder::VolumeAttachment")]
    VolumeAttachment {
        /// Which server/volume pair to attach.
        properties: VolumeAttachmentProperties,
    },
    /// A guaranteed-bandwidth pipe between two nodes (QoS extension).
    #[serde(rename = "ATT::QoS::Pipe")]
    Pipe {
        /// The pipe's endpoints and bandwidth.
        properties: PipeProperties,
    },
    /// An anti-affinity group (QoS extension).
    #[serde(rename = "ATT::QoS::DiversityZone")]
    DiversityZone {
        /// The zone's level and members.
        properties: ZoneProperties,
    },
}

/// Sizing and placement properties of a server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerProperties {
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory in MiB.
    pub memory_mb: u64,
    /// Best-effort CPU reservation: vCPUs are opportunistic and do not
    /// count against host capacity (only memory is guaranteed).
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub best_effort_cpu: bool,
    /// Placement decision, stamped in by [`annotate_template`](crate::annotate_template).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub scheduler_hints: Option<SchedulerHints>,
}

/// Sizing and placement properties of a volume.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumeProperties {
    /// Volume size in GiB.
    pub size_gb: u64,
    /// Placement decision, stamped in by [`annotate_template`](crate::annotate_template).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub scheduler_hints: Option<SchedulerHints>,
}

/// Properties of a volume attachment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumeAttachmentProperties {
    /// The server resource name.
    pub instance: String,
    /// The volume resource name.
    pub volume: String,
    /// Optional I/O bandwidth guarantee between the pair (Mbps).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub bandwidth_mbps: Option<u64>,
}

/// Properties of a QoS pipe.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeProperties {
    /// The two endpoint resource names.
    pub between: (String, String),
    /// Guaranteed bandwidth in Mbps.
    pub bandwidth_mbps: u64,
    /// Optional latency bound: the endpoints must share this unit.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub within: Option<ZoneLevel>,
}

/// Properties of a diversity zone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneProperties {
    /// The separation level.
    pub level: ZoneLevel,
    /// The member resource names.
    pub members: Vec<String>,
}

/// Template-level spelling of [`DiversityLevel`], lowercase in JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "lowercase")]
pub enum ZoneLevel {
    /// Distinct hosts.
    Host,
    /// Distinct racks.
    Rack,
    /// Distinct pods.
    Pod,
    /// Distinct data centers.
    Datacenter,
}

impl From<ZoneLevel> for Proximity {
    fn from(z: ZoneLevel) -> Self {
        match z {
            ZoneLevel::Host => Proximity::Host,
            ZoneLevel::Rack => Proximity::Rack,
            ZoneLevel::Pod => Proximity::Pod,
            ZoneLevel::Datacenter => Proximity::DataCenter,
        }
    }
}

impl From<Proximity> for ZoneLevel {
    fn from(p: Proximity) -> Self {
        match p {
            Proximity::Host => ZoneLevel::Host,
            Proximity::Rack => ZoneLevel::Rack,
            Proximity::Pod => ZoneLevel::Pod,
            Proximity::DataCenter => ZoneLevel::Datacenter,
        }
    }
}

impl From<ZoneLevel> for DiversityLevel {
    fn from(z: ZoneLevel) -> Self {
        match z {
            ZoneLevel::Host => DiversityLevel::Host,
            ZoneLevel::Rack => DiversityLevel::Rack,
            ZoneLevel::Pod => DiversityLevel::Pod,
            ZoneLevel::Datacenter => DiversityLevel::DataCenter,
        }
    }
}

impl From<DiversityLevel> for ZoneLevel {
    fn from(d: DiversityLevel) -> Self {
        match d {
            DiversityLevel::Host => ZoneLevel::Host,
            DiversityLevel::Rack => ZoneLevel::Rack,
            DiversityLevel::Pod => ZoneLevel::Pod,
            DiversityLevel::DataCenter => ZoneLevel::Datacenter,
        }
    }
}

/// The placement decision attached to a server or volume resource.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerHints {
    /// The exact host Ostro selected, by name.
    #[serde(rename = "ostro:host")]
    pub host: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_json() -> &'static str {
        r#"{
          "heat_template_version": "2015-04-30",
          "description": "tiny",
          "resources": {
            "web": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 2048}},
            "vol": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 50}},
            "att": {"type": "OS::Cinder::VolumeAttachment",
                    "properties": {"instance": "web", "volume": "vol", "bandwidth_mbps": 80}},
            "p": {"type": "ATT::QoS::Pipe",
                  "properties": {"between": ["web", "vol"], "bandwidth_mbps": 10}},
            "z": {"type": "ATT::QoS::DiversityZone",
                  "properties": {"level": "rack", "members": ["web"]}}
          }
        }"#
    }

    #[test]
    fn parses_all_resource_types() {
        let t: HeatTemplate = serde_json::from_str(sample_json()).unwrap();
        assert_eq!(t.resources.len(), 5);
        assert_eq!(t.server_count(), 1);
        assert_eq!(t.volume_count(), 1);
        assert!(matches!(t.resources["att"], Resource::VolumeAttachment { .. }));
        match &t.resources["z"] {
            Resource::DiversityZone { properties } => {
                assert_eq!(properties.level, ZoneLevel::Rack);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let t: HeatTemplate = serde_json::from_str(sample_json()).unwrap();
        let json = serde_json::to_string_pretty(&t).unwrap();
        let back: HeatTemplate = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        // Hints absent -> not serialized.
        assert!(!json.contains("scheduler_hints"));
    }

    #[test]
    fn unknown_resource_type_is_rejected() {
        let bad = r#"{
          "heat_template_version": "2015-04-30",
          "resources": {"x": {"type": "OS::Neutron::Port", "properties": {}}}
        }"#;
        assert!(serde_json::from_str::<HeatTemplate>(bad).is_err());
    }

    #[test]
    fn zone_level_conversions() {
        for (z, d) in [
            (ZoneLevel::Host, DiversityLevel::Host),
            (ZoneLevel::Rack, DiversityLevel::Rack),
            (ZoneLevel::Pod, DiversityLevel::Pod),
            (ZoneLevel::Datacenter, DiversityLevel::DataCenter),
        ] {
            assert_eq!(DiversityLevel::from(z), d);
            assert_eq!(ZoneLevel::from(d), z);
        }
    }

    #[test]
    fn hints_serialize_with_ostro_prefix() {
        let hints = SchedulerHints { host: "dc-r0-h1".into() };
        let json = serde_json::to_string(&hints).unwrap();
        assert_eq!(json, r#"{"ostro:host":"dc-r0-h1"}"#);
    }
}
