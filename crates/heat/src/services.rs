//! Mock OpenStack control plane: a Heat engine orchestrating Nova and
//! Cinder against the in-process data-center model.
//!
//! The real services expose REST APIs; these mocks expose the same
//! *semantics* — boot a server on a designated host, create a volume on
//! a designated host's disk, reserve pipe bandwidth — so the full
//! template → Ostro → deployment pipeline is exercised end to end.

use std::collections::BTreeMap;

use ostro_core::{HostTruth, Placement, PlacementOutcome, PlacementRequest, Scheduler};
use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::{ApplicationTopology, Bandwidth, Resources};

use crate::annotate::annotate_template;
use crate::error::HeatError;
use crate::template::HeatTemplate;
use crate::wrapper::{extract_topology, NameMap};

/// Identifier of a deployed stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StackId(u64);

/// One booted server (mock Nova's bookkeeping record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// The resource name from the template.
    pub name: String,
    /// The host the instance runs on.
    pub host: HostId,
    /// Compute reserved for the instance.
    pub resources: Resources,
    /// The owning stack.
    pub stack: StackId,
}

/// One created volume (mock Cinder's bookkeeping record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VolumeRecord {
    /// The resource name from the template.
    pub name: String,
    /// The host whose disk holds the volume.
    pub host: HostId,
    /// Volume size in GiB.
    pub size_gb: u64,
    /// The owning stack.
    pub stack: StackId,
}

/// Mock Nova: tracks booted instances.
#[derive(Debug, Clone, Default)]
pub struct NovaService {
    instances: Vec<Instance>,
}

impl NovaService {
    /// All booted instances.
    #[must_use]
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Number of booted instances.
    #[must_use]
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }
}

/// Mock Cinder: tracks created volumes.
#[derive(Debug, Clone, Default)]
pub struct CinderService {
    volumes: Vec<VolumeRecord>,
}

impl CinderService {
    /// All created volumes.
    #[must_use]
    pub fn volumes(&self) -> &[VolumeRecord] {
        &self.volumes
    }

    /// Number of created volumes.
    #[must_use]
    pub fn volume_count(&self) -> usize {
        self.volumes.len()
    }
}

/// A deployed stack: everything the controller knows about it.
#[derive(Debug, Clone)]
pub struct StackRecord {
    /// The stack's human-readable name.
    pub name: String,
    /// The template as submitted.
    pub template: HeatTemplate,
    /// The template with Ostro's scheduler hints stamped in.
    pub annotated: HeatTemplate,
    /// The extracted topology.
    pub topology: ApplicationTopology,
    /// Resource-name → node-id mapping.
    pub names: NameMap,
    /// The placement decision.
    pub placement: Placement,
    /// Full placement metrics.
    pub outcome: PlacementOutcome,
}

/// The mock Heat engine: owns the cloud's live capacity state and the
/// Nova/Cinder services, and runs the Fig. 1 pipeline for each stack.
#[derive(Debug, Clone)]
pub struct CloudController<'a> {
    infra: &'a Infrastructure,
    state: CapacityState,
    nova: NovaService,
    cinder: CinderService,
    stacks: BTreeMap<StackId, StackRecord>,
    next_id: u64,
}

impl<'a> CloudController<'a> {
    /// A controller over a fresh (fully idle) cloud.
    #[must_use]
    pub fn new(infra: &'a Infrastructure) -> Self {
        Self::with_state(infra, CapacityState::new(infra))
    }

    /// A controller over a cloud with pre-existing usage.
    #[must_use]
    pub fn with_state(infra: &'a Infrastructure, state: CapacityState) -> Self {
        CloudController {
            infra,
            state,
            nova: NovaService::default(),
            cinder: CinderService::default(),
            stacks: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// The cloud's current capacity state.
    #[must_use]
    pub fn state(&self) -> &CapacityState {
        &self.state
    }

    /// The mock Nova service.
    #[must_use]
    pub fn nova(&self) -> &NovaService {
        &self.nova
    }

    /// The mock Cinder service.
    #[must_use]
    pub fn cinder(&self) -> &CinderService {
        &self.cinder
    }

    /// A deployed stack's record, if the id is live.
    #[must_use]
    pub fn stack(&self, id: StackId) -> Option<&StackRecord> {
        self.stacks.get(&id)
    }

    /// Ids of all live stacks.
    #[must_use]
    pub fn stack_ids(&self) -> Vec<StackId> {
        self.stacks.keys().copied().collect()
    }

    /// Runs the full pipeline for one template: extract topology →
    /// Ostro placement → annotate → deploy via Nova/Cinder.
    ///
    /// # Errors
    ///
    /// Any [`HeatError`]: template problems, infeasible placement, or
    /// (never, absent bugs) deployment failure. The cloud state is
    /// unchanged on error.
    pub fn create_stack(
        &mut self,
        name: impl Into<String>,
        template: HeatTemplate,
        request: &PlacementRequest,
    ) -> Result<StackId, HeatError> {
        let (topology, names) = extract_topology(&template)?;
        let scheduler = Scheduler::new(self.infra);
        let outcome = scheduler.place(&topology, &self.state, request)?;
        let annotated = annotate_template(&template, &outcome.placement, self.infra, &names);

        // "Heat engine calls Nova and Cinder to schedule the VMs and
        // disk volumes on the designated cloud resources."
        let mut trial = self.state.clone();
        let id = StackId(self.next_id);
        let mut booted = Vec::new();
        let mut created = Vec::new();
        for node in topology.nodes() {
            let host = outcome.placement.host_of(node.id());
            let req = node.requirements();
            trial.reserve_node(host, req)?;
            if node.is_vm() {
                booted.push(Instance {
                    name: node.name().to_owned(),
                    host,
                    resources: req,
                    stack: id,
                });
            } else {
                created.push(VolumeRecord {
                    name: node.name().to_owned(),
                    host,
                    size_gb: req.disk_gb,
                    stack: id,
                });
            }
        }
        for link in topology.links() {
            let (a, b) = link.endpoints();
            trial.reserve_flow(
                self.infra,
                outcome.placement.host_of(a),
                outcome.placement.host_of(b),
                link.bandwidth(),
            )?;
        }

        self.state = trial;
        self.nova.instances.extend(booted);
        self.cinder.volumes.extend(created);
        self.next_id += 1;
        self.stacks.insert(
            id,
            StackRecord {
                name: name.into(),
                template,
                annotated,
                topology,
                names,
                placement: outcome.placement.clone(),
                outcome,
            },
        );
        Ok(id)
    }

    /// Updates a live stack to a new template (the paper's §IV-E
    /// online adaptation, driven through the Heat pipeline): resources
    /// keeping their name stay pinned to their current hosts where
    /// possible; Ostro re-places the rest incrementally.
    ///
    /// Returns the nodes that had to move. On error the stack and the
    /// cloud state are unchanged.
    ///
    /// # Errors
    ///
    /// [`HeatError::UnknownStack`], template errors, or placement
    /// failure once even a fully unpinned re-place is infeasible.
    pub fn update_stack(
        &mut self,
        id: StackId,
        template: HeatTemplate,
        request: &PlacementRequest,
    ) -> Result<Vec<String>, HeatError> {
        let record = self.stacks.get(&id).ok_or(HeatError::UnknownStack(id.0))?;
        let (topology, names) = extract_topology(&template)?;

        // Pin surviving resources (same name in old and new template)
        // to their current hosts.
        let mut prior: Vec<Option<HostId>> = vec![None; topology.node_count()];
        for (name, &node) in &names {
            if let Some(&old_node) = record.names.get(name) {
                prior[node.index()] = Some(record.placement.host_of(old_node));
            }
        }

        // Plan against the cloud minus this stack's own usage.
        let scheduler = Scheduler::new(self.infra);
        let mut state_without = self.state.clone();
        scheduler
            .release(&record.topology, &record.placement, &mut state_without)
            .map_err(HeatError::Placement)?;
        let result = scheduler.replace_online(&topology, &state_without, request, &prior, 4)?;

        // Apply: the new placement replaces the old one atomically.
        let mut new_state = state_without;
        scheduler
            .commit(&topology, &result.outcome.placement, &mut new_state)
            .map_err(HeatError::Placement)?;
        let annotated = annotate_template(&template, &result.outcome.placement, self.infra, &names);

        let moved: Vec<String> =
            result.repositioned.iter().map(|&n| topology.node(n).name().to_owned()).collect();

        self.state = new_state;
        self.nova.instances.retain(|i| i.stack != id);
        self.cinder.volumes.retain(|v| v.stack != id);
        for node in topology.nodes() {
            let host = result.outcome.placement.host_of(node.id());
            if node.is_vm() {
                self.nova.instances.push(Instance {
                    name: node.name().to_owned(),
                    host,
                    resources: node.requirements(),
                    stack: id,
                });
            } else {
                self.cinder.volumes.push(VolumeRecord {
                    name: node.name().to_owned(),
                    host,
                    size_gb: node.requirements().disk_gb,
                    stack: id,
                });
            }
        }
        let record = self.stacks.get_mut(&id).expect("checked above");
        record.template = template;
        record.annotated = annotated;
        record.topology = topology;
        record.names = names;
        record.placement = result.outcome.placement.clone();
        record.outcome = result.outcome;
        Ok(moved)
    }

    /// Evacuates a failing host: every stack with a node on `host` is
    /// incrementally re-placed with that host quarantined — unaffected
    /// nodes stay pinned where they are.
    ///
    /// Returns `(stack, resource)` pairs for every node that moved.
    /// On error (some stack cannot be re-placed anywhere) the entire
    /// cloud is rolled back to its pre-call state and the host is
    /// *not* quarantined.
    ///
    /// # Errors
    ///
    /// Placement errors if some affected stack no longer fits in the
    /// remaining capacity.
    pub fn evacuate_host(
        &mut self,
        host: HostId,
        request: &PlacementRequest,
    ) -> Result<Vec<(StackId, String)>, HeatError> {
        let backup = self.clone();
        let affected: Vec<StackId> = self
            .stacks
            .iter()
            .filter(|(_, r)| r.placement.assignments().contains(&host))
            .map(|(&id, _)| id)
            .collect();

        let scheduler = Scheduler::new(self.infra);
        // Free every affected stack first so the quarantine below
        // freezes only the host's *unowned* remainder.
        for &id in &affected {
            let record = &self.stacks[&id];
            if let Err(e) = scheduler.release(&record.topology, &record.placement, &mut self.state)
            {
                *self = backup;
                return Err(HeatError::Placement(e));
            }
        }
        self.state.quarantine_host(host);

        let mut moved = Vec::new();
        for &id in &affected {
            let record = self.stacks.get(&id).expect("affected ids are live");
            let topology = record.topology.clone();
            let prior: Vec<Option<HostId>> = record
                .topology
                .nodes()
                .iter()
                .map(|n| {
                    let old = record.placement.host_of(n.id());
                    (old != host).then_some(old)
                })
                .collect();
            // Nodes on the dead host are free; everything else pinned.
            let result = match scheduler.replace_online(&topology, &self.state, request, &prior, 4)
            {
                Ok(result) => result,
                Err(e) => {
                    *self = backup;
                    return Err(HeatError::Placement(e));
                }
            };
            if let Err(e) = scheduler.commit(&topology, &result.outcome.placement, &mut self.state)
            {
                *self = backup;
                return Err(HeatError::Placement(e));
            }
            for node in topology.nodes() {
                let new_host = result.outcome.placement.host_of(node.id());
                let old_host = self.stacks[&id].placement.host_of(node.id());
                if new_host != old_host {
                    moved.push((id, node.name().to_owned()));
                }
            }
            // Refresh service records and the stack entry.
            self.nova.instances.retain(|i| i.stack != id);
            self.cinder.volumes.retain(|v| v.stack != id);
            for node in topology.nodes() {
                let node_host = result.outcome.placement.host_of(node.id());
                if node.is_vm() {
                    self.nova.instances.push(Instance {
                        name: node.name().to_owned(),
                        host: node_host,
                        resources: node.requirements(),
                        stack: id,
                    });
                } else {
                    self.cinder.volumes.push(VolumeRecord {
                        name: node.name().to_owned(),
                        host: node_host,
                        size_gb: node.requirements().disk_gb,
                        stack: id,
                    });
                }
            }
            let record = self.stacks.get_mut(&id).expect("affected ids are live");
            record.annotated = annotate_template(
                &record.template,
                &result.outcome.placement,
                self.infra,
                &record.names,
            );
            record.placement = result.outcome.placement.clone();
            record.outcome = result.outcome;
        }
        Ok(moved)
    }

    /// Tears a stack down, releasing all its resources.
    ///
    /// # Errors
    ///
    /// [`HeatError::UnknownStack`] for a dead id; capacity errors
    /// cannot occur for a stack this controller deployed.
    pub fn delete_stack(&mut self, id: StackId) -> Result<(), HeatError> {
        let record = self.stacks.remove(&id).ok_or(HeatError::UnknownStack(id.0))?;
        let scheduler = Scheduler::new(self.infra);
        scheduler.release(&record.topology, &record.placement, &mut self.state).map_err(|e| {
            // Put the record back so state stays consistent.
            self.stacks.insert(id, record.clone());
            HeatError::Placement(e)
        })?;
        self.nova.instances.retain(|i| i.stack != id);
        self.cinder.volumes.retain(|v| v.stack != id);
        Ok(())
    }

    /// Total bandwidth currently reserved across the cloud's links.
    #[must_use]
    pub fn reserved_bandwidth(&self) -> Bandwidth {
        self.state.total_reserved_bandwidth(self.infra)
    }

    /// The control plane's per-host ground truth, aggregated from what
    /// Nova is actually running and Cinder actually storing: one entry
    /// per host (idle hosts included, so a scheduler holding a phantom
    /// reservation on an empty host is still caught), each counting
    /// the records landed there and summing their footprints. This is
    /// the authoritative side of the scheduler's anti-entropy sweep
    /// ([`ostro_core::SchedulerSession::reconcile`]).
    #[must_use]
    pub fn host_truth(&self) -> Vec<HostTruth> {
        let n = self.infra.host_count();
        let mut used = vec![Resources::ZERO; n];
        let mut instances = vec![0u32; n];
        for inst in self.nova.instances() {
            used[inst.host.index()] += inst.resources;
            instances[inst.host.index()] += 1;
        }
        for vol in self.cinder.volumes() {
            used[vol.host.index()] += Resources::storage(vol.size_gb);
            instances[vol.host.index()] += 1;
        }
        (0..n)
            .map(|i| HostTruth {
                host: HostId::from_index(i as u32),
                used: used[i],
                instances: instances[i],
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_datacenter::InfrastructureBuilder;

    fn template(n: usize) -> HeatTemplate {
        let mut resources = String::new();
        for i in 0..n {
            resources.push_str(&format!(
                r#""vm{i}": {{"type": "OS::Nova::Server",
                     "properties": {{"vcpus": 2, "memory_mb": 2048}}}},"#
            ));
        }
        let json = format!(
            r#"{{
              "heat_template_version": "2015-04-30",
              "resources": {{
                {resources}
                "vol": {{"type": "OS::Cinder::Volume", "properties": {{"size_gb": 40}}}},
                "att": {{"type": "OS::Cinder::VolumeAttachment",
                         "properties": {{"instance": "vm0", "volume": "vol",
                                          "bandwidth_mbps": 100}}}}
              }}
            }}"#
        );
        serde_json::from_str(&json).unwrap()
    }

    fn infra() -> ostro_datacenter::Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    #[test]
    fn create_then_delete_restores_the_cloud() {
        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        let fresh = cloud.state().clone();
        let id = cloud.create_stack("s1", template(3), &PlacementRequest::default()).unwrap();
        assert_eq!(cloud.nova().instance_count(), 3);
        assert_eq!(cloud.cinder().volume_count(), 1);
        assert!(cloud.state().active_host_count() > 0);
        assert_eq!(cloud.stack_ids(), vec![id]);
        cloud.delete_stack(id).unwrap();
        assert_eq!(cloud.nova().instance_count(), 0);
        assert_eq!(cloud.cinder().volume_count(), 0);
        assert_eq!(*cloud.state(), fresh);
        assert!(matches!(cloud.delete_stack(id).unwrap_err(), HeatError::UnknownStack(_)));
    }

    #[test]
    fn stacks_accumulate_and_see_each_other() {
        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        let a = cloud.create_stack("a", template(2), &PlacementRequest::default()).unwrap();
        let before = cloud.state().active_host_count();
        let b = cloud.create_stack("b", template(2), &PlacementRequest::default()).unwrap();
        assert_ne!(a, b);
        // The second stack was placed against the first stack's usage.
        assert!(cloud.state().active_host_count() >= before);
        assert_eq!(cloud.nova().instance_count(), 4);
        // Reserved bandwidth equals the sum of each stack's share.
        let total: Bandwidth = cloud
            .stack_ids()
            .iter()
            .map(|&id| cloud.stack(id).unwrap().outcome.reserved_bandwidth)
            .sum();
        assert_eq!(cloud.reserved_bandwidth(), total);
    }

    #[test]
    fn infeasible_stack_leaves_state_untouched() {
        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        let fresh = cloud.state().clone();
        let huge: HeatTemplate = serde_json::from_str(
            r#"{
              "heat_template_version": "2015-04-30",
              "resources": {
                "vm": {"type": "OS::Nova::Server",
                        "properties": {"vcpus": 999, "memory_mb": 1}}
              }
            }"#,
        )
        .unwrap();
        assert!(cloud.create_stack("nope", huge, &PlacementRequest::default()).is_err());
        assert_eq!(*cloud.state(), fresh);
        assert!(cloud.stack_ids().is_empty());
    }

    #[test]
    fn update_stack_keeps_survivors_and_adds_new_resources() {
        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        let id = cloud.create_stack("s", template(2), &PlacementRequest::default()).unwrap();
        let old_host_vm0 = cloud.nova().instances().iter().find(|i| i.name == "vm0").unwrap().host;

        let moved = cloud.update_stack(id, template(3), &PlacementRequest::default()).unwrap();
        assert!(moved.is_empty(), "pure addition repositions nothing: {moved:?}");
        assert_eq!(cloud.nova().instance_count(), 3);
        let new_host_vm0 = cloud.nova().instances().iter().find(|i| i.name == "vm0").unwrap().host;
        assert_eq!(new_host_vm0, old_host_vm0);
        // The stored record reflects the new template.
        assert_eq!(cloud.stack(id).unwrap().topology.vm_count(), 3);
    }

    #[test]
    fn update_stack_can_shrink() {
        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        let id = cloud.create_stack("s", template(3), &PlacementRequest::default()).unwrap();
        let before = cloud.reserved_bandwidth();
        cloud.update_stack(id, template(1), &PlacementRequest::default()).unwrap();
        assert_eq!(cloud.nova().instance_count(), 1);
        assert!(cloud.reserved_bandwidth() <= before);
        // Teardown still restores a pristine cloud.
        let pristine = CapacityState::new(&infra);
        cloud.delete_stack(id).unwrap();
        assert_eq!(*cloud.state(), pristine);
    }

    #[test]
    fn evacuation_moves_only_the_dead_hosts_nodes() {
        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        let request = PlacementRequest::default();
        let a = cloud.create_stack("a", template(2), &request).unwrap();
        let b = cloud.create_stack("b", template(2), &request).unwrap();
        // Pick a host actually in use by stack a.
        let dead = cloud.stack(a).unwrap().placement.assignments()[0];
        let victims_before: Vec<String> = cloud.nova().instances().iter().chain_names_on(dead);
        assert!(!victims_before.is_empty());

        let moved = cloud.evacuate_host(dead, &request).unwrap();
        assert!(!moved.is_empty());
        // Nothing remains on the dead host, in either service.
        assert!(cloud.nova().instances().iter().all(|i| i.host != dead));
        assert!(cloud.cinder().volumes().iter().all(|v| v.host != dead));
        // Quarantine holds: the host admits nothing new.
        assert!(cloud.state().available(dead).is_zero());
        // Both stacks still fully deployed and valid.
        for id in [a, b] {
            let record = cloud.stack(id).unwrap();
            let violations = ostro_core::verify_placement(
                &record.topology,
                &infra,
                &CapacityState::new(&infra),
                &record.placement,
            )
            .unwrap();
            assert!(violations.is_empty());
            assert!(!record.placement.assignments().contains(&dead));
        }
    }

    trait NamesOn {
        fn chain_names_on(self, host: HostId) -> Vec<String>;
    }
    impl<'a, I: Iterator<Item = &'a Instance>> NamesOn for I {
        fn chain_names_on(self, host: HostId) -> Vec<String> {
            self.filter(|i| i.host == host).map(|i| i.name.clone()).collect()
        }
    }

    #[test]
    fn evacuation_rolls_back_when_impossible() {
        // A cluster of exactly two hosts where the app needs host
        // diversity: killing one host leaves nowhere to go.
        let tiny = InfrastructureBuilder::flat(
            "tiny",
            1,
            2,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let mut cloud = CloudController::with_state(&tiny, CapacityState::new(&tiny));
        let request = PlacementRequest::default();
        let two_vms: HeatTemplate = serde_json::from_str(
            r#"{
              "heat_template_version": "2015-04-30",
              "resources": {
                "a": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 2048}},
                "b": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 2048}},
                "dz": {"type": "ATT::QoS::DiversityZone",
                        "properties": {"level": "host", "members": ["a", "b"]}}
              }
            }"#,
        )
        .unwrap();
        let id = cloud.create_stack("s", two_vms, &request).unwrap();
        let dead = cloud.stack(id).unwrap().placement.assignments()[0];
        let snapshot_state = cloud.state().clone();
        let err = cloud.evacuate_host(dead, &request).unwrap_err();
        assert!(matches!(err, HeatError::Placement(_)));
        // Full rollback: state and records untouched, host not quarantined.
        assert_eq!(*cloud.state(), snapshot_state);
        assert_eq!(cloud.nova().instance_count(), 2);
        assert!(!cloud.state().available(dead).is_zero());
    }

    #[test]
    fn update_unknown_stack_fails_cleanly() {
        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        let err =
            cloud.update_stack(StackId(99), template(1), &PlacementRequest::default()).unwrap_err();
        assert!(matches!(err, HeatError::UnknownStack(99)));
    }

    #[test]
    fn reconcile_repairs_a_drifted_session_against_nova_truth() {
        use ostro_core::{DivergenceKind, SchedulerSession};

        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        cloud.create_stack("a", template(3), &PlacementRequest::default()).unwrap();
        cloud.create_stack("b", template(2), &PlacementRequest::default()).unwrap();

        // A scheduler that started in sync with the control plane…
        let mut session = SchedulerSession::with_state(&infra, cloud.state().clone());
        let truth = cloud.host_truth();

        // …then drifted three ways. Orphaned reservation: a phantom
        // grab on a host Nova knows to be empty.
        let idle = truth.iter().find(|t| t.instances == 0).unwrap().host;
        session.reserve_node(idle, Resources::compute(2, 1_024)).unwrap();

        // Leaked release: the session dropped a booking for an
        // instance Nova is still running.
        let leaked = cloud.nova().instances()[0].clone();
        session.release_node(leaked.host, leaked.resources).unwrap();

        // Stale-race ghost: right record count, wrong footprint.
        let ghost =
            cloud.nova().instances().iter().find(|i| i.host != leaked.host).unwrap().clone();
        session.release_node(ghost.host, ghost.resources).unwrap();
        session.reserve_node(ghost.host, Resources::compute(1, 512)).unwrap();

        let report = session.reconcile(&cloud.host_truth()).unwrap();
        assert_eq!(report.repaired(), 3);
        assert_eq!(report.orphaned(), 1);
        assert_eq!(report.leaked(), 1);
        assert_eq!(report.ghosts(), 1);
        let kind_of = |host| report.divergences.iter().find(|d| d.host == host).map(|d| d.kind);
        assert_eq!(kind_of(idle), Some(DivergenceKind::OrphanedReservation));
        assert_eq!(kind_of(leaked.host), Some(DivergenceKind::LeakedRelease));
        assert_eq!(kind_of(ghost.host), Some(DivergenceKind::StaleRaceGhost));

        // The sweep forced the session's books back onto the control
        // plane's ground truth, and a second sweep finds nothing.
        assert_eq!(*session.state(), *cloud.state());
        let clean = session.reconcile(&cloud.host_truth()).unwrap();
        assert!(clean.divergences.is_empty());
    }

    #[test]
    fn annotated_template_is_stored_with_hints() {
        let infra = infra();
        let mut cloud = CloudController::new(&infra);
        let id = cloud.create_stack("s", template(1), &PlacementRequest::default()).unwrap();
        let record = cloud.stack(id).unwrap();
        let json = serde_json::to_string(&record.annotated).unwrap();
        assert!(json.contains("ostro:host"));
        assert_eq!(record.name, "s");
        // The instance really sits on the annotated host.
        let vm0 = cloud.nova().instances().iter().find(|i| i.name == "vm0").unwrap();
        assert_eq!(vm0.host, record.placement.host_of(record.names["vm0"]));
    }
}
