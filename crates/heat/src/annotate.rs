//! Stamping an Ostro placement decision back into a Heat template as
//! per-resource scheduler hints (the "QoS-enhanced Heat template →
//! annotated Heat template" step of Fig. 1).

use ostro_core::Placement;
use ostro_datacenter::Infrastructure;

use crate::template::{HeatTemplate, Resource, SchedulerHints};
use crate::wrapper::NameMap;

/// Returns a copy of `template` in which every server and volume
/// carries an `"ostro:host"` scheduler hint naming its decided host.
///
/// Resources absent from `names` (non-node resources, or nodes the
/// placement does not cover) are left untouched.
#[must_use]
pub fn annotate_template(
    template: &HeatTemplate,
    placement: &Placement,
    infra: &Infrastructure,
    names: &NameMap,
) -> HeatTemplate {
    let mut annotated = template.clone();
    for (name, resource) in &mut annotated.resources {
        let Some(&node) = names.get(name) else { continue };
        if node.index() >= placement.assignments().len() {
            continue;
        }
        let host = placement.host_of(node);
        let hints = SchedulerHints { host: infra.host(host).name().to_owned() };
        match resource {
            Resource::Server { properties } => properties.scheduler_hints = Some(hints),
            Resource::Volume { properties } => properties.scheduler_hints = Some(hints),
            _ => {}
        }
    }
    annotated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::extract_topology;
    use ostro_core::{PlacementRequest, Scheduler};
    use ostro_datacenter::{CapacityState, InfrastructureBuilder};
    use ostro_model::{Bandwidth, Resources};

    #[test]
    fn annotation_names_real_hosts_for_every_node() {
        let template: HeatTemplate = serde_json::from_str(
            r#"{
          "heat_template_version": "2015-04-30",
          "resources": {
            "web": {"type": "OS::Nova::Server", "properties": {"vcpus": 2, "memory_mb": 2048}},
            "vol": {"type": "OS::Cinder::Volume", "properties": {"size_gb": 50}},
            "p":   {"type": "ATT::QoS::Pipe",
                    "properties": {"between": ["web", "vol"], "bandwidth_mbps": 100}}
          }
        }"#,
        )
        .unwrap();
        let infra = InfrastructureBuilder::flat(
            "dc",
            2,
            2,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let (topo, names) = extract_topology(&template).unwrap();
        let state = CapacityState::new(&infra);
        let scheduler = Scheduler::new(&infra);
        let outcome = scheduler.place(&topo, &state, &PlacementRequest::default()).unwrap();
        let annotated = annotate_template(&template, &outcome.placement, &infra, &names);

        let host_names: Vec<&str> = infra.hosts().iter().map(|h| h.name()).collect();
        for key in ["web", "vol"] {
            let hint = match &annotated.resources[key] {
                Resource::Server { properties } => properties.scheduler_hints.clone(),
                Resource::Volume { properties } => properties.scheduler_hints.clone(),
                other => panic!("unexpected {other:?}"),
            }
            .expect("node resources must be annotated");
            assert!(host_names.contains(&hint.host.as_str()), "{}", hint.host);
        }
        // The pipe itself carries no hint.
        assert!(matches!(annotated.resources["p"], Resource::Pipe { .. }));
        // The original template is untouched.
        match &template.resources["web"] {
            Resource::Server { properties } => assert!(properties.scheduler_hints.is_none()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
