//! Property tests for the Heat wrapper: random topologies survive the
//! template round trip, and random templates deploy consistently.

use ostro_core::PlacementRequest;
use ostro_datacenter::InfrastructureBuilder;
use ostro_heat::{extract_topology, topology_to_template, CloudController};
use ostro_model::{
    ApplicationTopology, Bandwidth, DiversityLevel, Proximity, Resources, TopologyBuilder,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TopoSpec {
    vms: Vec<(u32, u64)>,
    volumes: Vec<u64>,
    links: Vec<(usize, usize, u64, u8)>,
    zone_members: Vec<usize>,
    zone_level: u8,
}

fn spec_strategy() -> impl Strategy<Value = TopoSpec> {
    let vms = prop::collection::vec((1u32..8, 1u64..16), 1..6);
    let volumes = prop::collection::vec(1u64..200, 0..4);
    (vms, volumes).prop_flat_map(|(vms, volumes)| {
        let n = vms.len() + volumes.len();
        (
            Just(vms),
            Just(volumes),
            prop::collection::vec((0..n, 0..n, 1u64..500, 0u8..5), 0..8),
            prop::collection::vec(0..n, 0..3),
            0u8..4,
        )
            .prop_map(|(vms, volumes, links, zone_members, zone_level)| TopoSpec {
                vms,
                volumes,
                links,
                zone_members,
                zone_level,
            })
    })
}

fn build(spec: &TopoSpec) -> ApplicationTopology {
    let mut b = TopologyBuilder::new("roundtrip");
    let mut ids = Vec::new();
    for (i, &(vcpus, mem_gb)) in spec.vms.iter().enumerate() {
        ids.push(b.vm(format!("vm{i}"), vcpus, mem_gb * 1024).unwrap());
    }
    for (i, &size) in spec.volumes.iter().enumerate() {
        ids.push(b.volume(format!("vol{i}"), size).unwrap());
    }
    for &(x, y, bw, prox) in &spec.links {
        if x == y {
            continue;
        }
        let bw = Bandwidth::from_mbps(bw);
        let result = match prox {
            0 => b.link_within(ids[x], ids[y], bw, Proximity::Host),
            1 => b.link_within(ids[x], ids[y], bw, Proximity::Rack),
            2 => b.link_within(ids[x], ids[y], bw, Proximity::Pod),
            3 => b.link_within(ids[x], ids[y], bw, Proximity::DataCenter),
            _ => b.link(ids[x], ids[y], bw),
        };
        let _ = result; // duplicate pairs are rejected; skip those
    }
    let mut members: Vec<_> = spec.zone_members.iter().map(|&m| ids[m]).collect();
    members.sort();
    members.dedup();
    if !members.is_empty() {
        let level = match spec.zone_level {
            0 => DiversityLevel::Host,
            1 => DiversityLevel::Rack,
            2 => DiversityLevel::Pod,
            _ => DiversityLevel::DataCenter,
        };
        b.diversity_zone("zone", level, &members).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// topology -> template -> topology preserves all structure that
    /// matters for placement.
    #[test]
    fn template_round_trip_is_lossless(spec in spec_strategy()) {
        let original = build(&spec);
        let template = topology_to_template(&original);
        let (back, _) = extract_topology(&template).unwrap();

        prop_assert_eq!(back.vm_count(), original.vm_count());
        prop_assert_eq!(back.volume_count(), original.volume_count());
        prop_assert_eq!(back.links().len(), original.links().len());
        prop_assert_eq!(back.zones().len(), original.zones().len());
        prop_assert_eq!(back.total_link_bandwidth(), original.total_link_bandwidth());
        prop_assert_eq!(back.total_requirements(), original.total_requirements());
        // Per-link bandwidth and proximity survive (match by endpoint names).
        for link in original.links() {
            let (a, b) = link.endpoints();
            let na = back.node_by_name(original.node(a).name()).unwrap().id();
            let nb = back.node_by_name(original.node(b).name()).unwrap().id();
            prop_assert_eq!(back.bandwidth_between(na, nb), Some(link.bandwidth()));
            let back_link = back
                .links()
                .iter()
                .find(|l| l.touches(na) && l.touches(nb))
                .unwrap();
            prop_assert_eq!(back_link.max_proximity(), link.max_proximity());
        }
        // JSON serialization round trips too.
        let json = serde_json::to_string(&template).unwrap();
        let reparsed: ostro_heat::HeatTemplate = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(reparsed, template);
    }

    /// Deploying any feasible generated template leaves the controller
    /// consistent, and deleting the stack restores it exactly.
    #[test]
    fn deploy_teardown_restores_cloud(spec in spec_strategy()) {
        let topology = build(&spec);
        let template = topology_to_template(&topology);
        let infra = InfrastructureBuilder::flat(
            "dc",
            3,
            4,
            Resources::new(32, 131_072, 4_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let mut cloud = CloudController::new(&infra);
        let pristine = cloud.state().clone();
        match cloud.create_stack("s", template, &PlacementRequest::default()) {
            Ok(id) => {
                let stack = cloud.stack(id).unwrap();
                prop_assert_eq!(
                    stack.placement.assignments().len(),
                    topology.node_count()
                );
                prop_assert_eq!(
                    cloud.nova().instance_count(),
                    topology.vm_count()
                );
                cloud.delete_stack(id).unwrap();
                prop_assert_eq!(cloud.state(), &pristine);
            }
            Err(_) => {
                // Infeasible (e.g. contradictory proximity + diversity);
                // the cloud must be untouched.
                prop_assert_eq!(cloud.state(), &pristine);
                prop_assert_eq!(cloud.nova().instance_count(), 0);
            }
        }
    }
}
