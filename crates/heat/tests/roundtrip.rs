//! Randomized tests for the Heat wrapper: random topologies survive the
//! template round trip, and random templates deploy consistently.
//!
//! Cases are generated from a seeded [`SmallRng`], so every run checks
//! the same corpus deterministically.

use ostro_core::PlacementRequest;
use ostro_datacenter::InfrastructureBuilder;
use ostro_heat::{extract_topology, topology_to_template, CloudController};
use ostro_model::{
    ApplicationTopology, Bandwidth, DiversityLevel, Proximity, Resources, TopologyBuilder,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn random_topo(rng: &mut SmallRng) -> ApplicationTopology {
    let mut b = TopologyBuilder::new("roundtrip");
    let mut ids = Vec::new();
    let vm_count = rng.gen_range(1usize..6);
    for i in 0..vm_count {
        let vcpus = rng.gen_range(1u32..8);
        let mem_gb = rng.gen_range(1u64..16);
        ids.push(b.vm(format!("vm{i}"), vcpus, mem_gb * 1024).unwrap());
    }
    let volume_count = rng.gen_range(0usize..4);
    for i in 0..volume_count {
        ids.push(b.volume(format!("vol{i}"), rng.gen_range(1u64..200)).unwrap());
    }
    let n = ids.len();
    for _ in 0..rng.gen_range(0usize..8) {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y {
            continue;
        }
        let bw = Bandwidth::from_mbps(rng.gen_range(1u64..500));
        let result = match rng.gen_range(0u8..5) {
            0 => b.link_within(ids[x], ids[y], bw, Proximity::Host),
            1 => b.link_within(ids[x], ids[y], bw, Proximity::Rack),
            2 => b.link_within(ids[x], ids[y], bw, Proximity::Pod),
            3 => b.link_within(ids[x], ids[y], bw, Proximity::DataCenter),
            _ => b.link(ids[x], ids[y], bw),
        };
        let _ = result; // duplicate pairs are rejected; skip those
    }
    let mut members: Vec<_> =
        (0..rng.gen_range(0usize..3)).map(|_| ids[rng.gen_range(0..n)]).collect();
    members.sort();
    members.dedup();
    if !members.is_empty() {
        let level = match rng.gen_range(0u8..4) {
            0 => DiversityLevel::Host,
            1 => DiversityLevel::Rack,
            2 => DiversityLevel::Pod,
            _ => DiversityLevel::DataCenter,
        };
        b.diversity_zone("zone", level, &members).unwrap();
    }
    b.build().unwrap()
}

/// topology -> template -> topology preserves all structure that
/// matters for placement.
#[test]
fn template_round_trip_is_lossless() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x8ea7_0000 + case);
        let original = random_topo(&mut rng);
        let template = topology_to_template(&original);
        let (back, _) = extract_topology(&template).unwrap();

        assert_eq!(back.vm_count(), original.vm_count(), "case {case}");
        assert_eq!(back.volume_count(), original.volume_count(), "case {case}");
        assert_eq!(back.links().len(), original.links().len(), "case {case}");
        assert_eq!(back.zones().len(), original.zones().len(), "case {case}");
        assert_eq!(back.total_link_bandwidth(), original.total_link_bandwidth(), "case {case}");
        assert_eq!(back.total_requirements(), original.total_requirements(), "case {case}");
        // Per-link bandwidth and proximity survive (match by endpoint names).
        for link in original.links() {
            let (a, b) = link.endpoints();
            let na = back.node_by_name(original.node(a).name()).unwrap().id();
            let nb = back.node_by_name(original.node(b).name()).unwrap().id();
            assert_eq!(back.bandwidth_between(na, nb), Some(link.bandwidth()), "case {case}");
            let back_link = back.links().iter().find(|l| l.touches(na) && l.touches(nb)).unwrap();
            assert_eq!(back_link.max_proximity(), link.max_proximity(), "case {case}");
        }
        // JSON serialization round trips too.
        let json = serde_json::to_string(&template).unwrap();
        let reparsed: ostro_heat::HeatTemplate = serde_json::from_str(&json).unwrap();
        assert_eq!(reparsed, template, "case {case}");
    }
}

/// Deploying any feasible generated template leaves the controller
/// consistent, and deleting the stack restores it exactly.
#[test]
fn deploy_teardown_restores_cloud() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x8ea7_1000 + case);
        let topology = random_topo(&mut rng);
        let template = topology_to_template(&topology);
        let infra = InfrastructureBuilder::flat(
            "dc",
            3,
            4,
            Resources::new(32, 131_072, 4_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let mut cloud = CloudController::new(&infra);
        let pristine = cloud.state().clone();
        match cloud.create_stack("s", template, &PlacementRequest::default()) {
            Ok(id) => {
                let stack = cloud.stack(id).unwrap();
                assert_eq!(
                    stack.placement.assignments().len(),
                    topology.node_count(),
                    "case {case}"
                );
                assert_eq!(cloud.nova().instance_count(), topology.vm_count(), "case {case}");
                cloud.delete_stack(id).unwrap();
                assert_eq!(cloud.state(), &pristine, "case {case}");
            }
            Err(_) => {
                // Infeasible (e.g. contradictory proximity + diversity);
                // the cloud must be untouched.
                assert_eq!(cloud.state(), &pristine, "case {case}");
                assert_eq!(cloud.nova().instance_count(), 0, "case {case}");
            }
        }
    }
}
