//! Engine-level integration tests: search statistics, stats plumbing,
//! serde of outcomes, and knob behavior.

use ostro_core::{Algorithm, ObjectiveWeights, PlacementOutcome, PlacementRequest, Scheduler};
use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};
use std::time::Duration;

fn infra() -> Infrastructure {
    InfrastructureBuilder::flat(
        "dc",
        2,
        6,
        Resources::new(8, 16_384, 500),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()
    .unwrap()
}

/// A star with four interchangeable leaves (same zone, same size, same
/// links) — symmetry reduction has real work to do here.
fn symmetric_star() -> ApplicationTopology {
    let mut b = TopologyBuilder::new("star");
    let hub = b.vm("hub", 2, 2_048).unwrap();
    let mut leaves = Vec::new();
    for i in 0..4 {
        let leaf = b.vm(format!("leaf{i}"), 1, 1_024).unwrap();
        b.link(hub, leaf, Bandwidth::from_mbps(100)).unwrap();
        leaves.push(leaf);
    }
    b.diversity_zone("leaves", DiversityLevel::Host, &leaves).unwrap();
    b.build().unwrap()
}

#[test]
fn greedy_stats_count_one_expansion_per_node() {
    let infra = infra();
    let topo = symmetric_star();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let outcome = scheduler.place(&topo, &state, &PlacementRequest::default()).unwrap();
    assert_eq!(outcome.stats.expanded, topo.node_count() as u64);
    assert!(outcome.stats.generated >= outcome.stats.expanded);
    assert!(outcome.stats.heuristic_evals > 0);
    assert_eq!(outcome.stats.eg_runs, 0, "plain EG embeds no inner EG runs");
    assert!(!outcome.stats.deadline_hit);
}

#[test]
fn bastar_uses_symmetry_reduction_when_enabled() {
    let infra = infra();
    let topo = symmetric_star();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let on = PlacementRequest {
        algorithm: Algorithm::BoundedAStar,
        zone_symmetry: true,
        max_expansions: 300,
        ..PlacementRequest::default()
    };
    let off = PlacementRequest { zone_symmetry: false, ..on.clone() };
    let with_sym = scheduler.place(&topo, &state, &on).unwrap();
    let without_sym = scheduler.place(&topo, &state, &off).unwrap();
    assert!(with_sym.stats.symmetry_skipped > 0, "{:?}", with_sym.stats);
    assert_eq!(without_sym.stats.symmetry_skipped, 0);
    // Quality must be unaffected.
    assert!((with_sym.objective - without_sym.objective).abs() < 1e-9);
}

#[test]
fn bastar_counts_bound_pruning_and_inner_eg_runs() {
    let infra = infra();
    let topo = symmetric_star();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let request = PlacementRequest {
        algorithm: Algorithm::BoundedAStar,
        weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
        ..PlacementRequest::default()
    };
    let outcome = scheduler.place(&topo, &state, &request).unwrap();
    assert!(outcome.stats.eg_runs >= 1, "initial bound always runs");
    assert!(outcome.stats.pruned_by_bound > 0, "{:?}", outcome.stats);
}

#[test]
fn max_expansions_one_equals_greedy_quality() {
    let infra = infra();
    let topo = symmetric_star();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let eg = scheduler
        .place(&topo, &state, &PlacementRequest::with_algorithm(Algorithm::Greedy))
        .unwrap();
    let capped = scheduler
        .place(
            &topo,
            &state,
            &PlacementRequest {
                algorithm: Algorithm::BoundedAStar,
                max_expansions: 1,
                ..PlacementRequest::default()
            },
        )
        .unwrap();
    // With one expansion BA* can only return its EG upper bound.
    assert!((capped.objective - eg.objective).abs() < 1e-9);
}

#[test]
fn outcome_serializes_and_round_trips() {
    let infra = infra();
    let topo = symmetric_star();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let outcome = scheduler.place(&topo, &state, &PlacementRequest::default()).unwrap();
    let json = serde_json::to_string(&outcome).unwrap();
    let back: PlacementOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(back, outcome);
}

#[test]
fn requests_serialize_with_algorithm_tags() {
    let request = PlacementRequest::with_algorithm(Algorithm::DeadlineBoundedAStar {
        deadline: Duration::from_millis(500),
    });
    let json = serde_json::to_string(&request).unwrap();
    let back: PlacementRequest = serde_json::from_str(&json).unwrap();
    assert_eq!(back, request);
    assert!(json.contains("DeadlineBoundedAStar"));
}

#[test]
#[should_panic(expected = "one pin slot per node")]
fn pinned_slice_length_is_enforced() {
    let infra = infra();
    let topo = symmetric_star();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let _ = scheduler.place_pinned(&topo, &state, &PlacementRequest::default(), &[None]);
}

#[test]
fn invalid_weights_are_rejected_before_searching() {
    let infra = infra();
    let topo = symmetric_star();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let request =
        PlacementRequest::default().weights(ObjectiveWeights { bandwidth: 0.9, hosts: 0.9 });
    assert!(matches!(
        scheduler.place(&topo, &state, &request),
        Err(ostro_core::PlacementError::InvalidWeights { .. })
    ));
}

/// Regression: a big-compute / tiny-NIC host must not become a trap.
/// Without promised-NIC reservations the greedy packs all five linked
/// VMs onto the 32-core host (co-location is free), and the sixth VM
/// — or a later neighbor — can no longer reach them through the
/// 150 Mbps NIC. With the screen the search spreads early and
/// completes.
#[test]
fn tiny_nic_honeypot_host_does_not_dead_end_the_search() {
    let mut b = InfrastructureBuilder::new();
    let site = b.site("s", Bandwidth::ZERO);
    let rack = b.rack(site, "r", Bandwidth::from_gbps(100)).unwrap();
    // The honeypot: lots of compute, almost no network.
    b.host(rack, "big", Resources::new(32, 65_536, 1_000), Bandwidth::from_mbps(150)).unwrap();
    for i in 0..6 {
        b.host(rack, format!("normal{i}"), Resources::new(4, 8_192, 500), Bandwidth::from_gbps(10))
            .unwrap();
    }
    let infra = b.build().unwrap();

    // A ring of six VMs, each edge demanding 100 Mbps.
    let mut t = TopologyBuilder::new("ring");
    let vms: Vec<_> = (0..6).map(|i| t.vm(format!("v{i}"), 2, 2_048).unwrap()).collect();
    for i in 0..6 {
        t.link(vms[i], vms[(i + 1) % 6], Bandwidth::from_mbps(100)).unwrap();
    }
    let topo = t.build().unwrap();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    for algorithm in [Algorithm::GreedyCompute, Algorithm::GreedyBandwidth, Algorithm::Greedy] {
        let request = PlacementRequest { algorithm, ..PlacementRequest::default() };
        let outcome = scheduler
            .place(&topo, &state, &request)
            .unwrap_or_else(|e| panic!("{algorithm:?} dead-ended: {e}"));
        assert!(ostro_core::verify_placement(&topo, &infra, &state, &outcome.placement)
            .unwrap()
            .is_empty());
    }
}

#[test]
fn estimate_ablation_changes_behavior_not_validity() {
    let infra = infra();
    let topo = symmetric_star();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    let with_est = scheduler.place(&topo, &state, &PlacementRequest::default()).unwrap();
    let without_est = scheduler
        .place(
            &topo,
            &state,
            &PlacementRequest { use_estimate: false, ..PlacementRequest::default() },
        )
        .unwrap();
    for outcome in [&with_est, &without_est] {
        assert!(ostro_core::verify_placement(&topo, &infra, &state, &outcome.placement)
            .unwrap()
            .is_empty());
    }
    // The estimate can only help (or tie) on the combined objective here.
    assert!(with_est.objective <= without_est.objective + 1e-9);
}

/// The parallel scoring pool must be a pure speedup: at any thread
/// count the scored candidate order — and therefore the placement —
/// matches the serial path exactly, for every algorithm.
#[test]
fn parallel_and_serial_placements_are_identical() {
    // Big enough that candidate sets cross the parallel threshold.
    let infra = InfrastructureBuilder::flat(
        "dc",
        8,
        16,
        Resources::new(8, 16_384, 500),
        Bandwidth::from_gbps(10),
        Bandwidth::from_gbps(100),
    )
    .build()
    .unwrap();
    let mut b = TopologyBuilder::new("chain");
    let ids: Vec<_> = (0..12).map(|i| b.vm(format!("v{i}"), 2, 2_048).unwrap()).collect();
    for w in ids.windows(2) {
        b.link(w[0], w[1], Bandwidth::from_mbps(80)).unwrap();
    }
    let topo = b.build().unwrap();
    let state = CapacityState::new(&infra);
    let scheduler = Scheduler::new(&infra);
    for algorithm in [Algorithm::Greedy, Algorithm::BoundedAStar] {
        let run = |parallel| {
            let request = PlacementRequest {
                algorithm,
                weights: ObjectiveWeights::SIMULATION,
                max_expansions: 400,
                parallel,
                ..PlacementRequest::default()
            };
            scheduler.place(&topo, &state, &request).unwrap()
        };
        let par = run(true);
        let ser = run(false);
        assert_eq!(
            par.placement, ser.placement,
            "{algorithm:?} diverged between parallel and serial scoring"
        );
        assert_eq!(par.objective.to_bits(), ser.objective.to_bits());
    }
}
