//! A persistent scoring pool: worker threads created once per solver
//! run (lazily, on the first over-threshold candidate set) and reused
//! for every subsequent scoring call, instead of spawning a scoped
//! thread per call.
//!
//! Dispatch is *chunked and work-stealing*: [`ScoringPool::run`]
//! publishes one batch descriptor holding a shared atomic cursor, and
//! every participant — the worker threads **and the calling thread** —
//! pulls task indices off that cursor until the batch is drained. The
//! caller participating has two consequences: a pool sized for one
//! thread spawns no workers at all (so "parallel" scoring degrades to
//! the serial loop plus nothing), and a batch always makes progress
//! even if the OS never schedules a worker.
//!
//! The pool executes *scoped* jobs: `run` blocks until every task
//! completes, so jobs may borrow request-local state (the search
//! context and current path) even though worker threads are long-lived.
//! Lifetime erasure is confined to `run`, which upholds the borrow by
//! not returning while any task is in flight.
//!
//! Panic safety: a panicking task is caught by its claimer, counted,
//! and still reported as completed, so the batch drains and `run`'s
//! wait condition terminates. `run` re-raises a single panic after the
//! batch is fully drained; the pool itself stays usable — no worker
//! dies, no lock is poisoned mid-update.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use crate::candidates::ScoredCandidate;

/// Best-effort worker pinning (Linux only; a no-op elsewhere).
///
/// Each worker is bound to one distinct CPU out of the process's
/// allowed set, with the set's first CPU left to the caller thread.
/// Pinning buys two things for the scoring kernel: chunk claims stop
/// migrating mid-batch (the per-thread heuristic scratch and its cache
/// lines stay put), and on multi-socket machines the first touch of
/// each worker's thread-local scratch happens on the node the worker is
/// bound to, so its working set is NUMA-local for the pool's lifetime.
/// Failures are ignored — an unpinned worker is merely a slower one.
mod affinity {
    #[cfg(target_os = "linux")]
    mod imp {
        /// 16 × 64 = 1024 CPUs, the kernel's default `CPU_SETSIZE`.
        const MASK_WORDS: usize = 16;

        // Raw glibc/musl bindings (`pid_t`, `size_t`, `cpu_set_t*`):
        // std already links libc, and the two calls avoid a crate
        // dependency for one syscall wrapper each.
        extern "C" {
            fn sched_getaffinity(pid: i32, cpusetsize: usize, mask: *mut u64) -> i32;
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        }

        /// The CPUs the calling thread may run on, ascending.
        pub(crate) fn allowed_cpus() -> Vec<usize> {
            let mut mask = [0u64; MASK_WORDS];
            // SAFETY: `mask` is a writable buffer of exactly
            // `cpusetsize` bytes; pid 0 means the calling thread.
            let rc =
                unsafe { sched_getaffinity(0, std::mem::size_of_val(&mask), mask.as_mut_ptr()) };
            if rc != 0 {
                return Vec::new();
            }
            let mut cpus = Vec::new();
            for (word_idx, &word) in mask.iter().enumerate() {
                for bit in 0..64 {
                    if word & (1u64 << bit) != 0 {
                        cpus.push(word_idx * 64 + bit);
                    }
                }
            }
            cpus
        }

        /// Binds the calling thread to `cpu`; best effort.
        pub(crate) fn pin_self_to(cpu: usize) {
            if cpu >= MASK_WORDS * 64 {
                return;
            }
            let mut mask = [0u64; MASK_WORDS];
            mask[cpu / 64] = 1u64 << (cpu % 64);
            // SAFETY: `mask` is a readable buffer of exactly
            // `cpusetsize` bytes; a failed call leaves the thread's
            // affinity unchanged, which is acceptable.
            let _ = unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        }
    }

    #[cfg(not(target_os = "linux"))]
    mod imp {
        pub(crate) fn allowed_cpus() -> Vec<usize> {
            Vec::new()
        }
        pub(crate) fn pin_self_to(_cpu: usize) {}
    }

    pub(super) use imp::{allowed_cpus, pin_self_to};
}

/// Locks ignoring poisoning: a panicked scoring task is already
/// counted by [`Batch::drain`], and every structure guarded here stays
/// consistent across a panic (counters and slots, no partial writes).
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One scoring batch: the erased task function plus the claim cursor
/// and completion bookkeeping all participants share.
struct Batch {
    /// The task shared by all claimers of this batch. The raw pointer
    /// erases the caller's lifetime; `run` keeps the referent alive
    /// until the batch is drained, and claimers check the cursor
    /// *before* dereferencing, so a stale batch handle never touches
    /// the pointer after `run` returned.
    task: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    cursor: AtomicUsize,
    /// Total task count; claims at or beyond this fail.
    tasks: usize,
    /// Completion counter + panic count, guarded for the condvar.
    done: Mutex<DoneState>,
    /// Signalled when `done.completed` reaches `tasks`.
    all_done: Condvar,
}

// SAFETY: the pointee is `Sync` (shared by many claimers) and outlives
// every dereference because `run` blocks until all `tasks` claims
// completed and no claim succeeds afterwards.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

#[derive(Default)]
struct DoneState {
    completed: usize,
    panicked: usize,
}

impl Batch {
    /// Claims and executes tasks until the cursor is exhausted.
    /// Panicking tasks are caught, counted, and still marked complete.
    fn drain(&self) {
        loop {
            let index = self.cursor.fetch_add(1, Ordering::Relaxed);
            if index >= self.tasks {
                return;
            }
            // SAFETY: the claim succeeded, so `run` is still blocked in
            // its wait loop and the task borrow is alive.
            let task = unsafe { &*self.task };
            let outcome = catch_unwind(AssertUnwindSafe(|| task(index)));
            let mut done = lock_unpoisoned(&self.done);
            done.completed += 1;
            done.panicked += usize::from(outcome.is_err());
            if done.completed == self.tasks {
                self.all_done.notify_all();
            }
        }
    }
}

/// The slot workers watch for new batches: a generation counter so a
/// worker can tell "new batch" from "the batch I just drained".
#[derive(Default)]
struct BatchSlot {
    generation: u64,
    batch: Option<Arc<Batch>>,
    shutdown: bool,
}

#[derive(Default)]
struct Shared {
    slot: Mutex<BatchSlot>,
    work_ready: Condvar,
}

/// Long-lived worker threads for candidate scoring.
///
/// `new(threads)` sizes the pool for `threads` total participants:
/// the calling thread claims work too, so only `threads - 1` workers
/// are spawned (none for a single-threaded pool).
pub(crate) struct ScoringPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Per-chunk scratch buffers for [`run_scored`](Self::run_scored),
    /// kept (with their capacity) across calls — and, when the pool
    /// belongs to a session, across requests — so steady-state scoring
    /// allocates nothing.
    scratch: Mutex<Arc<Vec<Mutex<Vec<ScoredCandidate>>>>>,
}

impl std::fmt::Debug for ScoringPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScoringPool").field("threads", &self.threads()).finish()
    }
}

impl ScoringPool {
    /// Builds a pool for `threads` total scoring participants
    /// (at least one — the caller itself).
    pub(crate) fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared::default());
        // Worker i is pinned to the (i+1)-th allowed CPU, skipping the
        // first so the caller thread keeps a CPU largely to itself;
        // with more workers than CPUs the assignment wraps.
        let allowed = affinity::allowed_cpus();
        // A thread the OS refuses to spawn simply isn't a participant:
        // the caller drains every batch itself, so the pool degrades
        // to fewer workers instead of failing.
        let workers = (1..threads.max(1))
            .filter_map(|i| {
                let shared = Arc::clone(&shared);
                let cpu = (!allowed.is_empty()).then(|| allowed[i % allowed.len()]);
                std::thread::Builder::new()
                    .name(format!("ostro-score-{i}"))
                    .spawn(move || {
                        if let Some(cpu) = cpu {
                            affinity::pin_self_to(cpu);
                        }
                        worker_loop(&shared)
                    })
                    .ok()
            })
            .collect();
        ScoringPool { shared, workers, scratch: Mutex::new(Arc::new(Vec::new())) }
    }

    /// Total scoring participants: spawned workers plus the caller.
    pub(crate) fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `task(0..tasks)` across the caller and the workers and
    /// blocks until every invocation finished. `task` may borrow
    /// caller-local state.
    ///
    /// # Panics
    ///
    /// Re-raises (as a single panic, after the batch fully drained) if
    /// any task panicked. The pool remains usable afterwards.
    pub(crate) fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.workers.is_empty() {
            // Single-participant pool: plain loop, zero dispatch cost.
            // Panics propagate directly — nothing is left in flight.
            for index in 0..tasks {
                task(index);
            }
            return;
        }
        // SAFETY: erase the lifetime for transport to the workers. The
        // wait loop below does not return until all `tasks` claims
        // completed, so the borrow outlives every dereference.
        let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        let batch = Arc::new(Batch {
            task,
            cursor: AtomicUsize::new(0),
            tasks,
            done: Mutex::new(DoneState::default()),
            all_done: Condvar::new(),
        });
        {
            let mut slot = lock_unpoisoned(&self.shared.slot);
            slot.generation += 1;
            slot.batch = Some(Arc::clone(&batch));
        }
        self.shared.work_ready.notify_all();
        // The caller works the batch too instead of blocking idle.
        batch.drain();
        let mut done = lock_unpoisoned(&batch.done);
        while done.completed < tasks {
            done = batch.all_done.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
        let panicked = done.panicked;
        drop(done);
        // Retire the batch so no stale `task` pointer lingers in the
        // slot after this borrow ends (drained handles held by workers
        // can no longer claim, hence never dereference).
        lock_unpoisoned(&self.shared.slot).batch = None;
        assert!(panicked == 0, "{panicked} candidate scoring task(s) panicked");
    }

    /// Chunked candidate scoring with pooled scratch: `fill(chunk, buf)`
    /// writes chunk `chunk`'s candidates into a cleared, capacity-warm
    /// buffer; the results come back concatenated **in chunk order**,
    /// so the output is identical no matter how many chunks or threads
    /// participated.
    ///
    /// # Panics
    ///
    /// As [`run`](Self::run), if any `fill` panics.
    pub(crate) fn run_scored(
        &self,
        chunks: usize,
        fill: &(dyn Fn(usize, &mut Vec<ScoredCandidate>) + Sync),
    ) -> Vec<ScoredCandidate> {
        if chunks == 0 {
            return Vec::new();
        }
        let buffers = {
            let mut guard = lock_unpoisoned(&self.scratch);
            if guard.len() < chunks {
                if let Some(vec) = Arc::get_mut(&mut guard) {
                    // Grow in place, keeping the already-warm buffers.
                    vec.resize_with(chunks, || Mutex::new(Vec::new()));
                } else {
                    // Another call still holds the buffers (defensive —
                    // a pool serves one search at a time); start fresh.
                    *guard = Arc::new((0..chunks).map(|_| Mutex::new(Vec::new())).collect());
                }
            }
            Arc::clone(&guard)
        };
        self.run(chunks, &|chunk| {
            let mut buf = lock_unpoisoned(&buffers[chunk]);
            buf.clear();
            fill(chunk, &mut buf);
        });
        let total = buffers.iter().take(chunks).map(|b| lock_unpoisoned(b).len()).sum();
        let mut out = Vec::with_capacity(total);
        for buf in buffers.iter().take(chunks) {
            out.extend_from_slice(&lock_unpoisoned(buf));
        }
        out
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_generation = 0;
    loop {
        let batch = {
            let mut slot = lock_unpoisoned(&shared.slot);
            loop {
                if slot.shutdown {
                    return;
                }
                if slot.generation != seen_generation {
                    seen_generation = slot.generation;
                    if let Some(batch) = slot.batch.clone() {
                        break batch;
                    }
                }
                slot = shared.work_ready.wait(slot).unwrap_or_else(PoisonError::into_inner);
            }
        };
        batch.drain();
    }
}

impl Drop for ScoringPool {
    fn drop(&mut self) {
        {
            let mut slot = lock_unpoisoned(&self.shared.slot);
            slot.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ScoringPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = ScoringPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(8, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 80);
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn tasks_can_borrow_local_state() {
        let pool = ScoringPool::new(3);
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, &|i| {
            out[i].store(input[i] as usize * 2, Ordering::SeqCst);
        });
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(slot.load(Ordering::SeqCst), i * 2);
        }
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = ScoringPool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn single_participant_pool_spawns_no_workers() {
        let pool = ScoringPool::new(1);
        assert_eq!(pool.threads(), 1);
        assert!(pool.workers.is_empty());
        let counter = AtomicUsize::new(0);
        pool.run(32, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    /// A panicking task must neither deadlock `run` nor poison the pool
    /// for subsequent batches — the satellite contract of this PR.
    #[test]
    fn panicking_task_neither_deadlocks_nor_poisons_the_pool() {
        let pool = ScoringPool::new(3);
        let survivors = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(48, &|i| {
                if i % 7 == 0 {
                    panic!("task {i} exploded");
                }
                survivors.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(outcome.is_err(), "run must re-raise the panic");
        // Every non-panicking task still ran: the batch fully drained.
        assert_eq!(survivors.load(Ordering::SeqCst), 48 - 7);
        // The pool is not poisoned: the next batch runs to completion.
        let counter = AtomicUsize::new(0);
        pool.run(16, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn panicking_task_on_single_participant_pool_propagates() {
        let pool = ScoringPool::new(1);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, &|i| assert!(i != 2, "boom"));
        }));
        assert!(outcome.is_err());
        let counter = AtomicUsize::new(0);
        pool.run(4, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn more_tasks_than_threads_drain_fully() {
        let pool = ScoringPool::new(2);
        let counter = AtomicUsize::new(0);
        pool.run(1_000, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1_000);
    }
}
