//! A persistent scoring pool: worker threads created once per solver
//! run (lazily, on the first over-threshold candidate set) and reused
//! for every subsequent scoring call, instead of spawning a scoped
//! thread per call.
//!
//! The pool executes *scoped* jobs: [`ScoringPool::run`] blocks until
//! every task completes, so jobs may borrow request-local state (the
//! search context and current path) even though worker threads are
//! long-lived. Lifetime erasure is confined to `run`, which upholds
//! the borrow by not returning while any task is in flight.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A task function shared by all workers for one `run` call, plus the
/// index range bookkeeping. The raw pointer erases the caller's
/// lifetime; `run` keeps the referent alive until all tasks finish.
struct Job {
    task: *const (dyn Fn(usize) + Sync),
    index: usize,
    progress: Arc<Progress>,
}

// SAFETY: the pointee is `Sync` (shared by many workers) and outlives
// the job because `run` blocks until `Progress` reports completion.
unsafe impl Send for Job {}

#[derive(Default)]
struct Progress {
    state: Mutex<ProgressState>,
    all_done: Condvar,
}

#[derive(Default)]
struct ProgressState {
    completed: usize,
    panicked: usize,
}

/// Long-lived worker threads for candidate scoring.
pub(crate) struct ScoringPool {
    sender: Mutex<Option<Sender<Job>>>,
    workers: Vec<JoinHandle<()>>,
}

impl ScoringPool {
    /// Spawns `threads` workers (at least one).
    pub(crate) fn new(threads: usize) -> Self {
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads.max(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("ostro-score-{i}"))
                    .spawn(move || loop {
                        let job = match receiver.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return, // pool dropped
                        };
                        // SAFETY: `run` keeps the task alive until the
                        // completion count below reaches the task total.
                        let task = unsafe { &*job.task };
                        let outcome = catch_unwind(AssertUnwindSafe(|| task(job.index)));
                        let mut state = job.progress.state.lock().unwrap();
                        state.completed += 1;
                        state.panicked += usize::from(outcome.is_err());
                        job.progress.all_done.notify_all();
                    })
                    .expect("failed to spawn scoring worker")
            })
            .collect();
        ScoringPool { sender: Mutex::new(Some(sender)), workers }
    }

    /// Number of worker threads.
    pub(crate) fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `task(0..tasks)` across the workers and blocks until every
    /// invocation finished. `task` may borrow caller-local state.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) if any task panicked.
    pub(crate) fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        let progress = Arc::new(Progress::default());
        // SAFETY: erase the lifetime for transport to the workers. The
        // wait loop below does not return until all `tasks` invocations
        // completed, so the borrow outlives every use.
        let task: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
        {
            let sender = self.sender.lock().unwrap();
            let sender = sender.as_ref().expect("pool already shut down");
            for index in 0..tasks {
                sender
                    .send(Job { task, index, progress: Arc::clone(&progress) })
                    .expect("scoring workers exited early");
            }
        }
        let mut state = progress.state.lock().unwrap();
        while state.completed < tasks {
            state = progress.all_done.wait(state).unwrap();
        }
        assert!(state.panicked == 0, "candidate scoring task panicked");
    }
}

impl Drop for ScoringPool {
    fn drop(&mut self) {
        // Closing the channel makes every worker's recv fail and exit.
        *self.sender.lock().unwrap() = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = ScoringPool::new(4);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = ScoringPool::new(2);
        let counter = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(8, &|_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 80);
        assert_eq!(pool.threads(), 2);
    }

    #[test]
    fn tasks_can_borrow_local_state() {
        let pool = ScoringPool::new(3);
        let input: Vec<u64> = (0..100).collect();
        let out: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        pool.run(100, &|i| {
            out[i].store(input[i] as usize * 2, Ordering::SeqCst);
        });
        for (i, slot) in out.iter().enumerate() {
            assert_eq!(slot.load(Ordering::SeqCst), i * 2);
        }
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        let pool = ScoringPool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }
}
