//! The public facade: one [`Scheduler`] per infrastructure, dispatching
//! placement requests to the five algorithms and applying decisions to
//! live capacity state.

use std::time::Instant;

use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::{ApplicationTopology, Bandwidth};

use crate::astar::run_bastar;
use crate::baselines::{run_egbw, run_egc};
use crate::deadline::run_dbastar;
use crate::error::PlacementError;
use crate::greedy::{pinned_root, run_eg};
use crate::placement::{Placement, PlacementOutcome, SearchStats};
use crate::request::{Algorithm, PlacementRequest};
use crate::search::{Ctx, Path};

/// The Ostro scheduler for one infrastructure.
///
/// Stateless apart from the infrastructure reference: capacity state is
/// passed per call, so one scheduler can serve many what-if scenarios
/// concurrently.
///
/// ```
/// use ostro_core::{PlacementRequest, Scheduler};
/// use ostro_datacenter::{CapacityState, InfrastructureBuilder};
/// use ostro_model::{Bandwidth, Resources, TopologyBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let infra = InfrastructureBuilder::flat(
///     "dc", 2, 4,
///     Resources::new(16, 32_768, 1_000),
///     Bandwidth::from_gbps(10),
///     Bandwidth::from_gbps(100),
/// ).build()?;
/// let mut b = TopologyBuilder::new("app");
/// let web = b.vm("web", 2, 2_048)?;
/// let db = b.vm("db", 4, 8_192)?;
/// b.link(web, db, Bandwidth::from_mbps(100))?;
/// let topology = b.build()?;
///
/// let scheduler = Scheduler::new(&infra);
/// let mut state = CapacityState::new(&infra);
/// let outcome = scheduler.place(&topology, &state, &PlacementRequest::default())?;
/// scheduler.commit(&topology, &outcome.placement, &mut state)?;
/// assert_eq!(state.active_host_count(), outcome.hosts_used);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Scheduler<'a> {
    infra: &'a Infrastructure,
}

impl<'a> Scheduler<'a> {
    /// Creates a scheduler over `infra`.
    #[must_use]
    pub fn new(infra: &'a Infrastructure) -> Self {
        Scheduler { infra }
    }

    /// The infrastructure this scheduler places onto.
    #[must_use]
    pub fn infrastructure(&self) -> &'a Infrastructure {
        self.infra
    }

    /// Computes a holistic placement for `topology` on top of `state`.
    ///
    /// `state` is *not* modified — call [`commit`](Self::commit) to
    /// apply the returned decision.
    ///
    /// # Errors
    ///
    /// [`PlacementError::Infeasible`] / [`PlacementError::Exhausted`]
    /// when no valid placement exists (or none was found within the
    /// algorithm's bounds), [`PlacementError::InvalidWeights`] or
    /// [`PlacementError::ZeroDeadline`] on bad parameters.
    pub fn place(
        &self,
        topology: &ApplicationTopology,
        state: &CapacityState,
        request: &PlacementRequest,
    ) -> Result<PlacementOutcome, PlacementError> {
        self.place_pinned(topology, state, request, &vec![None; topology.node_count()])
    }

    /// Like [`place`](Self::place), but with some nodes pinned to fixed
    /// hosts (the online re-placement path, §IV-E).
    ///
    /// # Errors
    ///
    /// As [`place`](Self::place); additionally infeasible when a pinned
    /// host cannot accommodate its node.
    ///
    /// # Panics
    ///
    /// Panics if `pinned.len() != topology.node_count()`.
    pub fn place_pinned(
        &self,
        topology: &ApplicationTopology,
        state: &CapacityState,
        request: &PlacementRequest,
        pinned: &[Option<HostId>],
    ) -> Result<PlacementOutcome, PlacementError> {
        self.place_pinned_with(topology, state, request, pinned, None)
    }

    /// [`place_pinned`](Self::place_pinned) with optional session
    /// state attached: the search then resolves heuristic bounds
    /// through the session's cross-request cache and screens
    /// candidates against its host summaries. `state` must be the
    /// session's own state — the summaries describe it.
    pub(crate) fn place_pinned_with(
        &self,
        topology: &ApplicationTopology,
        state: &CapacityState,
        request: &PlacementRequest,
        pinned: &[Option<HostId>],
        session: Option<&crate::session::SessionShared>,
    ) -> Result<PlacementOutcome, PlacementError> {
        assert_eq!(pinned.len(), topology.node_count(), "one pin slot per node");
        let started = Instant::now();
        if request.shard {
            return crate::shard::place_sharded(
                self.infra, topology, state, request, pinned, session, started,
            );
        }
        let ctx =
            Ctx::with_session(topology, self.infra, state, request, pinned.to_vec(), session)?;
        let mut stats = SearchStats::default();
        let path = run_algorithm(&ctx, request, &mut stats)?;
        drop(ctx);
        Self::outcome(path, stats, started)
    }

    pub(crate) fn outcome(
        path: Path<'_>,
        stats: SearchStats,
        started: Instant,
    ) -> Result<PlacementOutcome, PlacementError> {
        let assignments: Vec<HostId> = path
            .assignment
            .iter()
            .copied()
            .collect::<Option<_>>()
            .ok_or(PlacementError::IncompleteAssignment)?;
        let placement = Placement::new(assignments);
        Ok(PlacementOutcome {
            objective: path.u_star,
            reserved_bandwidth: Bandwidth::from_mbps(path.ubw_mbps),
            new_active_hosts: path.new_hosts(),
            hosts_used: placement.distinct_hosts(),
            elapsed: started.elapsed(),
            stats,
            placement,
        })
    }

    /// Applies a placement decision to live capacity state, reserving
    /// every node's resources and every link's bandwidth.
    ///
    /// All-or-nothing: on error the state is left untouched.
    ///
    /// # Errors
    ///
    /// [`PlacementError::SizeMismatch`] or a wrapped
    /// [`CapacityError`](ostro_datacenter::CapacityError) if anything
    /// does not fit.
    pub fn commit(
        &self,
        topology: &ApplicationTopology,
        placement: &Placement,
        state: &mut CapacityState,
    ) -> Result<(), PlacementError> {
        if placement.assignments().len() != topology.node_count() {
            return Err(PlacementError::SizeMismatch {
                expected: topology.node_count(),
                actual: placement.assignments().len(),
            });
        }
        let mut trial = state.clone();
        for node in topology.nodes() {
            trial.reserve_node(placement.host_of(node.id()), node.requirements())?;
        }
        for link in topology.links() {
            let (a, b) = link.endpoints();
            trial.reserve_flow(
                self.infra,
                placement.host_of(a),
                placement.host_of(b),
                link.bandwidth(),
            )?;
        }
        *state = trial;
        Ok(())
    }

    /// Releases a previously committed placement from live state.
    ///
    /// All-or-nothing: on error the state is left untouched.
    ///
    /// # Errors
    ///
    /// [`PlacementError::SizeMismatch`] or a wrapped
    /// [`CapacityError`](ostro_datacenter::CapacityError) on any
    /// release underflow (e.g. the placement was never committed).
    pub fn release(
        &self,
        topology: &ApplicationTopology,
        placement: &Placement,
        state: &mut CapacityState,
    ) -> Result<(), PlacementError> {
        if placement.assignments().len() != topology.node_count() {
            return Err(PlacementError::SizeMismatch {
                expected: topology.node_count(),
                actual: placement.assignments().len(),
            });
        }
        let mut trial = state.clone();
        for node in topology.nodes() {
            trial.release_node(self.infra, placement.host_of(node.id()), node.requirements())?;
        }
        for link in topology.links() {
            let (a, b) = link.endpoints();
            trial.release_flow(
                self.infra,
                placement.host_of(a),
                placement.host_of(b),
                link.bandwidth(),
            )?;
        }
        *state = trial;
        Ok(())
    }
}

/// Dispatches `request.algorithm` over an already-built context — the
/// one search entry point shared by the unsharded path and the sharded
/// per-pod searches.
pub(crate) fn run_algorithm<'a>(
    ctx: &Ctx<'a>,
    request: &PlacementRequest,
    stats: &mut SearchStats,
) -> Result<Path<'a>, PlacementError> {
    match request.algorithm {
        Algorithm::GreedyCompute => {
            let root = pinned_root(ctx)?;
            run_egc(ctx, &root, stats)
        }
        Algorithm::GreedyBandwidth => {
            let root = pinned_root(ctx)?;
            run_egbw(ctx, &root, stats)
        }
        Algorithm::Greedy => {
            let root = pinned_root(ctx)?;
            run_eg(ctx, &root, stats)
        }
        Algorithm::BoundedAStar => run_bastar(ctx, stats, request.max_expansions),
        Algorithm::DeadlineBoundedAStar { deadline } => run_dbastar(
            ctx,
            stats,
            deadline,
            request.seed,
            request.max_expansions,
            request.virtual_tick_us,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveWeights;
    use crate::validate::verify_placement;
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{DiversityLevel, Resources, TopologyBuilder};
    use std::time::Duration;

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn topology() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("app");
        let web = b.vm("web", 2, 2_048).unwrap();
        let db = b.vm("db", 4, 8_192).unwrap();
        let vol = b.volume("vol", 100).unwrap();
        b.link(web, db, Bandwidth::from_mbps(100)).unwrap();
        b.link(db, vol, Bandwidth::from_mbps(200)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &[web, db]).unwrap();
        b.build().unwrap()
    }

    fn all_algorithms() -> Vec<Algorithm> {
        vec![
            Algorithm::GreedyCompute,
            Algorithm::GreedyBandwidth,
            Algorithm::Greedy,
            Algorithm::BoundedAStar,
            Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(5) },
        ]
    }

    #[test]
    fn every_algorithm_yields_a_valid_placement() {
        let inf = infra();
        let topo = topology();
        let state = CapacityState::new(&inf);
        let scheduler = Scheduler::new(&inf);
        for algorithm in all_algorithms() {
            let request = PlacementRequest { algorithm, ..PlacementRequest::default() };
            let outcome = scheduler.place(&topo, &state, &request).unwrap();
            let violations = verify_placement(&topo, &inf, &state, &outcome.placement).unwrap();
            assert!(violations.is_empty(), "{algorithm:?}: {violations:?}");
            assert!(outcome.hosts_used >= 2, "diversity zone forces >= 2 hosts");
        }
    }

    #[test]
    fn commit_then_release_restores_state() {
        let inf = infra();
        let topo = topology();
        let mut state = CapacityState::new(&inf);
        let snapshot = state.clone();
        let scheduler = Scheduler::new(&inf);
        let outcome = scheduler.place(&topo, &state, &PlacementRequest::default()).unwrap();
        scheduler.commit(&topo, &outcome.placement, &mut state).unwrap();
        assert!(state.active_host_count() > 0);
        assert_eq!(state.total_reserved_bandwidth(&inf), outcome.reserved_bandwidth);
        scheduler.release(&topo, &outcome.placement, &mut state).unwrap();
        assert_eq!(state, snapshot);
    }

    #[test]
    fn commit_is_atomic_on_failure() {
        let inf = infra();
        let topo = topology();
        let mut state = CapacityState::new(&inf);
        let scheduler = Scheduler::new(&inf);
        // A placement that overloads host 0 on purpose.
        let bogus = Placement::new(vec![HostId::from_index(0); 3]);
        // web+db on one host violates nothing capacity-wise... fill it first.
        state.reserve_node(HostId::from_index(0), Resources::new(7, 16_000, 450)).unwrap();
        let before = state.clone();
        assert!(scheduler.commit(&topo, &bogus, &mut state).is_err());
        assert_eq!(state, before);
    }

    #[test]
    fn release_of_uncommitted_placement_fails_atomically() {
        let inf = infra();
        let topo = topology();
        let mut state = CapacityState::new(&inf);
        let scheduler = Scheduler::new(&inf);
        let bogus = Placement::new(vec![HostId::from_index(0); 3]);
        let before = state.clone();
        assert!(scheduler.release(&topo, &bogus, &mut state).is_err());
        assert_eq!(state, before);
    }

    #[test]
    fn size_mismatch_detected_everywhere() {
        let inf = infra();
        let topo = topology();
        let mut state = CapacityState::new(&inf);
        let scheduler = Scheduler::new(&inf);
        let short = Placement::new(vec![HostId::from_index(0)]);
        assert!(matches!(
            scheduler.commit(&topo, &short, &mut state),
            Err(PlacementError::SizeMismatch { .. })
        ));
        assert!(matches!(
            scheduler.release(&topo, &short, &mut state),
            Err(PlacementError::SizeMismatch { .. })
        ));
    }

    /// The PR's acceptance pin: parallel chunked dispatch plus the
    /// heuristic memo cache picks placements bit-identical to the
    /// serial cold-cache engine, across every search algorithm.
    #[test]
    fn parallel_cached_scoring_is_bit_identical_to_serial_cold_cache() {
        // 128 hosts: enough feasible candidates that the parallel path
        // crosses its adaptive serial threshold at 4 participants.
        let inf = InfrastructureBuilder::flat(
            "dc",
            8,
            16,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let mut b = TopologyBuilder::new("app");
        let hub = b.vm("hub", 4, 4_096).unwrap();
        let mut workers = Vec::new();
        for i in 0..4 {
            let w = b.vm(format!("w{i}"), 2, 2_048).unwrap();
            b.link(hub, w, Bandwidth::from_mbps(100 + 50 * i)).unwrap();
            workers.push(w);
        }
        let vol = b.volume("vol", 200).unwrap();
        b.link(hub, vol, Bandwidth::from_mbps(400)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &workers[..2]).unwrap();
        let topo = b.build().unwrap();
        let state = CapacityState::new(&inf);
        let scheduler = Scheduler::new(&inf);
        for algorithm in [
            Algorithm::Greedy,
            Algorithm::BoundedAStar,
            Algorithm::DeadlineBoundedAStar { deadline: Duration::from_secs(5) },
        ] {
            let fast = PlacementRequest {
                algorithm,
                parallel: true,
                memoize_bounds: true,
                score_threads: 4,
                max_expansions: 2_000,
                ..PlacementRequest::default()
            };
            let slow = PlacementRequest {
                algorithm,
                parallel: false,
                memoize_bounds: false,
                score_threads: 1,
                ..fast.clone()
            };
            let a = scheduler.place(&topo, &state, &fast).unwrap();
            let b = scheduler.place(&topo, &state, &slow).unwrap();
            assert_eq!(a.placement, b.placement, "{algorithm:?}: placements diverged");
            assert_eq!(a.objective.to_bits(), b.objective.to_bits(), "{algorithm:?}: objective");
            assert_eq!(a.reserved_bandwidth, b.reserved_bandwidth, "{algorithm:?}: bandwidth");
            assert_eq!(a.hosts_used, b.hosts_used, "{algorithm:?}: hosts");
            assert_eq!(a.stats.heuristic_evals, b.stats.heuristic_evals, "{algorithm:?}: evals");
            assert!(a.stats.bound_cache_hits > 0, "{algorithm:?}: cache never engaged");
            assert_eq!(b.stats.bound_cache_hits + b.stats.bound_cache_misses, 0);
        }
    }

    #[test]
    fn bandwidth_dominant_weights_colocate_linked_nodes() {
        let inf = infra();
        let mut b = TopologyBuilder::new("pair");
        let x = b.vm("x", 2, 2_048).unwrap();
        let y = b.vm("y", 2, 2_048).unwrap();
        b.link(x, y, Bandwidth::from_mbps(500)).unwrap();
        let topo = b.build().unwrap();
        let state = CapacityState::new(&inf);
        let scheduler = Scheduler::new(&inf);
        let request = PlacementRequest::default().weights(ObjectiveWeights::BANDWIDTH_DOMINANT);
        let outcome = scheduler.place(&topo, &state, &request).unwrap();
        assert_eq!(outcome.reserved_bandwidth, Bandwidth::ZERO);
        assert_eq!(outcome.hosts_used, 1);
        assert!(outcome.elapsed > Duration::ZERO);
    }
}
