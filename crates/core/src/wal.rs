//! Crash-recoverable scheduler state: a write-ahead journal with
//! periodic snapshots and bounded replay.
//!
//! Every mutation a [`SchedulerSession`](crate::SchedulerSession)
//! funnels through its wrappers is recorded as one logical operation
//! carrying the exact primitive *effects* it applied to the
//! [`CapacityState`] — node reservations, flow reservations, their
//! releases, quarantines, and reconciliation resyncs. Replay applies
//! the effects in journal order to a fresh (or snapshotted) state, so
//! a recovered session's books are bit-identical to the books the
//! live session held at the moment of its last durable append.
//!
//! # On-disk format
//!
//! The journal (`wal.log`) starts with a 24-byte header:
//!
//! ```text
//! magic "OSTROWAL" (8) | version u32 LE | host_count u32 LE | base_seq u64 LE
//! ```
//!
//! followed by length-prefixed, CRC-checksummed records:
//!
//! ```text
//! len u32 LE | crc32(payload) u32 LE | payload
//! payload = seq u64 LE | op u8 | effect_count u32 LE | effects...
//! ```
//!
//! Sequence numbers are contiguous from `base_seq + 1`. A torn tail —
//! a record cut short or failing its checksum — is tolerated: replay
//! stops at the last good record, [`Recovery::truncated_tail`] is set,
//! and [`Wal::open`] truncates the file there before appending. Any
//! corruption *behind* a valid checksum (bad opcode, out-of-range
//! host, sequence gap) is not a torn write and surfaces as a typed
//! [`WalError`] instead.
//!
//! # Snapshots and compaction
//!
//! Every [`WalOptions::snapshot_every`] appends (or on an explicit
//! [`SchedulerSession::checkpoint`](crate::SchedulerSession::checkpoint)),
//! the full `CapacityState` plus the quarantine set is serialized to
//! `snapshot.json` (written to a temp file, fsynced, then renamed,
//! with the directory fsynced so the rename is durable), after which
//! the journal is truncated to a fresh header whose `base_seq` is the
//! snapshot's sequence number. Replay time is therefore bounded by the
//! snapshot cadence, not the session's age.
//!
//! A crash *between* the rename and the truncation leaves a snapshot
//! at sequence `N` over a journal still based at `M < N`. Recovery
//! tolerates that window: journal records at or below the snapshot's
//! sequence are validated for contiguity and decodability but not
//! re-applied (they are already folded into the snapshot), and
//! [`Wal::open`] completes the interrupted compaction by re-truncating
//! the journal behind the snapshot. Only a journal based *ahead* of
//! the snapshot — history the snapshot never covered is gone — is a
//! hard [`WalError::Corrupt`].
//!
//! # Fsync policy
//!
//! [`SyncPolicy::OnSnapshot`] (the default) flushes every append to
//! the OS and fsyncs only at snapshots and on explicit
//! [`Wal::sync`]; [`SyncPolicy::Always`] fsyncs every append.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use ostro_datacenter::{CapacityError, CapacityState, HostId, Infrastructure};
use ostro_model::{ApplicationTopology, Bandwidth, Resources};

use crate::placement::Placement;

/// Journal file name inside a WAL directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside a WAL directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
const SNAPSHOT_TMP: &str = "snapshot.json.tmp";

const MAGIC: &[u8; 8] = b"OSTROWAL";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 24;
/// Upper bound on a single record's payload; anything larger in the
/// length prefix is treated as tail corruption rather than allocated.
const MAX_PAYLOAD: u32 = 1 << 26;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled so the journal has no
// dependency beyond std.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE) of `data` — the checksum guarding every record payload.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failures of the durability layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum WalError {
    /// An I/O operation on a journal or snapshot file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// The journal is corrupt beyond a torn tail: a bad header, an
    /// undecodable checksummed payload, or a sequence gap.
    Corrupt {
        /// The journal file.
        path: PathBuf,
        /// Byte offset of the corruption.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// The snapshot file exists but cannot be parsed or is internally
    /// inconsistent.
    Snapshot {
        /// The snapshot file.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
    /// The journal or snapshot was written for a different
    /// infrastructure (host counts disagree).
    HostCountMismatch {
        /// Hosts in the infrastructure being recovered onto.
        expected: usize,
        /// Hosts the durable state was written for.
        found: usize,
    },
    /// A checksummed record failed to apply during replay — the
    /// journal does not describe a reachable state of this
    /// infrastructure.
    Replay {
        /// Sequence number of the failing record.
        seq: u64,
        /// The capacity-level failure.
        source: CapacityError,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { path, source } => {
                write!(f, "wal i/o error on {}: {source}", path.display())
            }
            WalError::Corrupt { path, offset, reason } => {
                write!(f, "corrupt journal {} at byte {offset}: {reason}", path.display())
            }
            WalError::Snapshot { path, reason } => {
                write!(f, "corrupt snapshot {}: {reason}", path.display())
            }
            WalError::HostCountMismatch { expected, found } => write!(
                f,
                "durable state covers {found} hosts but the infrastructure has {expected}"
            ),
            WalError::Replay { seq, source } => {
                write!(f, "replay failed at record {seq}: {source}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            WalError::Replay { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: io::Error) -> WalError {
    WalError::Io { path: path.to_path_buf(), source }
}

/// Fsyncs a directory so renames and file creations inside it are
/// durable — without this a machine crash can surface the journal
/// truncation while the snapshot rename it depends on is lost.
fn sync_dir(dir: &Path) -> Result<(), WalError> {
    let handle = File::open(dir).map_err(|e| io_err(dir, e))?;
    handle.sync_all().map_err(|e| io_err(dir, e))
}

// ---------------------------------------------------------------------------
// Operations and effects
// ---------------------------------------------------------------------------

/// The logical session operation a journal record belongs to.
///
/// Provenance only — replay is driven entirely by the record's
/// [`Effect`] list, so every op kind replays the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalOp {
    /// [`SchedulerSession::commit`](crate::SchedulerSession::commit).
    Commit,
    /// [`SchedulerSession::release`](crate::SchedulerSession::release).
    Release,
    /// [`SchedulerSession::release_partial`](crate::SchedulerSession::release_partial).
    ReleasePartial,
    /// The net reservations of a successful
    /// [`SchedulerSession::deploy`](crate::SchedulerSession::deploy).
    Deploy,
    /// Reserved for a composite evacuation record. Evacuations journal
    /// as their constituent `ReleasePartial` + `Quarantine` records,
    /// so this op is never emitted by the session itself.
    Evacuate,
    /// [`SchedulerSession::quarantine_host`](crate::SchedulerSession::quarantine_host).
    Quarantine,
    /// A raw [`SchedulerSession::reserve_node`](crate::SchedulerSession::reserve_node).
    ReserveNode,
    /// A raw [`SchedulerSession::release_node`](crate::SchedulerSession::release_node).
    ReleaseNode,
    /// An anti-entropy correction journaled by
    /// [`SchedulerSession::reconcile`](crate::SchedulerSession::reconcile).
    Reconcile,
    /// One atomic tenant migration journaled by
    /// [`SchedulerSession::migrate`](crate::SchedulerSession::migrate):
    /// the release of the old placement followed by the commit of the
    /// new one in a single record, so a crash can never observe a
    /// half-moved tenant.
    Migrate,
}

impl WalOp {
    fn as_u8(self) -> u8 {
        match self {
            WalOp::Commit => 0,
            WalOp::Release => 1,
            WalOp::ReleasePartial => 2,
            WalOp::Deploy => 3,
            WalOp::Evacuate => 4,
            WalOp::Quarantine => 5,
            WalOp::ReserveNode => 6,
            WalOp::ReleaseNode => 7,
            WalOp::Reconcile => 8,
            WalOp::Migrate => 9,
        }
    }

    fn from_u8(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => WalOp::Commit,
            1 => WalOp::Release,
            2 => WalOp::ReleasePartial,
            3 => WalOp::Deploy,
            4 => WalOp::Evacuate,
            5 => WalOp::Quarantine,
            6 => WalOp::ReserveNode,
            7 => WalOp::ReleaseNode,
            8 => WalOp::Reconcile,
            9 => WalOp::Migrate,
            _ => return None,
        })
    }
}

/// One primitive state mutation, the unit of replay. A journal record
/// is a sequence of effects applied atomically-in-order; replaying the
/// whole journal reproduces the live state bit-for-bit because these
/// are exactly the mutations [`CapacityState`] exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// `state.reserve_node(host, resources)`.
    ReserveNode {
        /// Target host.
        host: HostId,
        /// Node footprint.
        resources: Resources,
    },
    /// `state.release_node(infra, host, resources)`.
    ReleaseNode {
        /// Target host.
        host: HostId,
        /// Node footprint.
        resources: Resources,
    },
    /// `state.reserve_flow(infra, a, b, mbps)` along the `a`→`b` route.
    ReserveFlow {
        /// One endpoint host.
        a: HostId,
        /// The other endpoint host.
        b: HostId,
        /// Link demand in Mbps.
        mbps: u64,
    },
    /// `state.release_flow(infra, a, b, mbps)`.
    ReleaseFlow {
        /// One endpoint host.
        a: HostId,
        /// The other endpoint host.
        b: HostId,
        /// Link demand in Mbps.
        mbps: u64,
    },
    /// `state.quarantine_host(host)` — also marks the host in the
    /// recovered quarantine set.
    Quarantine {
        /// The host frozen out of future placements.
        host: HostId,
    },
    /// `state.resync_host(infra, host, used, instances)` — an
    /// anti-entropy correction forcing the books to ground truth.
    Resync {
        /// The corrected host.
        host: HostId,
        /// Ground-truth used footprint.
        used: Resources,
        /// Ground-truth instance count.
        instances: u32,
    },
}

const MAX_EFFECT_LEN: usize = 25;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn encode_effect(buf: &mut Vec<u8>, effect: &Effect) {
    match *effect {
        Effect::ReserveNode { host, resources } | Effect::ReleaseNode { host, resources } => {
            buf.push(if matches!(effect, Effect::ReserveNode { .. }) { 0 } else { 1 });
            put_u32(buf, host.index() as u32);
            put_u32(buf, resources.vcpus);
            put_u64(buf, resources.memory_mb);
            put_u64(buf, resources.disk_gb);
        }
        Effect::ReserveFlow { a, b, mbps } | Effect::ReleaseFlow { a, b, mbps } => {
            buf.push(if matches!(effect, Effect::ReserveFlow { .. }) { 2 } else { 3 });
            put_u32(buf, a.index() as u32);
            put_u32(buf, b.index() as u32);
            put_u64(buf, mbps);
        }
        Effect::Quarantine { host } => {
            buf.push(4);
            put_u32(buf, host.index() as u32);
        }
        Effect::Resync { host, used, instances } => {
            buf.push(5);
            put_u32(buf, host.index() as u32);
            put_u32(buf, used.vcpus);
            put_u64(buf, used.memory_mb);
            put_u64(buf, used.disk_gb);
            put_u32(buf, instances);
        }
    }
}

/// Sequential little-endian reader over a record payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(bytes);
        Some(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(bytes);
        Some(u64::from_le_bytes(arr))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_host(cur: &mut Cursor<'_>, host_count: usize) -> Option<HostId> {
    let idx = cur.u32()?;
    if (idx as usize) < host_count {
        Some(HostId::from_index(idx))
    } else {
        None
    }
}

fn decode_effect(cur: &mut Cursor<'_>, host_count: usize) -> Option<Effect> {
    let tag = cur.u8()?;
    Some(match tag {
        0 | 1 => {
            let host = decode_host(cur, host_count)?;
            let resources = Resources::new(cur.u32()?, cur.u64()?, cur.u64()?);
            if tag == 0 {
                Effect::ReserveNode { host, resources }
            } else {
                Effect::ReleaseNode { host, resources }
            }
        }
        2 | 3 => {
            let a = decode_host(cur, host_count)?;
            let b = decode_host(cur, host_count)?;
            let mbps = cur.u64()?;
            if tag == 2 {
                Effect::ReserveFlow { a, b, mbps }
            } else {
                Effect::ReleaseFlow { a, b, mbps }
            }
        }
        4 => Effect::Quarantine { host: decode_host(cur, host_count)? },
        5 => {
            let host = decode_host(cur, host_count)?;
            let used = Resources::new(cur.u32()?, cur.u64()?, cur.u64()?);
            let instances = cur.u32()?;
            Effect::Resync { host, used, instances }
        }
        _ => return None,
    })
}

fn encode_record(seq: u64, op: WalOp, effects: &[Effect]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(13 + effects.len() * MAX_EFFECT_LEN);
    put_u64(&mut payload, seq);
    payload.push(op.as_u8());
    put_u32(&mut payload, effects.len() as u32);
    for effect in effects {
        encode_effect(&mut payload, effect);
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn encode_header(host_count: usize, base_seq: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&(host_count as u32).to_le_bytes());
    h[16..24].copy_from_slice(&base_seq.to_le_bytes());
    h
}

// ---------------------------------------------------------------------------
// Effect builders mirroring the scheduler's mutation order
// ---------------------------------------------------------------------------

/// The effects [`Scheduler::commit`](crate::Scheduler::commit) applies:
/// every node reserved in topology order, then every link's flow.
#[must_use]
pub fn commit_effects(topology: &ApplicationTopology, placement: &Placement) -> Vec<Effect> {
    let mut effects = Vec::with_capacity(topology.node_count() + topology.links().len());
    for node in topology.nodes() {
        effects.push(Effect::ReserveNode {
            host: placement.host_of(node.id()),
            resources: node.requirements(),
        });
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        effects.push(Effect::ReserveFlow {
            a: placement.host_of(a),
            b: placement.host_of(b),
            mbps: link.bandwidth().as_mbps(),
        });
    }
    effects
}

/// The effects of [`Scheduler::release`](crate::Scheduler::release):
/// the exact inverse of [`commit_effects`], in the same order.
#[must_use]
pub fn release_effects(topology: &ApplicationTopology, placement: &Placement) -> Vec<Effect> {
    commit_effects(topology, placement).iter().map(Effect::inverse).collect()
}

/// The effects of
/// [`Scheduler::release_partial`](crate::Scheduler::release_partial):
/// every assigned node released, then every fully assigned link.
#[must_use]
pub fn release_partial_effects(
    topology: &ApplicationTopology,
    assignment: &[Option<HostId>],
) -> Vec<Effect> {
    deploy_effects(topology, assignment).iter().map(Effect::inverse).collect()
}

/// The net effects of a successful deployment of a (possibly partial)
/// `assignment`: every placed node reserved, then every link whose
/// endpoints both landed.
#[must_use]
pub fn deploy_effects(
    topology: &ApplicationTopology,
    assignment: &[Option<HostId>],
) -> Vec<Effect> {
    let mut effects = Vec::new();
    for node in topology.nodes() {
        if let Some(host) = assignment[node.id().index()] {
            effects.push(Effect::ReserveNode { host, resources: node.requirements() });
        }
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        if let (Some(ha), Some(hb)) = (assignment[a.index()], assignment[b.index()]) {
            effects.push(Effect::ReserveFlow { a: ha, b: hb, mbps: link.bandwidth().as_mbps() });
        }
    }
    effects
}

impl Effect {
    /// The effect undoing this one (quarantine and resync are their
    /// own "inverse" — they are idempotent forcings, not deltas).
    #[must_use]
    pub fn inverse(&self) -> Effect {
        match *self {
            Effect::ReserveNode { host, resources } => Effect::ReleaseNode { host, resources },
            Effect::ReleaseNode { host, resources } => Effect::ReserveNode { host, resources },
            Effect::ReserveFlow { a, b, mbps } => Effect::ReleaseFlow { a, b, mbps },
            Effect::ReleaseFlow { a, b, mbps } => Effect::ReserveFlow { a, b, mbps },
            other => other,
        }
    }
}

// ---------------------------------------------------------------------------
// Options, snapshots, recovery
// ---------------------------------------------------------------------------

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncPolicy {
    /// Flush every append to the OS; fsync only at snapshots and on
    /// explicit [`Wal::sync`]. The default — a kernel survives a
    /// process crash, and a machine crash costs at most one snapshot
    /// interval.
    #[default]
    OnSnapshot,
    /// Fsync every append — maximum durability, one fsync per record.
    Always,
}

/// Tuning for a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalOptions {
    /// Appends between automatic snapshots (journal compactions);
    /// `0` disables automatic snapshots entirely.
    pub snapshot_every: u64,
    /// The fsync policy.
    pub sync: SyncPolicy,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { snapshot_every: 256, sync: SyncPolicy::OnSnapshot }
    }
}

/// The serialized snapshot document (`snapshot.json`).
#[derive(Serialize, Deserialize)]
struct SnapshotDoc {
    seq: u64,
    host_count: usize,
    state: CapacityState,
    quarantined: Vec<u32>,
}

/// Everything recovered from a WAL directory: the reconstructed books,
/// the quarantine set, and how the recovery went.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// The capacity books at the last durable record.
    pub state: CapacityState,
    /// Hosts quarantined at the last durable record, ascending.
    pub quarantined: Vec<HostId>,
    /// Sequence number of the last applied record (0 if none ever).
    pub seq: u64,
    /// Sequence number the snapshot covered, if one existed.
    pub snapshot_seq: Option<u64>,
    /// Journal records replayed on top of the snapshot (or scratch).
    pub records_replayed: u64,
    /// Journal records skipped because the snapshot already covered
    /// them — non-zero only when a crash interrupted a compaction
    /// between the snapshot rename and the journal truncation.
    pub records_skipped: u64,
    /// Whether a torn tail was detected (and, via [`Wal::open`],
    /// truncated at the last good record).
    pub truncated_tail: bool,
}

struct TailScan {
    /// Byte length of the journal's valid prefix (0 when the file is
    /// missing, empty, or its header itself is torn).
    good_len: u64,
    /// The journal's `base_seq` is older than the snapshot's sequence:
    /// a compaction was interrupted between the snapshot rename and
    /// the journal truncation. [`Wal::open`] finishes the job.
    stale_prefix: bool,
}

/// Reconstructs scheduler state from `dir` without touching the files
/// (a read-only [`Wal::open`]). Missing files recover to a fresh,
/// fully idle state.
///
/// # Errors
///
/// [`WalError`] on I/O failure, a corrupt header or snapshot, an
/// infrastructure mismatch, or a checksummed record that fails to
/// apply. A torn tail is *not* an error — see
/// [`Recovery::truncated_tail`].
pub fn recover(dir: &Path, infra: &Infrastructure) -> Result<Recovery, WalError> {
    recover_impl(dir, infra).map(|(recovery, _)| recovery)
}

fn recover_impl(dir: &Path, infra: &Infrastructure) -> Result<(Recovery, TailScan), WalError> {
    let host_count = infra.host_count();
    let snap_path = dir.join(SNAPSHOT_FILE);
    let wal_path = dir.join(WAL_FILE);

    // 1. Snapshot, if any.
    let snapshot = match fs::read(&snap_path) {
        Ok(bytes) => {
            let text = String::from_utf8(bytes).map_err(|e| WalError::Snapshot {
                path: snap_path.clone(),
                reason: e.to_string(),
            })?;
            let doc: SnapshotDoc = serde_json::from_str(&text).map_err(|e| WalError::Snapshot {
                path: snap_path.clone(),
                reason: e.to_string(),
            })?;
            if doc.host_count != host_count || doc.state.host_count() != host_count {
                return Err(WalError::HostCountMismatch {
                    expected: host_count,
                    found: doc.host_count,
                });
            }
            if doc.quarantined.iter().any(|&h| h as usize >= host_count) {
                return Err(WalError::Snapshot {
                    path: snap_path.clone(),
                    reason: "quarantined host out of range".to_string(),
                });
            }
            Some(doc)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => None,
        Err(e) => return Err(io_err(&snap_path, e)),
    };

    let snapshot_seq = snapshot.as_ref().map(|doc| doc.seq);
    let mut quarantined = vec![false; host_count];
    let mut state = match snapshot {
        Some(doc) => {
            for h in doc.quarantined {
                quarantined[h as usize] = true;
            }
            doc.state
        }
        None => CapacityState::new(infra),
    };
    let mut seq = snapshot_seq.unwrap_or(0);

    // 2. Journal, if any.
    let bytes = match fs::read(&wal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let recovery = Recovery {
                state,
                quarantined: collect_quarantined(&quarantined),
                seq,
                snapshot_seq,
                records_replayed: 0,
                records_skipped: 0,
                truncated_tail: false,
            };
            return Ok((recovery, TailScan { good_len: 0, stale_prefix: false }));
        }
        Err(e) => return Err(io_err(&wal_path, e)),
    };

    if bytes.len() < HEADER_LEN {
        // An empty or torn header: nothing after it can have been
        // durably appended (the header is the first write after every
        // truncation), so recovering to the snapshot alone is safe.
        let recovery = Recovery {
            state,
            quarantined: collect_quarantined(&quarantined),
            seq,
            snapshot_seq,
            records_replayed: 0,
            records_skipped: 0,
            truncated_tail: !bytes.is_empty(),
        };
        return Ok((recovery, TailScan { good_len: 0, stale_prefix: false }));
    }

    if &bytes[..8] != MAGIC {
        return Err(WalError::Corrupt {
            path: wal_path,
            offset: 0,
            reason: "bad magic".to_string(),
        });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != VERSION {
        return Err(WalError::Corrupt {
            path: wal_path,
            offset: 8,
            reason: format!("unsupported version {version}"),
        });
    }
    let header_hosts = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    if header_hosts != host_count {
        return Err(WalError::HostCountMismatch { expected: host_count, found: header_hosts });
    }
    let base_seq = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]);
    if base_seq > seq {
        // The journal continues from a sequence the snapshot never
        // reached: history between them is gone. (The snapshot rename
        // is made durable with a directory fsync *before* the journal
        // is truncated, so this cannot be an interrupted compaction.)
        return Err(WalError::Corrupt {
            path: wal_path,
            offset: 16,
            reason: format!("journal base sequence {base_seq} is ahead of snapshot ({seq})"),
        });
    }
    // base_seq < seq is the compaction crash window: the snapshot was
    // renamed into place but the journal was not yet truncated behind
    // it. Records at or below the snapshot's sequence are already
    // folded in and replay skips them.
    let stale_prefix = base_seq < seq;

    // 3. Replay records until the end or the first torn byte.
    let mut pos = HEADER_LEN;
    let mut good_len = HEADER_LEN as u64;
    let mut journal_seq = base_seq;
    let mut records_replayed = 0u64;
    let mut records_skipped = 0u64;
    let mut torn = false;
    while pos < bytes.len() {
        let Some(frame) = bytes.get(pos..pos + 8) else {
            torn = true;
            break;
        };
        let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
        let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if len > MAX_PAYLOAD {
            torn = true;
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            torn = true;
            break;
        };
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        // From here on the payload is checksummed: failures are real
        // corruption (or a foreign journal), not torn writes.
        let record_seq = apply_payload(
            payload,
            &wal_path,
            pos as u64,
            journal_seq,
            seq,
            infra,
            &mut state,
            &mut quarantined,
        )?;
        journal_seq = record_seq;
        if record_seq > seq {
            seq = record_seq;
            records_replayed += 1;
        } else {
            records_skipped += 1;
        }
        pos += 8 + len as usize;
        good_len = pos as u64;
    }

    let recovery = Recovery {
        state,
        quarantined: collect_quarantined(&quarantined),
        seq,
        snapshot_seq,
        records_replayed,
        records_skipped,
        truncated_tail: torn,
    };
    Ok((recovery, TailScan { good_len, stale_prefix }))
}

/// Decodes and applies one checksummed payload, returning its sequence
/// number (which must be `prev_seq + 1`). Records at or below
/// `applied_seq` — a stale prefix left by an interrupted compaction —
/// are fully validated but their effects are not re-applied: the
/// snapshot already holds them.
#[allow(clippy::too_many_arguments)]
fn apply_payload(
    payload: &[u8],
    wal_path: &Path,
    offset: u64,
    prev_seq: u64,
    applied_seq: u64,
    infra: &Infrastructure,
    state: &mut CapacityState,
    quarantined: &mut [bool],
) -> Result<u64, WalError> {
    let corrupt = |reason: &str| WalError::Corrupt {
        path: wal_path.to_path_buf(),
        offset,
        reason: reason.to_string(),
    };
    let mut cur = Cursor::new(payload);
    let record_seq = cur.u64().ok_or_else(|| corrupt("payload too short"))?;
    if record_seq != prev_seq + 1 {
        return Err(corrupt(&format!("sequence gap: {prev_seq} then {record_seq}")));
    }
    let op_tag = cur.u8().ok_or_else(|| corrupt("payload too short"))?;
    WalOp::from_u8(op_tag).ok_or_else(|| corrupt(&format!("unknown op {op_tag}")))?;
    let count = cur.u32().ok_or_else(|| corrupt("payload too short"))?;
    for _ in 0..count {
        let effect = decode_effect(&mut cur, infra.host_count())
            .ok_or_else(|| corrupt("undecodable effect"))?;
        if record_seq > applied_seq {
            apply_effect(state, quarantined, infra, effect, record_seq)?;
        }
    }
    if !cur.done() {
        return Err(corrupt("trailing bytes in payload"));
    }
    Ok(record_seq)
}

fn apply_effect(
    state: &mut CapacityState,
    quarantined: &mut [bool],
    infra: &Infrastructure,
    effect: Effect,
    seq: u64,
) -> Result<(), WalError> {
    let result = match effect {
        Effect::ReserveNode { host, resources } => state.reserve_node(host, resources),
        Effect::ReleaseNode { host, resources } => {
            let out = state.release_node(infra, host, resources);
            refreeze(state, quarantined, host);
            out
        }
        Effect::ReserveFlow { a, b, mbps } => {
            state.reserve_flow(infra, a, b, Bandwidth::from_mbps(mbps))
        }
        Effect::ReleaseFlow { a, b, mbps } => {
            let out = state.release_flow(infra, a, b, Bandwidth::from_mbps(mbps));
            refreeze(state, quarantined, a);
            refreeze(state, quarantined, b);
            out
        }
        Effect::Quarantine { host } => {
            state.quarantine_host(host);
            quarantined[host.index()] = true;
            Ok(())
        }
        Effect::Resync { host, used, instances } => {
            let out = state.resync_host(infra, host, used, instances);
            refreeze(state, quarantined, host);
            out
        }
    };
    result.map_err(|source| WalError::Replay { seq, source })
}

/// Re-zeroes a quarantined host's availability after a release-like
/// effect. `CapacityState` stores no quarantine flag, so a release on a
/// quarantined host would otherwise resurrect the capacity the
/// quarantine froze; the live session applies the same re-freeze, so
/// replay stays bit-identical.
fn refreeze(state: &mut CapacityState, quarantined: &[bool], host: HostId) {
    if quarantined[host.index()] {
        state.quarantine_host(host);
    }
}

fn collect_quarantined(flags: &[bool]) -> Vec<HostId> {
    flags
        .iter()
        .enumerate()
        .filter(|&(_, &q)| q)
        .map(|(i, _)| HostId::from_index(i as u32))
        .collect()
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The journal I/O operation a fault hook is consulted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalIoOp {
    /// A record append (consulted before any bytes are written).
    Append,
    /// An explicit flush + fsync via [`Wal::sync`].
    Sync,
    /// A snapshot + compaction via [`Wal::snapshot`].
    Snapshot,
}

/// The fault a hook can inject into a journal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum WalFault {
    /// Fail the operation with an I/O error of this kind (`ENOSPC`,
    /// `EIO`, …) without touching the journal bytes.
    Error(io::ErrorKind),
    /// Write only a prefix of the record before failing — the torn
    /// tail a crash mid-write leaves, which recovery's last-good-record
    /// scan tolerates and [`Wal::rewind`](Wal) truncates away. Only
    /// meaningful for [`WalIoOp::Append`]; elsewhere it degrades to a
    /// plain error.
    Torn,
}

/// An injectable fault hook: consulted with the operation and the
/// sequence number it concerns, it returns `Some(fault)` to make that
/// operation fail. A hook that sleeps before returning `None` models a
/// slow disk. Install one with [`Wal::set_fault_hook`]; production
/// journals have none and pay only an `Option` check.
#[derive(Clone)]
pub struct WalFaultHook(Arc<dyn Fn(WalIoOp, u64) -> Option<WalFault> + Send + Sync>);

impl WalFaultHook {
    /// Wraps a fault-drawing closure.
    pub fn new(f: impl Fn(WalIoOp, u64) -> Option<WalFault> + Send + Sync + 'static) -> Self {
        WalFaultHook(Arc::new(f))
    }

    fn draw(&self, op: WalIoOp, seq: u64) -> Option<WalFault> {
        (self.0)(op, seq)
    }
}

impl fmt::Debug for WalFaultHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("WalFaultHook(..)")
    }
}

fn injected(kind: io::ErrorKind, what: &str) -> io::Error {
    io::Error::new(kind, format!("injected {what} fault"))
}

// ---------------------------------------------------------------------------
// The writer
// ---------------------------------------------------------------------------

/// An open write-ahead journal. Obtain one with [`Wal::open`]; feed it
/// to [`SchedulerSession::attach_wal`](crate::SchedulerSession::attach_wal)
/// to make every session mutation durable.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    dir: PathBuf,
    writer: io::BufWriter<File>,
    host_count: usize,
    seq: u64,
    snapshot_seq: Option<u64>,
    since_snapshot: u64,
    snapshots_taken: u64,
    journal_bytes: u64,
    options: WalOptions,
    fault: Option<WalFaultHook>,
}

/// A journal position captured before a group commit: enough to
/// [`Wal::rewind`](Wal) the journal to exactly this point if the
/// commit cannot be made durable.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WalMark {
    seq: u64,
    bytes: u64,
    since_snapshot: u64,
    generation: u64,
}

impl WalMark {
    /// Sequence number of the last record covered by the mark.
    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }
}

impl Wal {
    /// Opens (or creates) the journal in `dir`, first recovering
    /// whatever durable state it holds. A torn tail is truncated at
    /// the last good record; the returned [`Recovery`] reports it.
    ///
    /// # Errors
    ///
    /// As [`recover`], plus I/O failures preparing the journal for
    /// appending.
    pub fn open(
        dir: &Path,
        infra: &Infrastructure,
        options: WalOptions,
    ) -> Result<(Self, Recovery), WalError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let (recovery, scan) = recover_impl(dir, infra)?;
        let path = dir.join(WAL_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| io_err(&path, e))?;
        let actual_len = file.metadata().map_err(|e| io_err(&path, e))?.len();
        if scan.good_len == 0 {
            // Missing, empty, or torn-header journal: start it fresh
            // on top of whatever the snapshot provided.
            file.set_len(0).map_err(|e| io_err(&path, e))?;
            file.seek(SeekFrom::Start(0)).map_err(|e| io_err(&path, e))?;
            file.write_all(&encode_header(infra.host_count(), recovery.seq))
                .map_err(|e| io_err(&path, e))?;
            file.sync_data().map_err(|e| io_err(&path, e))?;
            sync_dir(dir)?;
        } else if scan.good_len < actual_len {
            file.set_len(scan.good_len).map_err(|e| io_err(&path, e))?;
            file.sync_data().map_err(|e| io_err(&path, e))?;
        }
        let journal_bytes = file.seek(SeekFrom::End(0)).map_err(|e| io_err(&path, e))?;
        let mut wal = Wal {
            path,
            dir: dir.to_path_buf(),
            writer: io::BufWriter::new(file),
            host_count: infra.host_count(),
            seq: recovery.seq,
            snapshot_seq: recovery.snapshot_seq,
            since_snapshot: if scan.good_len == 0 { 0 } else { recovery.records_replayed },
            snapshots_taken: 0,
            journal_bytes,
            options,
            fault: None,
        };
        if scan.stale_prefix {
            // A previous compaction crashed between the snapshot rename
            // and the journal truncation. The recovered state *is* the
            // snapshot plus any post-snapshot tail, so re-snapshotting
            // it finishes the job: snapshot.json is rewritten at
            // `recovery.seq` and the stale journal prefix is truncated
            // behind it.
            wal.snapshot(&recovery.state, &recovery.quarantined)?;
            wal.snapshots_taken = 0;
        }
        Ok((wal, recovery))
    }

    /// Removes any journal and snapshot files in `dir` — the start of
    /// a deliberately fresh run over a previously used directory.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on anything but the files already missing.
    pub fn reset(dir: &Path) -> Result<(), WalError> {
        for name in [WAL_FILE, SNAPSHOT_FILE, SNAPSHOT_TMP] {
            let path = dir.join(name);
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(&path, e)),
            }
        }
        Ok(())
    }

    /// Appends one record, returning its sequence number.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] if the record could not be made durable per
    /// the configured [`SyncPolicy`].
    pub fn append(&mut self, op: WalOp, effects: &[Effect]) -> Result<u64, WalError> {
        let seq = self.seq + 1;
        let record = encode_record(seq, op, effects);
        if let Some(fault) = self.fault.as_ref().and_then(|h| h.draw(WalIoOp::Append, seq)) {
            match fault {
                WalFault::Error(kind) => return Err(io_err(&self.path, injected(kind, "append"))),
                WalFault::Torn => {
                    // Leave exactly what a crash mid-write leaves: a
                    // prefix of the record on disk. Recovery truncates
                    // it; so does `rewind`.
                    let half = record.len() / 2;
                    let _ = self.writer.write_all(&record[..half]);
                    let _ = self.writer.flush();
                    self.journal_bytes += half as u64;
                    return Err(io_err(
                        &self.path,
                        injected(io::ErrorKind::WriteZero, "torn append"),
                    ));
                }
            }
        }
        self.writer.write_all(&record).map_err(|e| io_err(&self.path, e))?;
        self.writer.flush().map_err(|e| io_err(&self.path, e))?;
        if self.options.sync == SyncPolicy::Always {
            self.writer.get_ref().sync_data().map_err(|e| io_err(&self.path, e))?;
        }
        self.seq = seq;
        self.since_snapshot += 1;
        self.journal_bytes += record.len() as u64;
        Ok(seq)
    }

    /// Installs (or clears) the fault-injection hook consulted before
    /// every append, sync, and snapshot.
    pub fn set_fault_hook(&mut self, hook: Option<WalFaultHook>) {
        self.fault = hook;
    }

    /// Captures the journal's current position for a later [`rewind`].
    ///
    /// [`rewind`]: Wal::rewind
    pub(crate) fn mark(&self) -> WalMark {
        WalMark {
            seq: self.seq,
            bytes: self.journal_bytes,
            since_snapshot: self.since_snapshot,
            generation: self.snapshots_taken,
        }
    }

    /// Whether [`rewind`](Self::rewind) to `mark` is possible — false
    /// once a snapshot compaction has run since the mark was taken.
    pub(crate) fn can_rewind(&self, mark: &WalMark) -> bool {
        mark.generation == self.snapshots_taken
    }

    /// Truncates the journal back to `mark`, erasing every record (and
    /// any torn residue) appended since. Used by the service to undo a
    /// group commit whose fsync failed under a rejecting durability
    /// policy, so the on-disk journal never claims commits that were
    /// never acknowledged.
    ///
    /// # Errors
    ///
    /// [`WalError::Snapshot`] if a snapshot compaction has run since
    /// the mark was taken (the marked bytes no longer exist);
    /// [`WalError::Io`] if the truncation itself fails.
    pub(crate) fn rewind(&mut self, mark: &WalMark) -> Result<(), WalError> {
        if mark.generation != self.snapshots_taken {
            return Err(WalError::Snapshot {
                path: self.path.clone(),
                reason: "cannot rewind across a snapshot compaction".into(),
            });
        }
        // A failed flush can strand half-written bytes inside the
        // BufWriter; replace the writer wholesale so that residue can
        // never reach disk after the truncation.
        let _ = self.writer.flush();
        if !self.writer.buffer().is_empty() {
            let file = self.writer.get_ref().try_clone().map_err(|e| io_err(&self.path, e))?;
            self.writer = io::BufWriter::new(file);
        }
        let file = self.writer.get_mut();
        file.set_len(mark.bytes).map_err(|e| io_err(&self.path, e))?;
        file.seek(SeekFrom::Start(mark.bytes)).map_err(|e| io_err(&self.path, e))?;
        file.sync_data().map_err(|e| io_err(&self.path, e))?;
        self.seq = mark.seq;
        self.since_snapshot = mark.since_snapshot;
        self.journal_bytes = mark.bytes;
        Ok(())
    }

    /// Whether the automatic snapshot cadence is due.
    #[must_use]
    pub fn should_snapshot(&self) -> bool {
        self.options.snapshot_every > 0 && self.since_snapshot >= self.options.snapshot_every
    }

    /// Snapshots `state` + `quarantined` and compacts the journal
    /// behind it: the snapshot is written to a temp file, fsynced,
    /// renamed into place and made durable with a directory fsync,
    /// then the journal is truncated to a fresh header based at the
    /// snapshot's sequence number. A crash anywhere in that sequence
    /// recovers cleanly (see the module docs on the compaction crash
    /// window).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] / [`WalError::Snapshot`] on serialization or
    /// disk failure; [`WalError::HostCountMismatch`] if `state` does
    /// not belong to the journal's infrastructure.
    pub fn snapshot(
        &mut self,
        state: &CapacityState,
        quarantined: &[HostId],
    ) -> Result<(), WalError> {
        if state.host_count() != self.host_count {
            return Err(WalError::HostCountMismatch {
                expected: self.host_count,
                found: state.host_count(),
            });
        }
        if let Some(fault) = self.fault.as_ref().and_then(|h| h.draw(WalIoOp::Snapshot, self.seq)) {
            let kind = match fault {
                WalFault::Error(kind) => kind,
                WalFault::Torn => io::ErrorKind::WriteZero,
            };
            return Err(io_err(&self.path, injected(kind, "snapshot")));
        }
        // Make the journal durable first: the snapshot must never be
        // *ahead* of the journal it replaces.
        self.writer.flush().map_err(|e| io_err(&self.path, e))?;
        self.writer.get_ref().sync_data().map_err(|e| io_err(&self.path, e))?;

        let mut hosts: Vec<u32> = quarantined.iter().map(|h| h.index() as u32).collect();
        hosts.sort_unstable();
        let doc = SnapshotDoc {
            seq: self.seq,
            host_count: self.host_count,
            state: state.clone(),
            quarantined: hosts,
        };
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let tmp_path = self.dir.join(SNAPSHOT_TMP);
        let text = serde_json::to_string(&doc)
            .map_err(|e| WalError::Snapshot { path: snap_path.clone(), reason: e.to_string() })?;
        let bytes = text.into_bytes();
        {
            let mut tmp = File::create(&tmp_path).map_err(|e| io_err(&tmp_path, e))?;
            tmp.write_all(&bytes).map_err(|e| io_err(&tmp_path, e))?;
            tmp.sync_data().map_err(|e| io_err(&tmp_path, e))?;
        }
        fs::rename(&tmp_path, &snap_path).map_err(|e| io_err(&snap_path, e))?;
        // Make the rename durable *before* touching the journal: the
        // truncation must never reach disk ahead of the snapshot it
        // depends on. (A crash after the rename but before the
        // truncation is tolerated by recovery — see the module docs.)
        sync_dir(&self.dir)?;

        // Compact: everything up to `seq` now lives in the snapshot.
        let file = self.writer.get_mut();
        file.set_len(0).map_err(|e| io_err(&self.path, e))?;
        file.seek(SeekFrom::Start(0)).map_err(|e| io_err(&self.path, e))?;
        file.write_all(&encode_header(self.host_count, self.seq))
            .map_err(|e| io_err(&self.path, e))?;
        file.sync_data().map_err(|e| io_err(&self.path, e))?;
        sync_dir(&self.dir)?;
        self.snapshot_seq = Some(self.seq);
        self.since_snapshot = 0;
        self.snapshots_taken += 1;
        self.journal_bytes = HEADER_LEN as u64;
        Ok(())
    }

    /// Flushes and fsyncs the journal.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on disk failure.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.writer.flush().map_err(|e| io_err(&self.path, e))?;
        if let Some(fault) = self.fault.as_ref().and_then(|h| h.draw(WalIoOp::Sync, self.seq)) {
            let kind = match fault {
                WalFault::Error(kind) => kind,
                WalFault::Torn => io::ErrorKind::WriteZero,
            };
            return Err(io_err(&self.path, injected(kind, "fsync")));
        }
        self.writer.get_ref().sync_data().map_err(|e| io_err(&self.path, e))
    }

    /// Sequence number of the last appended record.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Sequence number the current snapshot covers, if any.
    #[must_use]
    pub fn snapshot_seq(&self) -> Option<u64> {
        self.snapshot_seq
    }

    /// Records appended since the last snapshot (or open).
    #[must_use]
    pub fn since_snapshot(&self) -> u64 {
        self.since_snapshot
    }

    /// Snapshots taken by this handle.
    #[must_use]
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// The directory this journal lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_datacenter::InfrastructureBuilder;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn infra(hosts_per_rack: usize) -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            hosts_per_rack,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ostro-wal-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn h(i: u32) -> HostId {
        HostId::from_index(i)
    }

    #[test]
    fn crc32_known_answer() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fresh_directory_recovers_to_idle_state() {
        let infra = infra(2);
        let dir = temp_dir("fresh");
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.state, CapacityState::new(&infra));
        assert_eq!(recovery.seq, 0);
        assert!(recovery.quarantined.is_empty());
        assert!(!recovery.truncated_tail);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_and_recover_round_trips_every_effect_kind() {
        let infra = infra(4);
        let dir = temp_dir("round-trip");
        let res = Resources::new(2, 4_096, 100);
        let effects: Vec<Vec<Effect>> = vec![
            vec![
                Effect::ReserveNode { host: h(0), resources: res },
                Effect::ReserveNode { host: h(1), resources: res },
                Effect::ReserveFlow { a: h(0), b: h(1), mbps: 250 },
            ],
            vec![
                Effect::ReleaseFlow { a: h(0), b: h(1), mbps: 250 },
                Effect::ReleaseNode { host: h(1), resources: res },
            ],
            vec![Effect::Quarantine { host: h(3) }],
            vec![Effect::Resync { host: h(2), used: Resources::new(1, 1_024, 10), instances: 1 }],
        ];
        let mut live = CapacityState::new(&infra);
        let mut q = vec![false; infra.host_count()];
        {
            let (mut wal, recovery) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
            assert_eq!(recovery.seq, 0);
            for (i, batch) in effects.iter().enumerate() {
                let seq = wal.append(WalOp::Commit, batch).unwrap();
                assert_eq!(seq, i as u64 + 1);
                for &e in batch {
                    apply_effect(&mut live, &mut q, &infra, e, seq).unwrap();
                }
            }
        }
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.state, live, "replayed books must equal the live books");
        assert_eq!(recovery.seq, 4);
        assert_eq!(recovery.records_replayed, 4);
        assert_eq!(recovery.quarantined, vec![h(3)]);
        assert!(!recovery.truncated_tail);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The satellite regression: a corrupt tail recovers to the last
    /// good record instead of erroring out the whole replay — for both
    /// a truncated final record and a bit-flipped one — and `Wal::open`
    /// truncates the tail so the journal is appendable again.
    #[test]
    fn corrupt_tail_recovers_to_last_good_record() {
        let infra = infra(2);
        let res = Resources::new(1, 1_024, 10);
        for (tag, mutilate) in [
            ("cut", (|bytes: &mut Vec<u8>| bytes.truncate(bytes.len() - 3)) as fn(&mut Vec<u8>)),
            ("flip", |bytes: &mut Vec<u8>| {
                let last = bytes.len() - 1;
                bytes[last] ^= 0x40;
            }),
        ] {
            let dir = temp_dir(&format!("torn-{tag}"));
            let mut good_state = CapacityState::new(&infra);
            good_state.reserve_node(h(0), res).unwrap();
            good_state.reserve_node(h(1), res).unwrap();
            {
                let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
                for host in [h(0), h(1), h(2)] {
                    wal.append(WalOp::ReserveNode, &[Effect::ReserveNode { host, resources: res }])
                        .unwrap();
                }
            }
            let path = dir.join(WAL_FILE);
            let mut bytes = fs::read(&path).unwrap();
            mutilate(&mut bytes);
            fs::write(&path, &bytes).unwrap();

            let recovery = recover(&dir, &infra).unwrap();
            assert!(recovery.truncated_tail, "{tag}: tail must be flagged");
            assert_eq!(recovery.records_replayed, 2, "{tag}");
            assert_eq!(recovery.seq, 2, "{tag}");
            assert_eq!(recovery.state, good_state, "{tag}");

            // Reopening truncates the tail and restores appendability.
            let (mut wal, reopened) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
            assert!(reopened.truncated_tail, "{tag}");
            assert_eq!(wal.seq(), 2, "{tag}");
            wal.append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(3), resources: res }])
                .unwrap();
            drop(wal);
            let healed = recover(&dir, &infra).unwrap();
            assert!(!healed.truncated_tail, "{tag}: truncation must heal the journal");
            assert_eq!(healed.seq, 3, "{tag}");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn fault_hook_fails_the_operation_and_clears_cleanly() {
        let infra = infra(2);
        let dir = temp_dir("fault-hook");
        let res = Resources::new(1, 1_024, 10);
        let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
        wal.set_fault_hook(Some(WalFaultHook::new(|op, _seq| match op {
            WalIoOp::Append => Some(WalFault::Error(io::ErrorKind::StorageFull)),
            _ => None,
        })));
        let err = wal
            .append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(0), resources: res }])
            .unwrap_err();
        assert!(matches!(err, WalError::Io { .. }), "got {err:?}");
        assert_eq!(wal.seq(), 0, "a failed append must not advance the sequence");
        // The failed append left no bytes behind: the journal still
        // accepts and recovers records once the fault clears.
        wal.set_fault_hook(None);
        wal.append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(0), resources: res }])
            .unwrap();
        drop(wal);
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.seq, 1);
        assert!(!recovery.truncated_tail);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewind_erases_everything_after_the_mark() {
        let infra = infra(2);
        let dir = temp_dir("rewind");
        let res = Resources::new(1, 1_024, 10);
        let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
        wal.append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(0), resources: res }])
            .unwrap();
        let mark = wal.mark();
        assert_eq!(mark.seq(), 1);
        wal.append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(1), resources: res }])
            .unwrap();
        wal.append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(2), resources: res }])
            .unwrap();
        wal.rewind(&mark).unwrap();
        assert_eq!(wal.seq(), 1);
        // The erased sequence numbers are reusable — the journal is
        // exactly as it was at the mark.
        let seq = wal
            .append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(3), resources: res }])
            .unwrap();
        assert_eq!(seq, 2);
        drop(wal);
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.seq, 2);
        assert_eq!(recovery.records_replayed, 2);
        let mut expected = CapacityState::new(&infra);
        expected.reserve_node(h(0), res).unwrap();
        expected.reserve_node(h(3), res).unwrap();
        assert_eq!(recovery.state, expected, "rewound records must not replay");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewind_truncates_torn_residue() {
        let infra = infra(2);
        let dir = temp_dir("rewind-torn");
        let res = Resources::new(1, 1_024, 10);
        let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
        wal.append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(0), resources: res }])
            .unwrap();
        let mark = wal.mark();
        wal.set_fault_hook(Some(WalFaultHook::new(|op, _| {
            (op == WalIoOp::Append).then_some(WalFault::Torn)
        })));
        let err = wal
            .append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(1), resources: res }])
            .unwrap_err();
        assert!(matches!(err, WalError::Io { .. }), "got {err:?}");
        wal.set_fault_hook(None);
        wal.rewind(&mark).unwrap();
        drop(wal);
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.seq, 1);
        assert!(!recovery.truncated_tail, "rewind must have erased the torn bytes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewind_refuses_to_cross_a_snapshot_compaction() {
        let infra = infra(2);
        let dir = temp_dir("rewind-snap");
        let res = Resources::new(1, 1_024, 10);
        let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
        let mark = wal.mark();
        let mut state = CapacityState::new(&infra);
        state.reserve_node(h(0), res).unwrap();
        wal.append(WalOp::ReserveNode, &[Effect::ReserveNode { host: h(0), resources: res }])
            .unwrap();
        wal.snapshot(&state, &[]).unwrap();
        let err = wal.rewind(&mark).unwrap_err();
        assert!(matches!(err, WalError::Snapshot { .. }), "got {err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_header_and_wrong_infrastructure_surface_typed_errors() {
        let infra = infra(2);
        let dir = temp_dir("badheader");
        {
            let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
            wal.append(WalOp::Quarantine, &[Effect::Quarantine { host: h(0) }]).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let mut bytes = fs::read(&path).unwrap();
        bytes[0] = b'X';
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(recover(&dir, &infra), Err(WalError::Corrupt { .. })));

        bytes[0] = b'O';
        fs::write(&path, &bytes).unwrap();
        let bigger = self::infra(4);
        assert!(matches!(
            recover(&dir, &bigger),
            Err(WalError::HostCountMismatch { expected: 8, found: 4 })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_the_journal_and_preserves_recovery() {
        let infra = infra(4);
        let dir = temp_dir("compact");
        let res = Resources::new(1, 512, 5);
        let mut live = CapacityState::new(&infra);
        let mut q = vec![false; infra.host_count()];
        {
            let (mut wal, _) =
                Wal::open(&dir, &infra, WalOptions { snapshot_every: 4, ..WalOptions::default() })
                    .unwrap();
            for i in 0..10u32 {
                let host = h(i % infra.host_count() as u32);
                let effect = Effect::ReserveNode { host, resources: res };
                let seq = wal.append(WalOp::ReserveNode, &[effect]).unwrap();
                apply_effect(&mut live, &mut q, &infra, effect, seq).unwrap();
                if wal.should_snapshot() {
                    let quarantined = collect_quarantined(&q);
                    wal.snapshot(&live, &quarantined).unwrap();
                }
            }
            assert_eq!(wal.snapshots_taken(), 2);
            assert_eq!(wal.snapshot_seq(), Some(8));
            assert_eq!(wal.since_snapshot(), 2);
        }
        let journal_len = fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        let two_records = 2 * (8 + 13 + MAX_EFFECT_LEN) as u64;
        assert!(
            journal_len <= HEADER_LEN as u64 + two_records,
            "journal must hold only post-snapshot records, got {journal_len} bytes"
        );
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.state, live);
        assert_eq!(recovery.seq, 10);
        assert_eq!(recovery.snapshot_seq, Some(8));
        assert_eq!(recovery.records_replayed, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The compaction crash window: a kill between the snapshot rename
    /// and the journal truncation leaves `snapshot.seq` ahead of the
    /// journal's `base_seq`. Recovery must skip the already-folded
    /// prefix instead of refusing the whole directory, and `Wal::open`
    /// must finish the interrupted compaction.
    #[test]
    fn crash_between_snapshot_rename_and_truncation_recovers() {
        let infra = infra(4);
        let dir = temp_dir("snapcrash");
        let res = Resources::new(1, 512, 5);
        let mut live = CapacityState::new(&infra);
        let mut q = vec![false; infra.host_count()];
        {
            let (mut wal, _) =
                Wal::open(&dir, &infra, WalOptions { snapshot_every: 0, ..WalOptions::default() })
                    .unwrap();
            for i in 0..6u32 {
                let host = h(i % infra.host_count() as u32);
                let effect = Effect::ReserveNode { host, resources: res };
                let seq = wal.append(WalOp::ReserveNode, &[effect]).unwrap();
                apply_effect(&mut live, &mut q, &infra, effect, seq).unwrap();
            }
        }
        // Simulate the crash: capture the pre-compaction journal, take
        // the snapshot (which truncates the journal), then put the
        // stale journal back as if the truncation never reached disk.
        let pre_compaction = fs::read(dir.join(WAL_FILE)).unwrap();
        {
            let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
            wal.snapshot(&live, &collect_quarantined(&q)).unwrap();
        }
        fs::write(dir.join(WAL_FILE), &pre_compaction).unwrap();

        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.state, live, "stale prefix must not double-apply");
        assert_eq!(recovery.seq, 6);
        assert_eq!(recovery.snapshot_seq, Some(6));
        assert_eq!(recovery.records_replayed, 0);
        assert_eq!(recovery.records_skipped, 6);
        assert!(!recovery.truncated_tail);

        // Reopening completes the compaction and stays appendable.
        let (mut wal, reopened) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
        assert_eq!(reopened.records_skipped, 6);
        assert_eq!(wal.seq(), 6);
        let effect = Effect::ReserveNode { host: h(0), resources: res };
        let seq = wal.append(WalOp::ReserveNode, &[effect]).unwrap();
        assert_eq!(seq, 7);
        apply_effect(&mut live, &mut q, &infra, effect, seq).unwrap();
        drop(wal);
        let healed = recover(&dir, &infra).unwrap();
        assert_eq!(healed.state, live);
        assert_eq!(healed.seq, 7);
        assert_eq!(healed.records_skipped, 0, "open must truncate the stale prefix");
        assert_eq!(healed.records_replayed, 1);
        assert_eq!(healed.snapshot_seq, Some(6));
        let _ = fs::remove_dir_all(&dir);
    }

    /// A torn tail *behind* the stale prefix (the crash that
    /// interrupted compaction also tore the last pre-snapshot record)
    /// still recovers: the snapshot covers everything the tail lost.
    #[test]
    fn stale_prefix_with_torn_tail_recovers_to_snapshot() {
        let infra = infra(2);
        let dir = temp_dir("snapcrash-torn");
        let res = Resources::new(1, 512, 5);
        let mut live = CapacityState::new(&infra);
        let mut q = vec![false; infra.host_count()];
        {
            let (mut wal, _) =
                Wal::open(&dir, &infra, WalOptions { snapshot_every: 0, ..WalOptions::default() })
                    .unwrap();
            for i in 0..4u32 {
                let effect = Effect::ReserveNode { host: h(i), resources: res };
                let seq = wal.append(WalOp::ReserveNode, &[effect]).unwrap();
                apply_effect(&mut live, &mut q, &infra, effect, seq).unwrap();
            }
        }
        let mut pre_compaction = fs::read(dir.join(WAL_FILE)).unwrap();
        pre_compaction.truncate(pre_compaction.len() - 3);
        {
            let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
            wal.snapshot(&live, &collect_quarantined(&q)).unwrap();
        }
        fs::write(dir.join(WAL_FILE), &pre_compaction).unwrap();

        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.state, live, "snapshot must cover the torn prefix");
        assert_eq!(recovery.seq, 4);
        assert_eq!(recovery.records_skipped, 3);
        assert!(recovery.truncated_tail);
        let _ = fs::remove_dir_all(&dir);
    }

    /// The converse window is unrecoverable by construction — a journal
    /// based *ahead* of the durable snapshot means history is gone —
    /// and must surface as a typed corruption, not a silent reset.
    #[test]
    fn journal_ahead_of_snapshot_is_a_hard_error() {
        let infra = infra(2);
        let dir = temp_dir("ahead");
        let res = Resources::new(1, 512, 5);
        {
            let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
            for i in 0..3u32 {
                wal.append(
                    WalOp::ReserveNode,
                    &[Effect::ReserveNode { host: h(i), resources: res }],
                )
                .unwrap();
            }
            let mut live = CapacityState::new(&infra);
            let mut q = vec![false; infra.host_count()];
            for i in 0..3u32 {
                apply_effect(
                    &mut live,
                    &mut q,
                    &infra,
                    Effect::ReserveNode { host: h(i), resources: res },
                    u64::from(i) + 1,
                )
                .unwrap();
            }
            wal.snapshot(&live, &[]).unwrap();
        }
        fs::remove_file(dir.join(SNAPSHOT_FILE)).unwrap();
        assert!(matches!(recover(&dir, &infra), Err(WalError::Corrupt { .. })));
        let _ = fs::remove_dir_all(&dir);
    }

    /// The satellite property test at the journal level: for a seeded
    /// random mutation sequence, `snapshot + replay(suffix)` ≡
    /// `replay(full journal)` ≡ the live books, including the
    /// quarantine set, across several seeds and cadences.
    #[test]
    fn snapshot_plus_suffix_equals_full_replay_equals_live() {
        let infra = infra(4);
        let hosts = infra.host_count() as u32;
        for seed in 0u64..4 {
            let dir_snap = temp_dir(&format!("prop-snap-{seed}"));
            let dir_full = temp_dir(&format!("prop-full-{seed}"));
            let mut rng = SmallRng::seed_from_u64(0xD00D_1E55 ^ seed);
            let mut live = CapacityState::new(&infra);
            let mut q = vec![false; infra.host_count()];
            let (mut wal_snap, _) = Wal::open(
                &dir_snap,
                &infra,
                WalOptions { snapshot_every: 1 + seed, ..WalOptions::default() },
            )
            .unwrap();
            let (mut wal_full, _) = Wal::open(
                &dir_full,
                &infra,
                WalOptions { snapshot_every: 0, ..WalOptions::default() },
            )
            .unwrap();
            // Shadow multiset of live reservations so releases are
            // always legal.
            let mut reserved: Vec<(HostId, Resources)> = Vec::new();
            for _ in 0..60 {
                let host = h(rng.gen_range(0..hosts));
                let effect = match rng.gen_range(0u32..10) {
                    0..=5 => {
                        let res =
                            Resources::new(rng.gen_range(1..3), 512 * rng.gen_range(1..4), 10);
                        if live.available(host).vcpus < res.vcpus || q[host.index()] {
                            continue;
                        }
                        reserved.push((host, res));
                        Effect::ReserveNode { host, resources: res }
                    }
                    6..=7 if !reserved.is_empty() => {
                        let idx = rng.gen_range(0..reserved.len());
                        let (host, res) = reserved.swap_remove(idx);
                        Effect::ReleaseNode { host, resources: res }
                    }
                    8 => {
                        // Quarantining a host with live reservations
                        // would make later releases of them illegal in
                        // this simple generator; quarantine idle hosts.
                        if reserved.iter().any(|&(rh, _)| rh == host) {
                            continue;
                        }
                        Effect::Quarantine { host }
                    }
                    _ => {
                        if q[host.index()] {
                            continue;
                        }
                        let used = Resources::new(1, 1_024, 5);
                        reserved.retain(|&(rh, _)| rh != host);
                        reserved.push((host, used));
                        Effect::Resync { host, used, instances: 1 }
                    }
                };
                let seq = wal_snap.append(WalOp::Commit, &[effect]).unwrap();
                wal_full.append(WalOp::Commit, &[effect]).unwrap();
                apply_effect(&mut live, &mut q, &infra, effect, seq).unwrap();
                if wal_snap.should_snapshot() {
                    wal_snap.snapshot(&live, &collect_quarantined(&q)).unwrap();
                }
            }
            assert!(wal_snap.snapshots_taken() > 0, "seed {seed}: cadence never fired");
            drop(wal_snap);
            drop(wal_full);
            let via_snapshot = recover(&dir_snap, &infra).unwrap();
            let via_full = recover(&dir_full, &infra).unwrap();
            assert_eq!(via_snapshot.state, live, "seed {seed}: snapshot+suffix vs live");
            assert_eq!(via_full.state, live, "seed {seed}: full replay vs live");
            assert_eq!(via_snapshot.quarantined, via_full.quarantined, "seed {seed}");
            assert_eq!(via_snapshot.quarantined, collect_quarantined(&q), "seed {seed}");
            assert_eq!(via_snapshot.seq, via_full.seq, "seed {seed}");
            let _ = fs::remove_dir_all(&dir_snap);
            let _ = fs::remove_dir_all(&dir_full);
        }
    }

    #[test]
    fn reset_clears_the_directory() {
        let infra = infra(2);
        let dir = temp_dir("reset");
        {
            let (mut wal, _) = Wal::open(&dir, &infra, WalOptions::default()).unwrap();
            wal.append(WalOp::Quarantine, &[Effect::Quarantine { host: h(0) }]).unwrap();
            wal.snapshot(&CapacityState::new(&infra), &[h(0)]).unwrap();
        }
        Wal::reset(&dir).unwrap();
        assert!(!dir.join(WAL_FILE).exists());
        assert!(!dir.join(SNAPSHOT_FILE).exists());
        let recovery = recover(&dir, &infra).unwrap();
        assert_eq!(recovery.seq, 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
