use std::collections::HashSet;
use std::time::Duration;

use ostro_datacenter::HostId;
use ostro_model::{Bandwidth, NodeId};
use serde::{Deserialize, Serialize};

/// A complete mapping of every topology node to a host.
///
/// Index `i` holds the host of the node with id `i`; placements are
/// only meaningful together with the topology they were computed for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    assignments: Vec<HostId>,
}

impl Placement {
    /// Wraps a dense per-node host assignment.
    #[must_use]
    pub fn new(assignments: Vec<HostId>) -> Self {
        Placement { assignments }
    }

    /// The host assigned to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this placement.
    #[must_use]
    pub fn host_of(&self, node: NodeId) -> HostId {
        self.assignments[node.index()]
    }

    /// The raw per-node assignment vector.
    #[must_use]
    pub fn assignments(&self) -> &[HostId] {
        &self.assignments
    }

    /// Iterates `(node, host)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, HostId)> + '_ {
        self.assignments.iter().enumerate().map(|(i, &h)| (NodeId::from_index(i as u32), h))
    }

    /// The number of distinct hosts this placement touches.
    #[must_use]
    pub fn distinct_hosts(&self) -> usize {
        self.assignments.iter().collect::<HashSet<_>>().len()
    }

    /// Nodes assigned to `host`.
    #[must_use]
    pub fn nodes_on(&self, host: HostId) -> Vec<NodeId> {
        self.iter().filter(|&(_, h)| h == host).map(|(n, _)| n).collect()
    }
}

/// Counters describing how hard the search worked; useful for the
/// paper's scalability analysis and for regression tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Search paths popped and expanded (A\* variants) or node steps
    /// taken (greedy variants).
    pub expanded: u64,
    /// Candidate paths generated.
    pub generated: u64,
    /// Paths discarded because their utility met or exceeded the
    /// current upper bound (Alg. 2, line 11).
    pub pruned_by_bound: u64,
    /// Paths discarded by DBA\*'s probabilistic pruning.
    pub pruned_probabilistically: u64,
    /// Paths skipped because an identical placement was already closed
    /// (Alg. 2, line 10).
    pub deduplicated: u64,
    /// Paths never generated thanks to diversity-zone symmetry
    /// reduction (§III-B3).
    pub symmetry_skipped: u64,
    /// How many times the embedded greedy search ran to (re)establish
    /// the upper bound (Alg. 2, lines 3 and 17).
    pub eg_runs: u64,
    /// Heuristic lower-bound resolutions requested (one per scored
    /// candidate host, however the bound was obtained).
    pub heuristic_evals: u64,
    /// Hosts examined by the candidate sweep, across every expansion
    /// (the denominator for the vectorized-filtering counters below).
    /// Absent in pre-SoA stats dumps.
    #[serde(default)]
    pub candidates_scanned: u64,
    /// Of those, hosts rejected by the branch-free capacity/NIC column
    /// sweep (the SIMD kernel when the `simd` feature is on, its scalar
    /// autovectorized fallback otherwise) before any per-host hash
    /// probing ran.
    #[serde(default)]
    pub candidates_pruned_simd: u64,
    /// Of those, resolutions served from the per-search memo cache
    /// (including hosts sharing a group signature within one scoring
    /// round). Absent in pre-memoization stats dumps.
    #[serde(default)]
    pub bound_cache_hits: u64,
    /// Of those, resolutions that actually ran `lower_bound_mbps`.
    #[serde(default)]
    pub bound_cache_misses: u64,
    /// Session-mode only: resolutions served by a cache entry written
    /// by an *earlier* request of the same
    /// [`SchedulerSession`](crate::session::SchedulerSession) — the
    /// cross-request reuse the session exists for.
    #[serde(default)]
    pub session_cache_hits: u64,
    /// Session-mode only: distinct bound keys this request had to
    /// compute fresh (in-request duplicates of a fresh key count as
    /// `bound_cache_hits`, as in per-request mode).
    #[serde(default)]
    pub session_cache_misses: u64,
    /// Session-mode only: cache entries discarded by generation
    /// rotation while serving this request.
    #[serde(default)]
    pub session_cache_evictions: u64,
    /// Session-mode only: hosts re-resolved from the dirty-host
    /// journal before this request solved (hosts touched by commits,
    /// releases, deploys, or evacuations since the previous request).
    #[serde(default)]
    pub session_dirty_hosts: u64,
    /// Session-mode only: cumulative orphaned reservations repaired by
    /// anti-entropy sweeps over the session's lifetime so far.
    #[serde(default)]
    pub reconcile_orphaned: u64,
    /// Session-mode only: cumulative leaked releases repaired.
    #[serde(default)]
    pub reconcile_leaked: u64,
    /// Session-mode only: cumulative stale-race ghosts repaired.
    #[serde(default)]
    pub reconcile_ghosts: u64,
    /// Session-mode only: cumulative atomic tenant migrations applied
    /// by the maintenance plane (defragmentation sweeps and proactive
    /// drains) over the session's lifetime so far.
    #[serde(default)]
    pub maintenance_migrations: u64,
    /// Service-mode only: optimistic commits of this request that
    /// failed validation (a concurrent commit touched a planned host
    /// between snapshot and commit, or saturated a shared link).
    #[serde(default)]
    pub commit_conflicts: u64,
    /// Service-mode only: how many times this request was re-planned
    /// against a fresh snapshot after losing a commit race (bounded by
    /// the service's retry budget; the last resort plans serialized
    /// under the commit lock and counts here too).
    #[serde(default)]
    pub replans: u64,
    /// Sharded mode only: pods scored by the coarse digest stage
    /// before exact search (the whole fleet, once per request).
    #[serde(default)]
    pub pods_scanned: u64,
    /// Sharded mode only: pods the coarse stage dropped before exact
    /// search (everything outside the top-K candidate set).
    #[serde(default)]
    pub pods_pruned: u64,
    /// Sharded mode only: how many times this request fell back to the
    /// plain unsharded search — pins present, K covering every pod, a
    /// fleet without a contiguous pod layout, or every candidate pod
    /// infeasible.
    #[serde(default)]
    pub shard_fallbacks: u64,
    /// `true` if a deadline-bounded run hit its deadline and returned
    /// the best bound found so far.
    pub deadline_hit: bool,
    /// Service-mode only: `true` if overload degraded this request down
    /// the engine ladder (a capped or greedy-floor search solved it
    /// instead of the algorithm the caller asked for).
    #[serde(default)]
    pub degraded: bool,
}

/// The result of one placement request: the decision plus the resource
/// and search metrics the paper reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementOutcome {
    /// The node → host decision.
    pub placement: Placement,
    /// Normalized objective value u ∈ [0, 1] (lower is better).
    pub objective: f64,
    /// Total bandwidth reserved across all physical links for this
    /// application (the tables' "Bandwidth" row).
    pub reserved_bandwidth: Bandwidth,
    /// Previously idle hosts activated by this placement (the tables'
    /// "New active hosts" row).
    pub new_active_hosts: usize,
    /// Distinct hosts the application occupies.
    pub hosts_used: usize,
    /// Wall-clock time the algorithm took.
    pub elapsed: Duration,
    /// Search-effort counters.
    pub stats: SearchStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(i: u32) -> HostId {
        HostId::from_index(i)
    }

    #[test]
    fn lookup_and_iteration() {
        let p = Placement::new(vec![h(3), h(1), h(3)]);
        assert_eq!(p.host_of(NodeId::from_index(0)), h(3));
        assert_eq!(p.assignments().len(), 3);
        assert_eq!(p.distinct_hosts(), 2);
        let pairs: Vec<_> = p.iter().collect();
        assert_eq!(pairs[1], (NodeId::from_index(1), h(1)));
        assert_eq!(p.nodes_on(h(3)), vec![NodeId::from_index(0), NodeId::from_index(2)]);
        assert!(p.nodes_on(h(9)).is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let p = Placement::new(vec![h(0), h(5)]);
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Placement>(&json).unwrap(), p);
    }
}
