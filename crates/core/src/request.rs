use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::objective::ObjectiveWeights;

/// Which placement algorithm to run.
///
/// The five algorithms match the paper's evaluation head-to-head:
/// the two single-objective greedy baselines, the estimate-based
/// greedy, and the two A\*-based searches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Algorithm {
    /// `EGC` — compute bin-packing baseline: always picks the feasible
    /// host with the smallest remaining compute capacity, ignoring
    /// communication links.
    GreedyCompute,
    /// `EGBW` — bandwidth-only baseline: places linked nodes as close
    /// together as possible, preferring hosts with the most available
    /// bandwidth, ignoring host consolidation.
    GreedyBandwidth,
    /// `EG` — the estimate-based greedy search of Algorithm 1, guided
    /// by the admissible heuristic lower bound over both objectives.
    Greedy,
    /// `BA*` — the bounded A\* search of Algorithm 2: explores all
    /// branches, bounded by repeatedly running EG for an upper bound.
    BoundedAStar,
    /// `DBA*` — deadline-bounded A\* (§III-C): BA\* plus progressive
    /// probabilistic pruning so a decision is produced within the
    /// deadline.
    DeadlineBoundedAStar {
        /// The wall-clock budget T.
        deadline: Duration,
    },
}

impl Algorithm {
    /// The paper's abbreviation for this algorithm.
    #[must_use]
    pub const fn abbreviation(&self) -> &'static str {
        match self {
            Algorithm::GreedyCompute => "EGC",
            Algorithm::GreedyBandwidth => "EGBW",
            Algorithm::Greedy => "EG",
            Algorithm::BoundedAStar => "BA*",
            Algorithm::DeadlineBoundedAStar { .. } => "DBA*",
        }
    }
}

/// All knobs of one placement request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRequest {
    /// The algorithm to run. Defaults to [`Algorithm::Greedy`].
    pub algorithm: Algorithm,
    /// Objective weights θbw/θc. Defaults to the paper's simulation
    /// setting (0.6/0.4).
    pub weights: ObjectiveWeights,
    /// Seed for DBA\*'s pruning randomness; fixed for reproducibility.
    pub seed: u64,
    /// Evaluate candidate hosts on multiple threads (the paper's EG
    /// "computes the utility in parallel").
    pub parallel: bool,
    /// Enable §III-B3's diversity-zone symmetry reduction: nodes that
    /// share a zone, have identical requirements, and have identical
    /// link fingerprints are treated as interchangeable.
    pub zone_symmetry: bool,
    /// Use the estimate-based heuristic lower bound when scoring
    /// candidates (§III-A2). Disabling it degrades EG to a myopic
    /// accumulated-utility greedy — the ablation of the paper's core
    /// idea.
    pub use_estimate: bool,
    /// Safety cap on A\* path expansions (0 = unlimited). BA\* on an
    /// adversarial instance is exponential; this turns a hang into a
    /// best-bound answer.
    pub max_expansions: u64,
    /// Candidate-scoring participants (worker threads + the calling
    /// thread) when [`parallel`](Self::parallel) is on. `0` (the
    /// default) resolves to `std::thread::available_parallelism`.
    #[serde(default)]
    pub score_threads: usize,
    /// Memoize heuristic lower bounds across expansions, keyed by
    /// (node, placement signature, host-group signature); rollback
    /// restores the keys, so entries stay valid across backtracking.
    /// Disabling recomputes every bound from scratch (the throughput
    /// benchmark's baseline).
    #[serde(default = "default_memoize_bounds")]
    pub memoize_bounds: bool,
    /// Cache budget, in bytes, for one parallel-scoring chunk's working
    /// set; chunk length is capped to fit it. `0` (the default) uses a
    /// conservative L2-sized budget. Purely a locality lever — chunk
    /// geometry never changes results.
    #[serde(default)]
    pub chunk_bytes: usize,
    /// Virtual microseconds charged per deadline-clock poll in DBA\*.
    /// `0` (the default) reads the wall clock. Non-zero replaces it
    /// with a deterministic tick clock — the same simulated-tick idea
    /// as the deploy retry loop — so every deadline decision (stop,
    /// prune-rate growth, refresh budgeting) becomes a pure function
    /// of the request. Crash-replay bit-identity tests use this to
    /// cover DBA\*; production keeps the wall clock.
    #[serde(default)]
    pub virtual_tick_us: u64,
    /// Two-level sharded placement: score per-pod digests against the
    /// request's footprint, then run the exact search inside the top-K
    /// candidate pods only (in parallel when
    /// [`parallel`](Self::parallel) allows). Off by default — the
    /// unsharded search sweeps the whole fleet. Requests that cannot
    /// shard (pinned nodes, a single or non-contiguous pod layout, or
    /// K covering every pod) fall back to the unsharded search, which
    /// is bit-identical to `shard: false`.
    #[serde(default)]
    pub shard: bool,
    /// Candidate pods the coarse stage keeps for exact search when
    /// [`shard`](Self::shard) is on. `0` (the default) resolves to
    /// [`DEFAULT_PODS_CONSIDERED`]; any value covering every pod
    /// disables sharding for the request (trivially bit-identical).
    #[serde(default)]
    pub pods_considered: usize,
}

/// Candidate pods kept by the coarse stage when
/// [`PlacementRequest::pods_considered`] is 0.
pub const DEFAULT_PODS_CONSIDERED: usize = 4;

fn default_memoize_bounds() -> bool {
    true
}

impl Default for PlacementRequest {
    fn default() -> Self {
        PlacementRequest {
            algorithm: Algorithm::Greedy,
            weights: ObjectiveWeights::default(),
            seed: 0xB0DE,
            parallel: true,
            zone_symmetry: true,
            use_estimate: true,
            max_expansions: 0,
            score_threads: 0,
            memoize_bounds: true,
            chunk_bytes: 0,
            virtual_tick_us: 0,
            shard: false,
            pods_considered: 0,
        }
    }
}

impl PlacementRequest {
    /// A request running `algorithm` with otherwise default knobs.
    #[must_use]
    pub fn with_algorithm(algorithm: Algorithm) -> Self {
        PlacementRequest { algorithm, ..PlacementRequest::default() }
    }

    /// Sets the objective weights, builder-style.
    #[must_use]
    pub fn weights(mut self, weights: ObjectiveWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the RNG seed, builder-style.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scoring participant count, builder-style (0 = auto).
    #[must_use]
    pub fn score_threads(mut self, threads: usize) -> Self {
        self.score_threads = threads;
        self
    }

    /// Sets the per-chunk cache budget, builder-style (0 = default).
    #[must_use]
    pub fn chunk_bytes(mut self, bytes: usize) -> Self {
        self.chunk_bytes = bytes;
        self
    }

    /// Sets the virtual deadline-clock tick, builder-style (0 = wall
    /// clock).
    #[must_use]
    pub fn virtual_tick_us(mut self, us: u64) -> Self {
        self.virtual_tick_us = us;
        self
    }

    /// Enables or disables two-level sharded placement, builder-style.
    #[must_use]
    pub fn shard(mut self, shard: bool) -> Self {
        self.shard = shard;
        self
    }

    /// Sets how many candidate pods the coarse stage keeps,
    /// builder-style (0 = [`DEFAULT_PODS_CONSIDERED`]).
    #[must_use]
    pub fn pods_considered(mut self, pods: usize) -> Self {
        self.pods_considered = pods;
        self
    }

    /// First step down the engine ladder under overload: caps the A\*
    /// variants' expansion budget at `cap` (tightening an existing
    /// cap, never loosening one). The greedy engines are already the
    /// floor and are untouched. Returns whether anything changed.
    pub fn cap_search(&mut self, cap: u64) -> bool {
        if cap == 0 {
            return false;
        }
        match self.algorithm {
            Algorithm::BoundedAStar | Algorithm::DeadlineBoundedAStar { .. } => {
                let capped = match self.max_expansions {
                    0 => cap,
                    n => n.min(cap),
                };
                if capped == self.max_expansions {
                    return false;
                }
                self.max_expansions = capped;
                true
            }
            _ => false,
        }
    }

    /// Last step down the engine ladder: replaces the A\* variants with
    /// the greedy EG engine (the cheapest full-objective search — the
    /// single-objective baselines are evaluation-only, not a service
    /// tier). Returns whether anything changed.
    pub fn floor_search(&mut self) -> bool {
        match self.algorithm {
            Algorithm::BoundedAStar | Algorithm::DeadlineBoundedAStar { .. } => {
                self.algorithm = Algorithm::Greedy;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(Algorithm::GreedyCompute.abbreviation(), "EGC");
        assert_eq!(Algorithm::GreedyBandwidth.abbreviation(), "EGBW");
        assert_eq!(Algorithm::Greedy.abbreviation(), "EG");
        assert_eq!(Algorithm::BoundedAStar.abbreviation(), "BA*");
        assert_eq!(
            Algorithm::DeadlineBoundedAStar { deadline: Duration::from_millis(500) }.abbreviation(),
            "DBA*"
        );
    }

    #[test]
    fn builder_style_setters() {
        let r = PlacementRequest::with_algorithm(Algorithm::BoundedAStar)
            .weights(ObjectiveWeights::BANDWIDTH_DOMINANT)
            .seed(7);
        assert_eq!(r.algorithm, Algorithm::BoundedAStar);
        assert_eq!(r.weights, ObjectiveWeights::BANDWIDTH_DOMINANT);
        assert_eq!(r.seed, 7);
        assert!(r.parallel);
        assert_eq!(r.score_threads, 0, "0 = resolve from available_parallelism");
        assert!(r.memoize_bounds);
    }

    #[test]
    fn ladder_steps_only_touch_the_astar_tiers() {
        let mut r = PlacementRequest::with_algorithm(Algorithm::BoundedAStar);
        assert!(r.cap_search(4_096));
        assert_eq!(r.max_expansions, 4_096);
        assert!(!r.cap_search(8_192), "a cap never loosens an existing one");
        assert_eq!(r.max_expansions, 4_096);
        assert!(r.cap_search(1_024));
        assert_eq!(r.max_expansions, 1_024);
        assert!(r.floor_search());
        assert_eq!(r.algorithm, Algorithm::Greedy);
        assert!(!r.floor_search(), "the floor is idempotent");

        let mut greedy = PlacementRequest::default();
        assert!(!greedy.cap_search(64));
        assert!(!greedy.floor_search());
        assert_eq!(greedy.algorithm, Algorithm::Greedy);

        let mut dba = PlacementRequest::with_algorithm(Algorithm::DeadlineBoundedAStar {
            deadline: Duration::from_millis(100),
        });
        assert!(dba.cap_search(2_048));
        assert!(dba.floor_search());
        assert_eq!(dba.algorithm, Algorithm::Greedy);
    }

    #[test]
    fn requests_without_the_new_knobs_still_deserialize() {
        // A request serialized before score_threads/memoize_bounds
        // existed must round-trip onto the defaults.
        let legacy = r#"{
            "algorithm": "Greedy",
            "weights": { "bandwidth": 0.6, "hosts": 0.4 },
            "seed": 1,
            "parallel": true,
            "zone_symmetry": true,
            "use_estimate": true,
            "max_expansions": 0
        }"#;
        let r: PlacementRequest = serde_json::from_str(legacy).unwrap();
        assert_eq!(r.score_threads, 0);
        assert!(r.memoize_bounds);
        assert_eq!(r.chunk_bytes, 0, "0 = default cache budget");
        assert!(!r.shard, "pre-shard requests solve unsharded");
        assert_eq!(r.pods_considered, 0, "0 = DEFAULT_PODS_CONSIDERED");
    }

    #[test]
    fn shard_knobs_round_trip() {
        let r = PlacementRequest::default().shard(true).pods_considered(7);
        assert!(r.shard);
        assert_eq!(r.pods_considered, 7);
        let json = serde_json::to_string(&r).unwrap();
        let back: PlacementRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
