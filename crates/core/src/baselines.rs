//! The two single-objective greedy baselines of §IV-A.
//!
//! * `EGC` — pure compute bin-packing: first-fit into the feasible host
//!   with the smallest remaining compute capacity, ignoring links.
//! * `EGBW` — pure bandwidth minimization: nodes ordered by incident
//!   bandwidth, each placed to minimize the added hop-weighted
//!   bandwidth, preferring hosts with the most available NIC bandwidth
//!   (which drags placements onto idle hosts, as Table I shows).

use ostro_datacenter::HostId;
use ostro_model::NodeId;

use crate::candidates::{feasible_hosts_into, CandidateScratch};
use crate::error::PlacementError;
use crate::placement::SearchStats;
use crate::search::{Ctx, Path};

/// Runs the EGC baseline from `start` to completion.
pub(crate) fn run_egc<'a>(
    ctx: &Ctx<'a>,
    start: &Path<'a>,
    stats: &mut SearchStats,
) -> Result<Path<'a>, PlacementError> {
    run_baseline(ctx, start, stats, |ctx, path, _node, host| {
        let avail = path.overlay.available(host);
        let _ = ctx;
        // Smallest remaining compute first (best-fit); deterministic
        // tie-break on host id via the caller.
        (u64::from(avail.vcpus), avail.memory_mb, avail.disk_gb, 0)
    })
}

/// Runs the EGBW baseline from `start` to completion.
pub(crate) fn run_egbw<'a>(
    ctx: &Ctx<'a>,
    start: &Path<'a>,
    stats: &mut SearchStats,
) -> Result<Path<'a>, PlacementError> {
    run_baseline(ctx, start, stats, |ctx, path, node, host| {
        // Added hop-weighted bandwidth dominates; most-available NIC
        // bandwidth breaks ties (inverted so that smaller is better).
        let added = path.probe(ctx, node, host).unwrap_or(u64::MAX);
        let nic_free = path.overlay.link_available(ostro_datacenter::LinkRef::HostNic(host));
        (added, u64::MAX - nic_free.as_mbps(), 0, 0)
    })
}

/// Shared scaffolding: place each node on the feasible candidate with
/// the minimal `key`, trying candidates in key order until one
/// materializes.
fn run_baseline<'a, K>(
    ctx: &Ctx<'a>,
    start: &Path<'a>,
    stats: &mut SearchStats,
    key: K,
) -> Result<Path<'a>, PlacementError>
where
    K: Fn(&Ctx<'a>, &Path<'a>, NodeId, HostId) -> (u64, u64, u64, u64),
{
    let mut path = start.clone();
    let mut scratch = CandidateScratch::default();
    while let Some(node) = path.next_node(ctx) {
        let infeasible =
            || PlacementError::Infeasible { node, name: ctx.topo.node(node).name().to_owned() };
        feasible_hosts_into(ctx, &path, node, &mut scratch, stats);
        let hosts = &mut scratch.hosts;
        stats.expanded += 1;
        stats.generated += hosts.len() as u64;
        if hosts.is_empty() {
            return Err(infeasible());
        }
        hosts.sort_by_key(|&h| (key(ctx, &path, node, h), h));
        let mut placed = None;
        for &host in hosts.iter() {
            if path.probe(ctx, node, host).is_none() {
                continue;
            }
            if let Some(child) = path.place(ctx, node, host) {
                placed = Some(child);
                break;
            }
        }
        path = placed.ok_or_else(infeasible)?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::pinned_root;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, Resources, TopologyBuilder};

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn linked_pair() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(500)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn egc_packs_into_the_fullest_feasible_host() {
        let topo = linked_pair();
        let inf = infra();
        let mut base = CapacityState::new(&inf);
        // Host 5 is half full: smallest remaining compute that still fits.
        base.reserve_node(HostId::from_index(5), Resources::new(4, 8_192, 0)).unwrap();
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 2]).unwrap();
        let root = pinned_root(&ctx).unwrap();
        let path = run_egc(&ctx, &root, &mut SearchStats::default()).unwrap();
        // Both VMs land on host 5 (4 vCPUs left fits 2+2).
        assert_eq!(path.assignment[0], Some(HostId::from_index(5)));
        assert_eq!(path.assignment[1], Some(HostId::from_index(5)));
        assert_eq!(path.new_hosts(), 0);
    }

    #[test]
    fn egbw_minimizes_added_bandwidth() {
        let topo = linked_pair();
        let inf = infra();
        let base = CapacityState::new(&inf);
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 2]).unwrap();
        let root = pinned_root(&ctx).unwrap();
        let path = run_egbw(&ctx, &root, &mut SearchStats::default()).unwrap();
        assert_eq!(path.ubw_mbps, 0, "linked pair co-located");
    }

    #[test]
    fn egbw_prefers_hosts_with_free_bandwidth() {
        let mut b = TopologyBuilder::new("t");
        b.vm("solo", 2, 2_048).unwrap();
        let topo = b.build().unwrap();
        let inf = infra();
        let mut base = CapacityState::new(&inf);
        // Consume NIC bandwidth on hosts 0..6; host 6 the least.
        for i in 0..7u32 {
            let h = HostId::from_index(i);
            let peer = HostId::from_index((i + 1) % 8);
            base.reserve_flow(&inf, h, peer, Bandwidth::from_mbps(100 * (8 - u64::from(i))))
                .unwrap();
        }
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 1]).unwrap();
        let root = pinned_root(&ctx).unwrap();
        let path = run_egbw(&ctx, &root, &mut SearchStats::default()).unwrap();
        // Host 7 only carries the wrap-around flow's far end; it has
        // the most free NIC bandwidth.
        let chosen = path.assignment[0].unwrap();
        let free = base.nic_available(chosen);
        let max_free = (0..8u32).map(|i| base.nic_available(HostId::from_index(i))).max().unwrap();
        assert_eq!(free, max_free);
    }

    #[test]
    fn egc_ignores_links_and_splits_when_packing_demands() {
        // Two large linked VMs that cannot share any host: EGC packs
        // them wherever compute is tightest, paying bandwidth.
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 6, 2_048).unwrap();
        let c = b.vm("c", 6, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        let topo = b.build().unwrap();
        let inf = infra();
        let base = CapacityState::new(&inf);
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 2]).unwrap();
        let root = pinned_root(&ctx).unwrap();
        let path = run_egc(&ctx, &root, &mut SearchStats::default()).unwrap();
        assert_ne!(path.assignment[0], path.assignment[1]);
        assert!(path.ubw_mbps > 0);
    }
}
