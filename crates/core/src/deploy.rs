//! Failure-aware deployment execution: the gap between *decide* and
//! *commit*.
//!
//! [`Scheduler::place`] produces a decision against a snapshot of
//! capacity; in a real cloud the commit that follows can fail
//! node-by-node — Nova launches flake, hosts die, and capacity goes
//! stale under concurrent tenants. This module executes a
//! [`PlacementOutcome`](crate::PlacementOutcome)'s decision against a
//! live [`CapacityState`] one node at a time, and turns each of those
//! faults into a recovery action instead of a panic:
//!
//! * **Transient launch failures** (reported by a [`FaultProbe`]) are
//!   retried with exponential backoff on a simulated tick clock, up to
//!   [`DeployPolicy::max_attempts`] per node per host.
//! * **Exhausted or stale hosts** (retry budget spent, or a capacity
//!   reservation that no longer fits) trigger a *fallback*: the failing
//!   host is excluded and the not-yet-committed remainder is re-placed
//!   with [`Scheduler::replace_online`], pinning every committed node
//!   so the deployment disturbs as little as possible.
//! * **Unplaceable best-effort nodes** may be dropped under
//!   [`Degradation::DropBestEffort`] instead of failing the stack.
//! * Anything else aborts the deployment with a typed
//!   [`DeployError`], rolling the live state back so no partial
//!   reservation leaks.
//!
//! The companion [`Scheduler::evacuate`] implements host-crash
//! recovery: quarantine the dead host, release the tenant's
//! reservations (dead replicas included), and compute a pinned
//! re-placement for the survivors.

use ostro_datacenter::{CapacityState, HostId};
use ostro_model::{ApplicationTopology, NodeId};
use serde::{Deserialize, Serialize};

use crate::error::PlacementError;
use crate::online::OnlineOutcome;
use crate::placement::Placement;
use crate::request::PlacementRequest;
use crate::scheduler::Scheduler;

/// What the fault probe says about one launch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaunchVerdict {
    /// The hypervisor accepted the launch; commit the reservation.
    Launched,
    /// The launch failed transiently (agent timeout, image fetch,
    /// scheduler race) — worth retrying after a backoff.
    TransientFailure,
}

/// Injects launch-level faults into a deployment. Implemented by the
/// simulator's seeded fault plan; [`NoFaults`] is the production
/// default where the only failures are genuine capacity conflicts.
pub trait FaultProbe {
    /// Called before each reservation of `node` on `host`; `attempt`
    /// counts every launch the node has tried so far (across hosts).
    fn launch(&mut self, node: NodeId, host: HostId, attempt: u32) -> LaunchVerdict;
}

/// A probe that never injects a fault.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultProbe for NoFaults {
    fn launch(&mut self, _node: NodeId, _host: HostId, _attempt: u32) -> LaunchVerdict {
        LaunchVerdict::Launched
    }
}

/// What to do when a node has exhausted retries *and* fallbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Degradation {
    /// Abort the whole deployment and roll back (default: a stack is
    /// all-or-nothing).
    FailStack,
    /// Drop nodes the caller marked best-effort and deploy the rest;
    /// non-best-effort nodes still abort the stack.
    DropBestEffort,
}

/// Retry, backoff, fallback, and degradation knobs of one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeployPolicy {
    /// Launch attempts per node per target host before the host is
    /// declared failing (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated ticks; each
    /// further retry doubles it.
    pub backoff_base_ticks: u64,
    /// Ceiling on a single backoff wait.
    pub backoff_cap_ticks: u64,
    /// Re-placement rounds (via [`Scheduler::replace_online`] with the
    /// failing hosts excluded) before degradation applies.
    pub max_fallbacks: u32,
    /// Pin-relaxation rounds handed to each fallback re-placement.
    pub unpin_rounds: u32,
    /// Whether best-effort nodes may be dropped instead of failing the
    /// stack.
    pub degradation: Degradation,
}

impl Default for DeployPolicy {
    fn default() -> Self {
        DeployPolicy {
            max_attempts: 3,
            backoff_base_ticks: 1,
            backoff_cap_ticks: 8,
            max_fallbacks: 2,
            unpin_rounds: 3,
            degradation: Degradation::FailStack,
        }
    }
}

impl DeployPolicy {
    /// The simulated-tick wait before retry number `retry` (1-based),
    /// doubling from the base up to the cap.
    #[must_use]
    pub fn backoff_ticks(&self, retry: u32) -> u64 {
        let shift = retry.saturating_sub(1).min(32);
        self.backoff_base_ticks.saturating_mul(1u64 << shift).min(self.backoff_cap_ticks)
    }
}

/// How one node ended up after deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeFate {
    /// Committed on the decided host.
    Placed {
        /// The host the node runs on.
        host: HostId,
        /// Launches it took (1 = first try).
        attempts: u32,
    },
    /// Committed, but a fallback moved it off the decided host.
    Redirected {
        /// The host the decision named.
        decided: HostId,
        /// The host the node actually runs on.
        host: HostId,
        /// Launches it took across all hosts.
        attempts: u32,
    },
    /// Best-effort node abandoned under [`Degradation::DropBestEffort`].
    Dropped {
        /// The host the decision named.
        decided: HostId,
        /// Launches spent before giving up.
        attempts: u32,
    },
}

/// The result of one deployment: per-node fates plus the retry /
/// backoff / fallback accounting the churn metrics aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// Final node → host assignment (`None` = dropped best-effort).
    pub assignment: Vec<Option<HostId>>,
    /// Per-node outcome, indexed by node id.
    pub fates: Vec<NodeFate>,
    /// Simulated ticks spent waiting in backoff.
    pub ticks: u64,
    /// Transient launch failures absorbed by retries.
    pub retries: u64,
    /// Fallback re-placements performed.
    pub fallbacks: u32,
    /// Previously committed nodes a fallback had to move.
    pub repositioned: u64,
    /// Best-effort nodes dropped.
    pub dropped: usize,
}

impl DeploymentReport {
    /// The deployed assignment as a dense [`Placement`], or `None` if
    /// any node was dropped.
    #[must_use]
    pub fn placement(&self) -> Option<Placement> {
        let hosts: Option<Vec<HostId>> = self.assignment.iter().copied().collect();
        hosts.map(Placement::new)
    }

    /// `true` if every node of the decision was committed somewhere.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }
}

/// A deployment that could not complete; the live state has been rolled
/// back to its pre-deployment snapshot.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeployError {
    /// The decision or best-effort mask does not cover the topology.
    SizeMismatch {
        /// Nodes in the topology.
        expected: usize,
        /// Entries provided.
        actual: usize,
    },
    /// A node exhausted its retries and every fallback; the stack was
    /// aborted and the state rolled back.
    NodeFailed {
        /// The node that could not be deployed.
        node: NodeId,
        /// Its name, for diagnostics.
        name: String,
        /// The last host it failed on.
        host: HostId,
        /// Total launches attempted for the node.
        attempts: u32,
        /// The underlying placement / capacity failure.
        source: PlacementError,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SizeMismatch { expected, actual } => {
                write!(f, "deployment input covers {actual} nodes but topology has {expected}")
            }
            Self::NodeFailed { node, name, host, attempts, source } => write!(
                f,
                "node {node} (`{name}`) failed to deploy on {host} \
                 after {attempts} attempt(s): {source}"
            ),
        }
    }
}

impl std::error::Error for DeployError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::NodeFailed { source, .. } => Some(source),
            Self::SizeMismatch { .. } => None,
        }
    }
}

/// The result of evacuating one tenant off a crashed host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvacuationOutcome {
    /// The pinned re-placement covering every node (survivors pinned,
    /// dead replicas treated as new).
    pub online: OnlineOutcome,
    /// Replicas that were running on the crashed host.
    pub dead: Vec<NodeId>,
}

impl<'a> Scheduler<'a> {
    /// Commits a placement decision node-by-node against live state,
    /// surviving transient launch failures, stale capacity, and
    /// unhealthy hosts per `policy`. `best_effort` marks nodes that
    /// [`Degradation::DropBestEffort`] may abandon; pass an empty slice
    /// to use each node's own
    /// [`is_best_effort`](ostro_model::Node::is_best_effort) flag.
    ///
    /// On success the state holds exactly the reservations of the
    /// returned [`DeploymentReport::assignment`]. On error the state is
    /// rolled back to its value at entry.
    ///
    /// # Errors
    ///
    /// [`DeployError::SizeMismatch`] on malformed inputs, or
    /// [`DeployError::NodeFailed`] when a node exhausted retries,
    /// fallbacks, and degradation.
    #[allow(clippy::too_many_arguments)]
    pub fn deploy(
        &self,
        topology: &ApplicationTopology,
        decided: &Placement,
        state: &mut CapacityState,
        request: &PlacementRequest,
        policy: &DeployPolicy,
        best_effort: &[bool],
        probe: &mut dyn FaultProbe,
    ) -> Result<DeploymentReport, DeployError> {
        let n = topology.node_count();
        if decided.assignments().len() != n {
            return Err(DeployError::SizeMismatch {
                expected: n,
                actual: decided.assignments().len(),
            });
        }
        if !best_effort.is_empty() && best_effort.len() != n {
            return Err(DeployError::SizeMismatch { expected: n, actual: best_effort.len() });
        }
        let snapshot = state.clone();
        let mut target: Vec<HostId> = decided.assignments().to_vec();
        let mut committed: Vec<Option<HostId>> = vec![None; n];
        let mut dropped: Vec<bool> = vec![false; n];
        let mut attempts: Vec<u32> = vec![0; n];
        let mut excluded: Vec<HostId> = Vec::new();
        let mut report = DeploymentReport {
            assignment: Vec::new(),
            fates: Vec::new(),
            ticks: 0,
            retries: 0,
            fallbacks: 0,
            repositioned: 0,
            dropped: 0,
        };

        while let Some(i) = next_pending(&committed, &dropped) {
            let node = NodeId::from_index(i as u32);
            let host = target[i];
            let mut host_attempts = 0u32;
            // Retry loop on the current target host.
            let failure: PlacementError = loop {
                attempts[i] += 1;
                match probe.launch(node, host, attempts[i] - 1) {
                    LaunchVerdict::TransientFailure => {
                        report.retries += 1;
                        host_attempts += 1;
                        if host_attempts >= policy.max_attempts.max(1) {
                            break PlacementError::Infeasible {
                                node,
                                name: topology.node(node).name().to_owned(),
                            };
                        }
                        report.ticks += policy.backoff_ticks(host_attempts);
                    }
                    LaunchVerdict::Launched => {
                        match commit_node(self, topology, state, &committed, node, host) {
                            Ok(()) => {
                                committed[i] = Some(host);
                                break PlacementError::Exhausted; // sentinel, unused
                            }
                            Err(capacity) => break capacity,
                        }
                    }
                }
            };
            if committed[i].is_some() {
                continue;
            }
            // The node failed on `host` — exclude it and fall back.
            if !excluded.contains(&host) {
                excluded.push(host);
            }
            let verdict = if report.fallbacks < policy.max_fallbacks {
                report.fallbacks += 1;
                self.deploy_fallback(
                    topology,
                    state,
                    request,
                    policy,
                    &excluded,
                    &mut target,
                    &mut committed,
                    &mut dropped,
                    &mut report,
                )
            } else {
                Err(failure)
            };
            if let Err(source) = verdict {
                // Degradation: drop the node if allowed, else abort.
                let marked = if best_effort.is_empty() {
                    topology.node(node).is_best_effort()
                } else {
                    best_effort[i]
                };
                let droppable = policy.degradation == Degradation::DropBestEffort && marked;
                if droppable {
                    dropped[i] = true;
                    report.dropped += 1;
                } else {
                    *state = snapshot;
                    return Err(DeployError::NodeFailed {
                        node,
                        name: topology.node(node).name().to_owned(),
                        host,
                        attempts: attempts[i],
                        source,
                    });
                }
            }
        }

        report.assignment = committed;
        report.fates = topology
            .nodes()
            .iter()
            .map(|nd| {
                let i = nd.id().index();
                match report.assignment[i] {
                    Some(host) if host == decided.host_of(nd.id()) => {
                        NodeFate::Placed { host, attempts: attempts[i].max(1) }
                    }
                    Some(host) => NodeFate::Redirected {
                        decided: decided.host_of(nd.id()),
                        host,
                        attempts: attempts[i].max(1),
                    },
                    None => NodeFate::Dropped {
                        decided: decided.host_of(nd.id()),
                        attempts: attempts[i],
                    },
                }
            })
            .collect();
        Ok(report)
    }

    /// One fallback round: re-place everything not yet committed (plus
    /// any dropped nodes, which get another chance) with committed
    /// nodes pinned and the excluded hosts quarantined out of the
    /// candidate set. Updates targets in place; committed nodes whose
    /// pin had to move are released and re-queued.
    #[allow(clippy::too_many_arguments)]
    fn deploy_fallback(
        &self,
        topology: &ApplicationTopology,
        state: &mut CapacityState,
        request: &PlacementRequest,
        policy: &DeployPolicy,
        excluded: &[HostId],
        target: &mut [HostId],
        committed: &mut [Option<HostId>],
        dropped: &mut [bool],
        report: &mut DeploymentReport,
    ) -> Result<(), PlacementError> {
        // The re-placement sees the world minus this deployment: release
        // our own partial commit from a scratch copy, then blank out the
        // excluded hosts so no candidate lands there.
        let mut scratch = state.clone();
        release_partial_into(self, topology, committed, &mut scratch)?;
        for &h in excluded {
            scratch.quarantine_host(h);
        }
        let prior: Vec<Option<HostId>> = committed.to_vec();
        let online =
            self.replace_online(topology, &scratch, request, &prior, policy.unpin_rounds)?;
        // Apply the new decision: move pins the re-placement broke.
        for nd in topology.nodes() {
            let i = nd.id().index();
            let new_host = online.outcome.placement.host_of(nd.id());
            if let Some(old) = committed[i] {
                if old != new_host {
                    release_node_from(self, topology, committed, nd.id(), state)?;
                    committed[i] = None;
                    report.repositioned += 1;
                }
            }
            dropped[i] = false;
            target[i] = new_host;
        }
        Ok(())
    }

    /// Evacuates one tenant off a crashed host: releases the tenant's
    /// reservations (dead replicas included), re-freezes the host via
    /// [`CapacityState::quarantine_host`], and computes a pinned
    /// re-placement that keeps every surviving node where it runs when
    /// feasible (relaxing pins outward otherwise).
    ///
    /// On success the state holds **no** reservations for this tenant;
    /// commit the returned placement (e.g. with
    /// [`deploy`](Self::deploy)) to finish the recovery. On error the
    /// tenant is likewise fully released — the caller should count it
    /// abandoned.
    ///
    /// # Errors
    ///
    /// [`PlacementError::SizeMismatch`] if `assignment` does not cover
    /// the topology, a capacity error if it was never committed, or any
    /// [`PlacementError`] when even the fully unpinned re-placement is
    /// infeasible.
    pub fn evacuate(
        &self,
        topology: &ApplicationTopology,
        assignment: &[Option<HostId>],
        state: &mut CapacityState,
        request: &PlacementRequest,
        failed: HostId,
        max_rounds: u32,
    ) -> Result<EvacuationOutcome, PlacementError> {
        self.release_partial(topology, assignment, state)?;
        // The release restored the dead replicas' capacity on the
        // crashed host; freeze it again so nothing lands there.
        state.quarantine_host(failed);
        let dead: Vec<NodeId> = topology
            .nodes()
            .iter()
            .filter(|nd| assignment[nd.id().index()] == Some(failed))
            .map(|nd| nd.id())
            .collect();
        let prior: Vec<Option<HostId>> =
            assignment.iter().map(|h| h.filter(|&x| x != failed)).collect();
        let online = self.replace_online(topology, state, request, &prior, max_rounds)?;
        Ok(EvacuationOutcome { online, dead })
    }

    /// Releases the committed subset of a partial assignment: every
    /// node with a host, and every link whose endpoints both have one.
    ///
    /// All-or-nothing: on error the state is left untouched.
    ///
    /// # Errors
    ///
    /// [`PlacementError::SizeMismatch`] or a wrapped
    /// [`CapacityError`](ostro_datacenter::CapacityError) on any
    /// release underflow.
    pub fn release_partial(
        &self,
        topology: &ApplicationTopology,
        assignment: &[Option<HostId>],
        state: &mut CapacityState,
    ) -> Result<(), PlacementError> {
        if assignment.len() != topology.node_count() {
            return Err(PlacementError::SizeMismatch {
                expected: topology.node_count(),
                actual: assignment.len(),
            });
        }
        let mut trial = state.clone();
        release_partial_into(self, topology, assignment, &mut trial)?;
        *state = trial;
        Ok(())
    }
}

/// First node that is neither committed nor dropped, in id order.
fn next_pending(committed: &[Option<HostId>], dropped: &[bool]) -> Option<usize> {
    committed.iter().zip(dropped).position(|(c, &d)| c.is_none() && !d)
}

/// Reserves one node and its flows toward already-committed neighbors,
/// atomically (the state is untouched on error).
fn commit_node(
    scheduler: &Scheduler<'_>,
    topology: &ApplicationTopology,
    state: &mut CapacityState,
    committed: &[Option<HostId>],
    node: NodeId,
    host: HostId,
) -> Result<(), PlacementError> {
    let infra = scheduler.infrastructure();
    let mut trial = state.clone();
    trial.reserve_node(host, topology.node(node).requirements())?;
    for &(peer, bandwidth) in topology.neighbors(node) {
        if let Some(peer_host) = committed[peer.index()] {
            trial.reserve_flow(infra, host, peer_host, bandwidth)?;
        }
    }
    *state = trial;
    Ok(())
}

/// Releases one committed node and its flows toward peers that are
/// still marked committed. Used when a fallback repositions a node.
fn release_node_from(
    scheduler: &Scheduler<'_>,
    topology: &ApplicationTopology,
    committed: &[Option<HostId>],
    node: NodeId,
    state: &mut CapacityState,
) -> Result<(), PlacementError> {
    let infra = scheduler.infrastructure();
    let host = committed[node.index()].ok_or(PlacementError::IncompleteAssignment)?;
    let mut trial = state.clone();
    trial.release_node(infra, host, topology.node(node).requirements())?;
    for &(peer, bandwidth) in topology.neighbors(node) {
        if peer == node {
            continue;
        }
        if let Some(peer_host) = committed[peer.index()] {
            trial.release_flow(infra, host, peer_host, bandwidth)?;
        }
    }
    *state = trial;
    Ok(())
}

/// Releases every committed node and fully committed link of a partial
/// assignment directly into `state` (no trial copy; callers provide
/// their own atomicity).
fn release_partial_into(
    scheduler: &Scheduler<'_>,
    topology: &ApplicationTopology,
    assignment: &[Option<HostId>],
    state: &mut CapacityState,
) -> Result<(), PlacementError> {
    let infra = scheduler.infrastructure();
    for nd in topology.nodes() {
        if let Some(host) = assignment[nd.id().index()] {
            state.release_node(infra, host, nd.requirements())?;
        }
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        if let (Some(ha), Some(hb)) = (assignment[a.index()], assignment[b.index()]) {
            state.release_flow(infra, ha, hb, link.bandwidth())?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveWeights;
    use ostro_datacenter::{Infrastructure, InfrastructureBuilder};
    use ostro_model::{Bandwidth, Resources, TopologyBuilder};

    /// A probe driven by a closure, for scripting fault scenarios.
    struct Scripted<F: FnMut(NodeId, HostId, u32) -> LaunchVerdict>(F);

    impl<F: FnMut(NodeId, HostId, u32) -> LaunchVerdict> FaultProbe for Scripted<F> {
        fn launch(&mut self, node: NodeId, host: HostId, attempt: u32) -> LaunchVerdict {
            (self.0)(node, host, attempt)
        }
    }

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn topology() -> ostro_model::ApplicationTopology {
        let mut b = TopologyBuilder::new("app");
        let web = b.vm("web", 2, 2_048).unwrap();
        let db = b.vm("db", 4, 8_192).unwrap();
        let vol = b.volume("vol", 100).unwrap();
        b.link(web, db, Bandwidth::from_mbps(100)).unwrap();
        b.link(db, vol, Bandwidth::from_mbps(200)).unwrap();
        b.build().unwrap()
    }

    fn request() -> PlacementRequest {
        PlacementRequest {
            weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
            parallel: false,
            ..PlacementRequest::default()
        }
    }

    #[test]
    fn clean_deploy_equals_plain_commit() {
        let inf = infra();
        let topo = topology();
        let scheduler = Scheduler::new(&inf);
        let state0 = CapacityState::new(&inf);
        let decided = scheduler.place(&topo, &state0, &request()).unwrap();

        let mut via_commit = state0.clone();
        scheduler.commit(&topo, &decided.placement, &mut via_commit).unwrap();

        let mut via_deploy = state0.clone();
        let report = scheduler
            .deploy(
                &topo,
                &decided.placement,
                &mut via_deploy,
                &request(),
                &DeployPolicy::default(),
                &[],
                &mut NoFaults,
            )
            .unwrap();
        assert_eq!(via_deploy, via_commit);
        assert_eq!(report.placement().as_ref(), Some(&decided.placement));
        assert!(report.is_complete());
        assert_eq!(report.retries, 0);
        assert_eq!(report.ticks, 0);
        assert_eq!(report.fallbacks, 0);
        assert!(report.fates.iter().all(|f| matches!(f, NodeFate::Placed { attempts: 1, .. })));
    }

    #[test]
    fn transient_failures_retry_with_exponential_backoff() {
        let inf = infra();
        let topo = topology();
        let scheduler = Scheduler::new(&inf);
        let mut state = CapacityState::new(&inf);
        let decided = scheduler.place(&topo, &state, &request()).unwrap();
        let victim = NodeId::from_index(1);
        let policy = DeployPolicy { max_attempts: 4, ..DeployPolicy::default() };
        let mut probe = Scripted(|node, _host, attempt| {
            if node == victim && attempt < 2 {
                LaunchVerdict::TransientFailure
            } else {
                LaunchVerdict::Launched
            }
        });
        let report = scheduler
            .deploy(&topo, &decided.placement, &mut state, &request(), &policy, &[], &mut probe)
            .unwrap();
        assert_eq!(report.retries, 2);
        // Backoff doubles from the base: 1 tick, then 2.
        assert_eq!(report.ticks, 3);
        assert!(matches!(report.fates[victim.index()], NodeFate::Placed { attempts: 3, .. }));
    }

    #[test]
    fn backoff_schedule_doubles_to_the_cap() {
        let policy = DeployPolicy {
            backoff_base_ticks: 2,
            backoff_cap_ticks: 10,
            ..DeployPolicy::default()
        };
        assert_eq!(policy.backoff_ticks(1), 2);
        assert_eq!(policy.backoff_ticks(2), 4);
        assert_eq!(policy.backoff_ticks(3), 8);
        assert_eq!(policy.backoff_ticks(4), 10);
        assert_eq!(policy.backoff_ticks(60), 10);
    }

    #[test]
    fn unhealthy_host_triggers_fallback_redirect() {
        let inf = infra();
        let topo = topology();
        let scheduler = Scheduler::new(&inf);
        let state0 = CapacityState::new(&inf);
        let decided = scheduler.place(&topo, &state0, &request()).unwrap();
        let web = NodeId::from_index(0);
        let bad = decided.placement.host_of(web);
        // `bad` never launches anything: every node decided there must
        // be redirected through a fallback re-placement.
        let mut probe = Scripted(|_node, host, _attempt| {
            if host == bad {
                LaunchVerdict::TransientFailure
            } else {
                LaunchVerdict::Launched
            }
        });
        let mut state = state0.clone();
        let report = scheduler
            .deploy(
                &topo,
                &decided.placement,
                &mut state,
                &request(),
                &DeployPolicy::default(),
                &[],
                &mut probe,
            )
            .unwrap();
        assert!(report.is_complete());
        assert!(report.fallbacks >= 1);
        assert!(report.assignment.iter().all(|h| *h != Some(bad)));
        assert!(report
            .fates
            .iter()
            .any(|f| matches!(f, NodeFate::Redirected { decided: d, .. } if *d == bad)));
        // The live state holds exactly the deployed reservations.
        let mut check = state.clone();
        scheduler.release_partial(&topo, &report.assignment, &mut check).unwrap();
        assert_eq!(check, state0);
    }

    #[test]
    fn hopeless_deploy_fails_typed_and_rolls_back() {
        let inf = infra();
        let topo = topology();
        let scheduler = Scheduler::new(&inf);
        let state0 = CapacityState::new(&inf);
        let decided = scheduler.place(&topo, &state0, &request()).unwrap();
        let mut state = state0.clone();
        let mut probe = Scripted(|_, _, _| LaunchVerdict::TransientFailure);
        let err = scheduler
            .deploy(
                &topo,
                &decided.placement,
                &mut state,
                &request(),
                &DeployPolicy::default(),
                &[],
                &mut probe,
            )
            .unwrap_err();
        assert!(matches!(err, DeployError::NodeFailed { .. }));
        assert!(!err.to_string().is_empty());
        assert_eq!(state, state0, "failed deployment must roll back completely");
    }

    #[test]
    fn best_effort_nodes_drop_instead_of_failing_the_stack() {
        let inf = infra();
        let topo = topology();
        let scheduler = Scheduler::new(&inf);
        let state0 = CapacityState::new(&inf);
        let decided = scheduler.place(&topo, &state0, &request()).unwrap();
        let web = NodeId::from_index(0);
        // `web` can never launch anywhere; it is marked best-effort.
        let mut probe = Scripted(|node, _, _| {
            if node == web {
                LaunchVerdict::TransientFailure
            } else {
                LaunchVerdict::Launched
            }
        });
        let policy =
            DeployPolicy { degradation: Degradation::DropBestEffort, ..DeployPolicy::default() };
        let mut state = state0.clone();
        let report = scheduler
            .deploy(
                &topo,
                &decided.placement,
                &mut state,
                &request(),
                &policy,
                &[true, false, false],
                &mut probe,
            )
            .unwrap();
        assert_eq!(report.dropped, 1);
        assert_eq!(report.assignment[web.index()], None);
        assert!(matches!(report.fates[web.index()], NodeFate::Dropped { .. }));
        assert!(report.placement().is_none());
        // Releasing the partial tenant restores the fresh state.
        scheduler.release_partial(&topo, &report.assignment, &mut state).unwrap();
        assert_eq!(state, state0);
    }

    #[test]
    fn deploy_rejects_malformed_inputs() {
        let inf = infra();
        let topo = topology();
        let scheduler = Scheduler::new(&inf);
        let mut state = CapacityState::new(&inf);
        let short = Placement::new(vec![HostId::from_index(0)]);
        let err = scheduler
            .deploy(
                &topo,
                &short,
                &mut state,
                &request(),
                &DeployPolicy::default(),
                &[],
                &mut NoFaults,
            )
            .unwrap_err();
        assert_eq!(err, DeployError::SizeMismatch { expected: 3, actual: 1 });
        let decided = scheduler.place(&topo, &state, &request()).unwrap();
        let err = scheduler
            .deploy(
                &topo,
                &decided.placement,
                &mut state,
                &request(),
                &DeployPolicy::default(),
                &[true],
                &mut NoFaults,
            )
            .unwrap_err();
        assert_eq!(err, DeployError::SizeMismatch { expected: 3, actual: 1 });
    }

    #[test]
    fn evacuate_moves_tenant_off_crashed_host() {
        let inf = infra();
        let topo = topology();
        let scheduler = Scheduler::new(&inf);
        let fresh = CapacityState::new(&inf);
        let mut state = fresh.clone();
        let decided = scheduler.place(&topo, &state, &request()).unwrap();
        scheduler.commit(&topo, &decided.placement, &mut state).unwrap();

        let db = NodeId::from_index(1);
        let crashed = decided.placement.host_of(db);
        let assignment: Vec<Option<HostId>> =
            decided.placement.assignments().iter().copied().map(Some).collect();
        let evac =
            scheduler.evacuate(&topo, &assignment, &mut state, &request(), crashed, 4).unwrap();
        assert!(evac.dead.contains(&db));
        // Tenant fully released; the crashed host is frozen.
        assert_eq!(state.available(crashed), Resources::ZERO);
        assert_eq!(state.nic_available(crashed), Bandwidth::ZERO);
        // The recovery placement avoids the crashed host and commits.
        let new = &evac.online.outcome.placement;
        assert!(new.assignments().iter().all(|&h| h != crashed));
        scheduler.commit(&topo, new, &mut state).unwrap();
        // Survivors stayed put unless the solver had to move them.
        for nd in topo.nodes() {
            if assignment[nd.id().index()] != Some(crashed)
                && !evac.online.repositioned.contains(&nd.id())
            {
                assert_eq!(new.host_of(nd.id()), decided.placement.host_of(nd.id()));
            }
        }
    }

    #[test]
    fn release_partial_rejects_size_mismatch() {
        let inf = infra();
        let topo = topology();
        let scheduler = Scheduler::new(&inf);
        let mut state = CapacityState::new(&inf);
        let err = scheduler.release_partial(&topo, &[None], &mut state).unwrap_err();
        assert_eq!(err, PlacementError::SizeMismatch { expected: 3, actual: 1 });
    }
}
