use std::error::Error;
use std::fmt;

use ostro_datacenter::CapacityError;
use ostro_model::NodeId;

/// Errors produced by the placement engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlacementError {
    /// No feasible host exists for a node under the current constraints
    /// and availability.
    Infeasible {
        /// The first node for which every candidate host was rejected.
        node: NodeId,
        /// The node's name, for diagnostics.
        name: String,
    },
    /// The search space was exhausted without completing a placement
    /// (can happen when early decisions paint the search into a corner).
    Exhausted,
    /// The objective weights are invalid (negative, NaN, or not summing
    /// to 1).
    InvalidWeights {
        /// The offending bandwidth weight θbw.
        bandwidth: f64,
        /// The offending host weight θc.
        hosts: f64,
    },
    /// A zero deadline was given to the deadline-bounded search.
    ZeroDeadline,
    /// A placement/topology size mismatch (e.g. verifying a placement
    /// against a different topology).
    SizeMismatch {
        /// Nodes in the topology.
        expected: usize,
        /// Assignments in the placement.
        actual: usize,
    },
    /// An online re-placement request whose prior-assignment vector
    /// does not cover the topology (one slot per node).
    PriorLengthMismatch {
        /// Nodes in the topology.
        expected: usize,
        /// Slots in the prior assignment.
        actual: usize,
    },
    /// The search returned a path that does not assign every node — an
    /// internal invariant violation, surfaced instead of panicking.
    IncompleteAssignment,
    /// A capacity operation failed while committing or releasing a
    /// placement.
    Capacity(CapacityError),
    /// Admission control shed the request at the door: the service's
    /// bounded ingress queue was already holding `depth` jobs.
    QueueFull {
        /// The configured queue bound that was hit.
        depth: usize,
    },
    /// Admission control shed the request before planning: it had
    /// already waited past its deadline budget in the ingress queue.
    DeadlineExceeded {
        /// The configured per-request budget, in milliseconds.
        budget_ms: u64,
    },
    /// The planner thread panicked while solving this request. The
    /// panic was contained — the service keeps serving — and the
    /// payload's message is carried here for diagnostics.
    PlannerPanic {
        /// The panic payload rendered to text.
        reason: String,
    },
    /// The commit could not be made durable (a WAL append or fsync
    /// failed) and the service's durability policy rejects rather than
    /// degrade to non-durable acknowledgements. The books were rolled
    /// back; the request was never acknowledged.
    Durability {
        /// The underlying WAL failure rendered to text.
        reason: String,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible { node, name } => {
                write!(f, "no feasible host for node {node} (`{name}`)")
            }
            Self::Exhausted => write!(f, "search space exhausted without a full placement"),
            Self::InvalidWeights { bandwidth, hosts } => write!(
                f,
                "objective weights must be non-negative and sum to 1 \
                 (got θbw={bandwidth}, θc={hosts})"
            ),
            Self::ZeroDeadline => {
                write!(f, "deadline-bounded search needs a non-zero deadline")
            }
            Self::SizeMismatch { expected, actual } => {
                write!(f, "placement covers {actual} nodes but topology has {expected}")
            }
            Self::PriorLengthMismatch { expected, actual } => {
                write!(f, "prior assignment has {actual} slots but topology has {expected} nodes")
            }
            Self::IncompleteAssignment => {
                write!(f, "search returned a path that leaves nodes unassigned")
            }
            Self::Capacity(e) => write!(f, "capacity error: {e}"),
            Self::QueueFull { depth } => {
                write!(f, "shed at admission: ingress queue full ({depth} jobs queued)")
            }
            Self::DeadlineExceeded { budget_ms } => {
                write!(f, "shed before planning: deadline budget of {budget_ms}ms already spent")
            }
            Self::PlannerPanic { reason } => {
                write!(f, "planner thread panicked: {reason}")
            }
            Self::Durability { reason } => {
                write!(f, "commit could not be made durable: {reason}")
            }
        }
    }
}

impl Error for PlacementError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Capacity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CapacityError> for PlacementError {
    fn from(e: CapacityError) -> Self {
        PlacementError::Capacity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PlacementError::Infeasible { node: NodeId::from_index(3), name: "db".into() };
        assert!(e.to_string().contains("db"));
        assert!(e.source().is_none());

        let cap = CapacityError::ReleaseUnderflowHost(ostro_datacenter::HostId::from_index(0));
        let e: PlacementError = cap.clone().into();
        assert_eq!(e, PlacementError::Capacity(cap));
        assert!(e.source().is_some());
    }

    #[test]
    fn overload_errors_render_their_budgets() {
        let e = PlacementError::QueueFull { depth: 32 };
        assert!(e.to_string().contains("32"));
        let e = PlacementError::DeadlineExceeded { budget_ms: 250 };
        assert!(e.to_string().contains("250ms"));
        let e = PlacementError::PlannerPanic { reason: "index out of bounds".into() };
        assert!(e.to_string().contains("index out of bounds"));
        let e = PlacementError::Durability { reason: "wal: No space left".into() };
        assert!(e.to_string().contains("No space left"));
        assert!(e.clone() == e);
    }

    #[test]
    fn weight_error_mentions_both_thetas() {
        let e = PlacementError::InvalidWeights { bandwidth: 0.7, hosts: 0.7 };
        let s = e.to_string();
        assert!(s.contains("0.7"));
        assert!(s.contains("sum to 1"));
    }
}
