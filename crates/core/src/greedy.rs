//! The estimate-based greedy search `EG` (Algorithm 1).
//!
//! Nodes are placed one at a time in descending relative-weight order;
//! for each node every candidate host is scored with the accumulated
//! utility plus the heuristic lower bound, and the best is taken.

use ostro_datacenter::HostId;

use crate::candidates::{feasible_hosts_into, pick_best, score_candidates_into, CandidateScratch};
use crate::error::PlacementError;
use crate::placement::SearchStats;
use crate::search::{Ctx, Path};

/// Builds the root path by applying pinned assignments (empty when no
/// nodes are pinned).
pub(crate) fn pinned_root<'a>(ctx: &Ctx<'a>) -> Result<Path<'a>, PlacementError> {
    let mut path = Path::empty(ctx);
    let mut scratch = CandidateScratch::default();
    let mut stats = SearchStats::default();
    for i in 0..ctx.pinned_prefix {
        let node = ctx.order[i];
        // The order puts pinned nodes first, so a `None` here is an
        // internal inconsistency; surface it rather than panic.
        let Some(host) = ctx.pinned[node.index()] else {
            return Err(PlacementError::Infeasible {
                node,
                name: ctx.topo.node(node).name().to_owned(),
            });
        };
        feasible_hosts_into(ctx, &path, node, &mut scratch, &mut stats);
        if !scratch.hosts.contains(&host) {
            return Err(PlacementError::Infeasible {
                node,
                name: ctx.topo.node(node).name().to_owned(),
            });
        }
        path = path.place(ctx, node, host).ok_or_else(|| PlacementError::Infeasible {
            node,
            name: ctx.topo.node(node).name().to_owned(),
        })?;
    }
    Ok(path)
}

/// Runs EG from `start` to a complete placement.
///
/// Also used by BA\*/DBA\* to complete partial paths into upper bounds
/// (`RunEG()`, Alg. 2 lines 3 and 17).
pub(crate) fn run_eg<'a>(
    ctx: &Ctx<'a>,
    start: &Path<'a>,
    stats: &mut SearchStats,
) -> Result<Path<'a>, PlacementError> {
    run_eg_capped(ctx, start, stats, 0)
}

/// EG with an optional cap on how many candidate hosts get the full
/// heuristic evaluation per step (`0` = all, the paper's algorithm).
///
/// With a cap, candidates are pre-ranked by the cheap accumulated-cost
/// probe (added hop-weighted bandwidth, then new-host activation) and
/// only the best `cap` receive the estimate-based score. DBA\* uses
/// this for its mid-search upper-bound refreshes so one refresh costs
/// a fraction of a full EG run.
pub(crate) fn run_eg_capped<'a>(
    ctx: &Ctx<'a>,
    start: &Path<'a>,
    stats: &mut SearchStats,
    cap: usize,
) -> Result<Path<'a>, PlacementError> {
    let mut path = start.fork();
    // One scratch for the whole run: candidate masks, host lists, and
    // scored buffers are reused across every node step.
    let mut scratch = CandidateScratch::default();
    while let Some(node) = path.next_node(ctx) {
        let infeasible =
            || PlacementError::Infeasible { node, name: ctx.topo.node(node).name().to_owned() };
        feasible_hosts_into(ctx, &path, node, &mut scratch, stats);
        if cap > 0 && scratch.hosts.len() > cap {
            let mut cheap: Vec<(u64, bool, HostId)> = scratch
                .hosts
                .iter()
                .filter_map(|&h| {
                    let added = path.probe(ctx, node, h)?;
                    Some((added, !path.overlay.is_active(h), h))
                })
                .collect();
            cheap.sort_unstable();
            scratch.hosts.clear();
            scratch.hosts.extend(cheap.into_iter().take(cap).map(|(_, _, h)| h));
        }
        let (hosts, scored) = scratch.hosts_and_scored();
        score_candidates_into(ctx, &path, node, hosts, stats, scored);
        stats.expanded += 1;
        stats.generated += scored.len() as u64;
        if scored.is_empty() {
            return Err(infeasible());
        }
        // Try candidates best-first: the per-edge probe is necessary
        // but not sufficient, so materialization can still fail when
        // several flows share a saturated link.
        scored.sort_by(|a, b| {
            a.u_total
                .total_cmp(&b.u_total)
                .then_with(|| {
                    let a_active = path.overlay.is_active(a.host);
                    let b_active = path.overlay.is_active(b.host);
                    b_active.cmp(&a_active)
                })
                .then_with(|| a.host.cmp(&b.host))
        });
        debug_assert_eq!(scored.first().copied(), pick_best(&path, scored));
        // place_mut self-reverts on failure, so the path stays valid
        // for the next candidate — no clone per attempt.
        let placed = scored.iter().any(|cand| path.place_mut(ctx, node, cand.host).is_some());
        if !placed {
            return Err(infeasible());
        }
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveWeights;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, HostId, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};

    fn infra(racks: usize, hosts: usize) -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            racks,
            hosts,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn run<'a>(
        topo: &'a ApplicationTopology,
        infra: &'a Infrastructure,
        base: &'a CapacityState,
    ) -> Path<'a> {
        let req = PlacementRequest {
            weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
            parallel: false,
            ..PlacementRequest::default()
        };
        let ctx = Ctx::new(topo, infra, base, &req, vec![None; topo.node_count()]).unwrap();
        let root = pinned_root(&ctx).unwrap();
        run_eg(&ctx, &root, &mut SearchStats::default()).unwrap()
    }

    #[test]
    fn colocates_linked_nodes_when_possible() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        let v = b.volume("v", 100).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, v, Bandwidth::from_mbps(200)).unwrap();
        let topo = b.build().unwrap();
        let inf = infra(2, 4);
        let base = CapacityState::new(&inf);
        let path = run(&topo, &inf, &base);
        assert_eq!(path.ubw_mbps, 0, "everything fits on one host");
        assert_eq!(path.new_hosts(), 1);
    }

    #[test]
    fn respects_diversity_while_minimizing_spread() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &[a, c]).unwrap();
        let topo = b.build().unwrap();
        let inf = infra(2, 4);
        let base = CapacityState::new(&inf);
        let path = run(&topo, &inf, &base);
        let ha = path.assignment[a.index()].unwrap();
        let hc = path.assignment[c.index()].unwrap();
        assert_ne!(ha, hc);
        // Host-level diversity allows same rack: cost 2 hops.
        assert_eq!(path.ubw_mbps, 200);
    }

    #[test]
    fn infeasible_when_capacity_is_exhausted() {
        let mut b = TopologyBuilder::new("t");
        b.vm("huge", 32, 1_024).unwrap();
        let topo = b.build().unwrap();
        let inf = infra(1, 2);
        let base = CapacityState::new(&inf);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 1]).unwrap();
        let root = Path::empty(&ctx);
        let err = run_eg(&ctx, &root, &mut SearchStats::default()).unwrap_err();
        assert!(matches!(err, PlacementError::Infeasible { .. }));
    }

    #[test]
    fn pinned_root_places_and_validates() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(10)).unwrap();
        let topo = b.build().unwrap();
        let inf = infra(2, 2);
        let base = CapacityState::new(&inf);
        let req = PlacementRequest::default();
        let mut pinned = vec![None; 2];
        pinned[a.index()] = Some(HostId::from_index(3));
        let ctx = Ctx::new(&topo, &inf, &base, &req, pinned).unwrap();
        let root = pinned_root(&ctx).unwrap();
        assert_eq!(root.placed, 1);
        assert_eq!(root.assignment[a.index()], Some(HostId::from_index(3)));
        let done = run_eg(&ctx, &root, &mut SearchStats::default()).unwrap();
        assert!(done.is_complete(&ctx));
        assert_eq!(done.assignment[a.index()], Some(HostId::from_index(3)));
    }

    #[test]
    fn capped_eg_matches_uncapped_when_cap_is_loose() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        let d = b.vm("d", 1, 1_024).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, d, Bandwidth::from_mbps(50)).unwrap();
        let topo = b.build().unwrap();
        let inf = infra(2, 4);
        let base = CapacityState::new(&inf);
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 3]).unwrap();
        let root = pinned_root(&ctx).unwrap();
        let full = run_eg(&ctx, &root, &mut SearchStats::default()).unwrap();
        let capped = run_eg_capped(&ctx, &root, &mut SearchStats::default(), 100).unwrap();
        assert_eq!(full.assignment, capped.assignment);
    }

    #[test]
    fn capped_eg_evaluates_fewer_candidates() {
        let mut b = TopologyBuilder::new("t");
        let mut prev = b.vm("v0", 1, 1_024).unwrap();
        for i in 1..4 {
            let v = b.vm(format!("v{i}"), 1, 1_024).unwrap();
            b.link(prev, v, Bandwidth::from_mbps(20)).unwrap();
            prev = v;
        }
        let topo = b.build().unwrap();
        let inf = infra(4, 8); // 32 candidate hosts
        let base = CapacityState::new(&inf);
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; 4]).unwrap();
        let root = pinned_root(&ctx).unwrap();
        let mut full_stats = SearchStats::default();
        let mut capped_stats = SearchStats::default();
        let full = run_eg(&ctx, &root, &mut full_stats).unwrap();
        let capped = run_eg_capped(&ctx, &root, &mut capped_stats, 4).unwrap();
        assert!(capped_stats.heuristic_evals < full_stats.heuristic_evals);
        assert!(capped.is_complete(&ctx));
        // Capped quality can only be as good or worse.
        assert!(full.u_star <= capped.u_star + 1e-9);
    }

    #[test]
    fn pinned_root_fails_on_infeasible_pin() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
        let topo = b.build().unwrap();
        let inf = infra(2, 2);
        let mut base = CapacityState::new(&inf);
        base.reserve_node(HostId::from_index(3), Resources::new(8, 16_384, 500)).unwrap();
        let req = PlacementRequest::default();
        let mut pinned = vec![None; 2];
        pinned[a.index()] = Some(HostId::from_index(3)); // full host
        let ctx = Ctx::new(&topo, &inf, &base, &req, pinned).unwrap();
        assert!(matches!(pinned_root(&ctx), Err(PlacementError::Infeasible { .. })));
    }
}
