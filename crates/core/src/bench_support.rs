//! Hooks for the kernel benchmark (`benches/kernel.rs` in the bench
//! crate), which needs to drive the crate-private search kernel —
//! child expansion and candidate scoring — without going through a
//! whole solver run.
//!
//! Hidden from docs: this is not a public API and carries no stability
//! promise.

// Harness-only code: fixtures are constructed, not parsed, so a
// violated expectation is a broken benchmark, not a runtime fault.
#![allow(clippy::expect_used)]

use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::ApplicationTopology;

use crate::candidates::{feasible_hosts_into, score_candidates_into, CandidateScratch};
use crate::placement::SearchStats;
use crate::request::PlacementRequest;
use crate::search::{Ctx, Path};

/// Builds a search context plus a path with the first `prefix` nodes
/// already placed (greedily, on the first host that admits them), so
/// benchmarks exercise a mid-search state rather than an empty one.
fn harness<'a>(
    topo: &'a ApplicationTopology,
    infra: &'a Infrastructure,
    base: &'a CapacityState,
    parallel: bool,
    memoize: bool,
    score_threads: usize,
    prefix: usize,
) -> (Ctx<'a>, Path<'a>) {
    let request = PlacementRequest {
        parallel,
        memoize_bounds: memoize,
        score_threads,
        ..PlacementRequest::default()
    };
    let ctx = Ctx::new(topo, infra, base, &request, vec![None; topo.node_count()])
        .expect("benchmark fixture must be valid");
    let mut path = Path::empty(&ctx);
    let n = infra.host_count();
    for i in 0..prefix.min(ctx.order.len().saturating_sub(1)) {
        let node = path.next_node(&ctx).expect("prefix within order");
        // Stride the prefix across hosts (and thus racks) so the
        // search state carries a realistic spread of host entries and
        // link reservations instead of one packed host.
        let start = i * 37 % n;
        let placed = (0..n).any(|k| {
            let host = infra.hosts()[(start + k) % n].id();
            path.place_mut(&ctx, node, host).is_some()
        });
        assert!(placed, "benchmark fixture must admit its prefix");
    }
    (ctx, path)
}

/// Runs `cycles` child expansions of the next unplaced node via the
/// delta-undo kernel: apply with `place_mut`, revert with `undo`.
/// Hosts are cycled round-robin. Returns the number of admitted
/// placements so the work cannot be optimized away.
#[must_use]
pub fn expansion_cycles_delta(
    topo: &ApplicationTopology,
    infra: &Infrastructure,
    base: &CapacityState,
    prefix: usize,
    cycles: u64,
) -> u64 {
    let (ctx, mut path) = harness(topo, infra, base, false, false, 1, prefix);
    let node = path.next_node(&ctx).expect("at least one unplaced node");
    let hosts: Vec<HostId> = infra.hosts().iter().map(|h| h.id()).collect();
    let mut admitted = 0;
    for i in 0..cycles {
        let host = hosts[i as usize % hosts.len()];
        if let Some(mark) = path.place_mut(&ctx, node, host) {
            admitted += 1;
            path.undo(mark);
        }
    }
    admitted
}

/// The same workload as [`expansion_cycles_delta`] driven through the
/// clone-per-child reference path: each expansion materializes (and
/// drops) a full copy of the search state.
#[cfg(feature = "clone-baseline")]
#[must_use]
pub fn expansion_cycles_clone(
    topo: &ApplicationTopology,
    infra: &Infrastructure,
    base: &CapacityState,
    prefix: usize,
    cycles: u64,
) -> u64 {
    let (ctx, path) = harness(topo, infra, base, false, false, 1, prefix);
    let node = path.next_node(&ctx).expect("at least one unplaced node");
    let hosts: Vec<HostId> = infra.hosts().iter().map(|h| h.id()).collect();
    let mut admitted = 0;
    for i in 0..cycles {
        let host = hosts[i as usize % hosts.len()];
        if let Some(child) = path.place_via_clone(&ctx, node, host) {
            admitted += 1;
            drop(child);
        }
    }
    admitted
}

/// Scores every feasible candidate host for the next unplaced node
/// once — the inner loop of EG and of BA*'s upper-bound refreshes.
/// Returns the candidate count so the work cannot be optimized away.
///
/// `memoize` turns the heuristic-bound memo cache on (the engine's
/// default) or off (the pre-memoization baseline); the cache starts
/// cold on every call, so a single round only benefits from hosts
/// sharing a group signature. `score_threads` follows the request
/// semantics (0 = `available_parallelism`).
#[must_use]
pub fn scoring_round(
    topo: &ApplicationTopology,
    infra: &Infrastructure,
    base: &CapacityState,
    parallel: bool,
    memoize: bool,
    score_threads: usize,
    prefix: usize,
) -> usize {
    let (ctx, path) = harness(topo, infra, base, parallel, memoize, score_threads, prefix);
    let node = path.next_node(&ctx).expect("at least one unplaced node");
    let mut scratch = CandidateScratch::default();
    let mut stats = SearchStats::default();
    feasible_hosts_into(&ctx, &path, node, &mut scratch, &mut stats);
    let (hosts, scored) = scratch.hosts_and_scored();
    score_candidates_into(&ctx, &path, node, hosts, &mut stats, scored);
    scored.len()
}
