//! Independent verification of a finished placement against every
//! constraint class — used by tests, by the commit path, and as a
//! safety net for downstream integrations.

use std::fmt;

use ostro_datacenter::{CapacityState, HostId, Infrastructure, OverlayState};
use ostro_model::{ApplicationTopology, Bandwidth, NodeId, Proximity, ZoneId};

use crate::error::PlacementError;
use crate::placement::Placement;

/// One constraint violation found by [`verify_placement`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A host ended up over-committed on CPU, memory, or disk.
    HostCapacity {
        /// The over-committed host.
        host: HostId,
    },
    /// A link ended up carrying more bandwidth than it has.
    LinkCapacity {
        /// The endpoints whose flow overflowed first.
        nodes: (NodeId, NodeId),
    },
    /// Two members of a diversity zone are insufficiently separated.
    Diversity {
        /// The violated zone.
        zone: ZoneId,
        /// The offending pair.
        nodes: (NodeId, NodeId),
    },
    /// A latency-bounded link's endpoints are too far apart.
    Proximity {
        /// The offending pair.
        nodes: (NodeId, NodeId),
        /// The bound that was violated.
        bound: Proximity,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::HostCapacity { host } => write!(f, "host {host} over-committed"),
            Violation::LinkCapacity { nodes: (a, b) } => {
                write!(f, "flow {a} <-> {b} overflows a network link")
            }
            Violation::Diversity { zone, nodes: (a, b) } => {
                write!(f, "zone {zone}: {a} and {b} insufficiently separated")
            }
            Violation::Proximity { nodes: (a, b), bound } => {
                write!(f, "{a} and {b} violate their {bound} latency bound")
            }
        }
    }
}

/// Checks `placement` of `topology` against `state`, reporting every
/// violation (empty result = fully valid).
///
/// # Errors
///
/// [`PlacementError::SizeMismatch`] if the placement does not cover the
/// topology exactly.
pub fn verify_placement(
    topology: &ApplicationTopology,
    infra: &Infrastructure,
    state: &CapacityState,
    placement: &Placement,
) -> Result<Vec<Violation>, PlacementError> {
    if placement.assignments().len() != topology.node_count() {
        return Err(PlacementError::SizeMismatch {
            expected: topology.node_count(),
            actual: placement.assignments().len(),
        });
    }
    let mut violations = Vec::new();
    let mut overlay = OverlayState::new(infra, state);
    for node in topology.nodes() {
        let host = placement.host_of(node.id());
        if overlay.reserve_node(host, node.requirements()).is_err() {
            violations.push(Violation::HostCapacity { host });
        }
    }
    for link in topology.links() {
        let (a, b) = link.endpoints();
        let (ha, hb) = (placement.host_of(a), placement.host_of(b));
        if overlay.reserve_flow(ha, hb, link.bandwidth()).is_err() {
            violations.push(Violation::LinkCapacity { nodes: (a, b) });
        }
    }
    for link in topology.links() {
        if let Some(bound) = link.max_proximity() {
            let (a, b) = link.endpoints();
            let (ha, hb) = (placement.host_of(a), placement.host_of(b));
            if !infra.within(ha, hb, bound) {
                violations.push(Violation::Proximity { nodes: (a, b), bound });
            }
        }
    }
    for zone in topology.zones() {
        for (i, &a) in zone.members().iter().enumerate() {
            for &b in &zone.members()[i + 1..] {
                let (ha, hb) = (placement.host_of(a), placement.host_of(b));
                if !infra.satisfies_diversity(ha, hb, zone.level()) {
                    violations.push(Violation::Diversity { zone: zone.id(), nodes: (a, b) });
                }
            }
        }
    }
    Ok(violations)
}

/// The total hop-weighted bandwidth `placement` reserves — the ubw the
/// paper's tables report, recomputed from first principles.
#[must_use]
pub fn reserved_bandwidth(
    topology: &ApplicationTopology,
    infra: &Infrastructure,
    placement: &Placement,
) -> Bandwidth {
    let mbps = topology
        .links()
        .iter()
        .map(|l| {
            let (a, b) = l.endpoints();
            l.bandwidth().as_mbps() * infra.hop_cost(placement.host_of(a), placement.host_of(b))
        })
        .sum();
    Bandwidth::from_mbps(mbps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{DiversityLevel, Resources, TopologyBuilder};

    fn fixtures() -> (ApplicationTopology, Infrastructure, CapacityState) {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
        let topo = b.build().unwrap();
        let infra = InfrastructureBuilder::flat(
            "dc",
            2,
            2,
            Resources::new(4, 8_192, 100),
            Bandwidth::from_gbps(1),
            Bandwidth::from_gbps(10),
        )
        .build()
        .unwrap();
        let state = CapacityState::new(&infra);
        (topo, infra, state)
    }

    fn h(i: u32) -> HostId {
        HostId::from_index(i)
    }

    #[test]
    fn valid_placement_passes() {
        let (topo, infra, state) = fixtures();
        let p = Placement::new(vec![h(0), h(2)]); // different racks
        assert!(verify_placement(&topo, &infra, &state, &p).unwrap().is_empty());
        assert_eq!(
            reserved_bandwidth(&topo, &infra, &p),
            Bandwidth::from_mbps(400) // 100 Mbps across 4 links
        );
    }

    #[test]
    fn detects_diversity_violation() {
        let (topo, infra, state) = fixtures();
        let p = Placement::new(vec![h(0), h(1)]); // same rack, zone wants racks
        let v = verify_placement(&topo, &infra, &state, &p).unwrap();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::Diversity { .. }));
        assert!(v[0].to_string().contains("insufficiently separated"));
    }

    #[test]
    fn detects_host_overcommit() {
        let (topo, infra, mut state) = fixtures();
        state.reserve_node(h(0), Resources::new(3, 8_000, 0)).unwrap();
        let p = Placement::new(vec![h(0), h(2)]);
        let v = verify_placement(&topo, &infra, &state, &p).unwrap();
        assert!(matches!(v[0], Violation::HostCapacity { host } if host == h(0)));
    }

    #[test]
    fn detects_link_overflow() {
        let (topo, infra, mut state) = fixtures();
        // Saturate h0's NIC.
        state.reserve_flow(&infra, h(0), h(1), Bandwidth::from_mbps(950)).unwrap();
        let p = Placement::new(vec![h(0), h(2)]);
        let v = verify_placement(&topo, &infra, &state, &p).unwrap();
        assert!(v.iter().any(|x| matches!(x, Violation::LinkCapacity { .. })));
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let (topo, infra, state) = fixtures();
        let p = Placement::new(vec![h(0)]);
        assert!(matches!(
            verify_placement(&topo, &infra, &state, &p),
            Err(PlacementError::SizeMismatch { expected: 2, actual: 1 })
        ));
    }

    #[test]
    fn colocated_reserved_bandwidth_is_zero() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 1, 1_024).unwrap();
        let c = b.vm("c", 1, 1_024).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        let topo = b.build().unwrap();
        let infra = InfrastructureBuilder::flat(
            "dc",
            1,
            1,
            Resources::new(4, 8_192, 100),
            Bandwidth::from_gbps(1),
            Bandwidth::from_gbps(10),
        )
        .build()
        .unwrap();
        let p = Placement::new(vec![h(0), h(0)]);
        assert_eq!(reserved_bandwidth(&topo, &infra, &p), Bandwidth::ZERO);
    }
}
