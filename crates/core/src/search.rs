//! Shared search state: the per-request context and the partial
//! placement paths the algorithms branch over.

use std::sync::OnceLock;

use ostro_datacenter::{
    CapacityState, CapacityTable, FxHashMap, HostId, Infrastructure, OverlayMark, OverlayState,
};
use ostro_model::{ApplicationTopology, DiversityLevel, NodeId, Resources};

use crate::error::PlacementError;
use crate::objective::{Normalizers, ObjectiveWeights};
use crate::request::PlacementRequest;

/// Sentinel meaning "node belongs to no symmetry group".
pub(crate) const NO_GROUP: u32 = u32::MAX;

/// Minimum hop costs needed to satisfy each diversity level on a given
/// infrastructure; used by the admissible heuristic.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SeparationCosts {
    host: u64,
    rack: u64,
    pod: u64,
    site: u64,
}

/// Hop cost stand-in for a separation the infrastructure cannot provide
/// at all; large but safe against overflow when multiplied by Mbps.
pub(crate) const INFEASIBLE_COST: u64 = 1 << 20;

impl SeparationCosts {
    pub(crate) fn compute(infra: &Infrastructure) -> Self {
        // Cheapest cross-site flow: NICs + ToRs + per-side pod uplink
        // (0 if the site has a transparent pod) + site uplinks.
        let site = if infra.sites().len() >= 2 {
            let mut side: Vec<u64> = infra
                .sites()
                .iter()
                .map(|s| {
                    let all_real = s.pods().iter().all(|&p| !infra.pod(p).is_transparent());
                    u64::from(all_real)
                })
                .collect();
            side.sort_unstable();
            4 + side[0] + side[1] + 2
        } else {
            INFEASIBLE_COST
        };
        // Cheapest cross-pod flow within one site.
        let pod = infra
            .sites()
            .iter()
            .filter(|s| s.pods().len() >= 2)
            .map(|s| {
                let mut contrib: Vec<u64> =
                    s.pods().iter().map(|&p| u64::from(!infra.pod(p).is_transparent())).collect();
                contrib.sort_unstable();
                4 + contrib[0] + contrib[1]
            })
            .min()
            .unwrap_or(site);
        let rack = if infra.pods().iter().any(|p| p.racks().len() >= 2) { 4 } else { pod };
        let host = if infra.racks().iter().any(|r| r.hosts().len() >= 2) { 2 } else { rack };
        SeparationCosts { host, rack, pod, site }
    }

    /// The cheapest hop cost of any placement separating two nodes at
    /// `level` (`None` = no constraint, co-location possible).
    pub(crate) fn min_cost(&self, level: Option<DiversityLevel>) -> u64 {
        match level {
            None => 0,
            Some(DiversityLevel::Host) => self.host,
            Some(DiversityLevel::Rack) => self.rack,
            Some(DiversityLevel::Pod) => self.pod,
            Some(DiversityLevel::DataCenter) => self.site,
        }
    }
}

/// Everything immutable the search needs, precomputed once per request.
pub(crate) struct Ctx<'a> {
    pub topo: &'a ApplicationTopology,
    pub infra: &'a Infrastructure,
    pub base: &'a CapacityState,
    pub weights: ObjectiveWeights,
    pub norm: Normalizers,
    /// Node placement order: pinned nodes first, then by descending
    /// relative weight (Algorithm 1's `Sort(V)`).
    pub order: Vec<NodeId>,
    /// Number of leading entries of `order` that are pinned.
    pub pinned_prefix: usize,
    /// Per node: the host it is pinned to (online re-placement).
    pub pinned: Vec<Option<HostId>>,
    /// Imaginary-host capacity: the max real host capacity (§III-A2).
    pub max_capacity: Resources,
    /// Symmetry group per node (`NO_GROUP` if none).
    pub sym_group: Vec<u32>,
    /// Remaining nodes pre-sorted by descending incident bandwidth,
    /// for the heuristic's `Sort by bandwidth requirement`.
    pub bw_order: Vec<NodeId>,
    pub parallel: bool,
    /// Whether candidate scoring includes the heuristic lower bound.
    pub use_estimate: bool,
    /// Resolved scoring participant count (request knob, or
    /// `available_parallelism` when the request said 0).
    pub score_threads: usize,
    /// Whether heuristic bounds are memoized in [`Ctx::bound_cache`].
    pub memoize: bool,
    /// Per-search heuristic lower-bound memo: `(node, key)` → bound,
    /// where `key` folds the path's placement signature together with
    /// the candidate host's overlay group signature. Both components
    /// are restored exactly on rollback (the signature by
    /// [`Path::undo`], the group epoch by the overlay journal), so an
    /// entry written before a backtrack is still valid after it —
    /// every hit returns exactly what a cold evaluation would.
    pub(crate) bound_cache: std::sync::Mutex<FxHashMap<(u32, u64), u64>>,
    /// Persistent scoring workers, created lazily on the first
    /// over-threshold candidate set and reused for the whole run.
    /// Unused when a session provides its own longer-lived pool.
    pub(crate) pool: std::sync::OnceLock<crate::pool::ScoringPool>,
    /// Cross-request session state, when this request is served by a
    /// [`SchedulerSession`](crate::session::SchedulerSession).
    pub(crate) session: Option<&'a crate::session::SessionShared>,
    /// Structure signature of `topo` (see
    /// [`topology_signature`](crate::session::topology_signature));
    /// only computed — and only meaningful — when `session` is set.
    pub(crate) topo_sig: u64,
    /// Cache-aware ceiling on scoring chunk length, resolved from the
    /// request's `chunk_bytes` budget.
    pub(crate) chunk_cap: usize,
    /// Structure-of-arrays capacity columns, lazily synced to whichever
    /// overlay the candidate sweep is currently screening. One table per
    /// request: candidate enumeration is serial, so the lock is always
    /// uncontended; it exists only to keep `Ctx: Sync` for the pool.
    pub(crate) table: std::sync::Mutex<CapacityTable>,
    /// Per-topology-link minimum split cost (hop cost of the cheapest
    /// separation compatible with the endpoints' diversity constraints,
    /// floored at the plain host-split cost), aligned with
    /// `topo.links()`. Precomputed so the heuristic's edge-costing loop
    /// reads a flat column instead of re-deriving hop costs per call.
    pub(crate) link_costs: Vec<u64>,
    /// When set, candidate enumeration sweeps only this contiguous
    /// host-index range (the sharded per-pod search); hosts outside it
    /// are never candidates. `None` sweeps the whole fleet.
    pub(crate) host_range: Option<std::ops::Range<usize>>,
}

impl<'a> Ctx<'a> {
    pub(crate) fn new(
        topo: &'a ApplicationTopology,
        infra: &'a Infrastructure,
        base: &'a CapacityState,
        request: &PlacementRequest,
        pinned: Vec<Option<HostId>>,
    ) -> Result<Self, PlacementError> {
        Self::with_session(topo, infra, base, request, pinned, None)
    }

    pub(crate) fn with_session(
        topo: &'a ApplicationTopology,
        infra: &'a Infrastructure,
        base: &'a CapacityState,
        request: &PlacementRequest,
        pinned: Vec<Option<HostId>>,
        session: Option<&'a crate::session::SessionShared>,
    ) -> Result<Self, PlacementError> {
        request.weights.validate()?;
        debug_assert_eq!(pinned.len(), topo.node_count());
        let stats = topo.stats();
        let mut order: Vec<NodeId> = topo.nodes().iter().map(|n| n.id()).collect();
        // Sort descending by relative weight; stable tie-break on id so
        // symmetry-group members appear consecutively in id order.
        order.sort_by(|&a, &b| {
            let wa = stats.relative_weight(topo, a);
            let wb = stats.relative_weight(topo, b);
            wb.partial_cmp(&wa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        // Pinned nodes move to the front, preserving relative order.
        order.sort_by_key(|&n| pinned[n.index()].is_none());
        let pinned_prefix = pinned.iter().filter(|p| p.is_some()).count();

        let mut bw_order: Vec<NodeId> = topo.nodes().iter().map(|n| n.id()).collect();
        bw_order.sort_by(|&a, &b| {
            topo.incident_bandwidth(b).cmp(&topo.incident_bandwidth(a)).then(a.cmp(&b))
        });

        let max_capacity =
            infra.hosts().iter().map(|h| h.capacity()).fold(Resources::ZERO, Resources::max);

        let sym_group = if request.zone_symmetry {
            symmetry_groups(topo)
        } else {
            vec![NO_GROUP; topo.node_count()]
        };

        let sep_costs = SeparationCosts::compute(infra);
        let min_split_cost = sep_costs.min_cost(Some(DiversityLevel::Host));
        let link_costs = topo
            .links()
            .iter()
            .map(|link| {
                let (a, b) = link.endpoints();
                sep_costs.min_cost(topo.required_separation(a, b)).max(min_split_cost)
            })
            .collect();
        // Session requests clone the shared base-mirror table (kept
        // fresh by dirty-host refresh); one-shot requests build it from
        // the base state directly.
        let table = match session {
            Some(shared) => shared.table.clone(),
            None => CapacityTable::new(infra, base),
        };
        Ok(Ctx {
            topo,
            infra,
            base,
            weights: request.weights,
            norm: Normalizers::compute(topo, infra, base),
            order,
            pinned_prefix,
            pinned,
            max_capacity,
            sym_group,
            bw_order,
            parallel: request.parallel,
            use_estimate: request.use_estimate,
            score_threads: resolve_score_threads(request.score_threads),
            memoize: request.memoize_bounds && request.use_estimate,
            bound_cache: std::sync::Mutex::new(FxHashMap::default()),
            pool: std::sync::OnceLock::new(),
            topo_sig: if session.is_some() { crate::session::topology_signature(topo) } else { 0 },
            session,
            chunk_cap: resolve_chunk_cap(request.chunk_bytes),
            table: std::sync::Mutex::new(table),
            link_costs,
            host_range: None,
        })
    }

    /// The candidate sweep's host-index range: the restriction when one
    /// is set, the whole fleet otherwise.
    pub(crate) fn sweep_range(&self) -> std::ops::Range<usize> {
        match &self.host_range {
            Some(r) => r.clone(),
            None => 0..self.infra.host_count(),
        }
    }

    /// The scoring pool serving this request: the session's persistent
    /// pool when one is attached (workers and scratch survive across
    /// requests), else this context's per-request pool. Thread count
    /// only affects how the work is split, never its result, so a
    /// session pool sized by its first request stays correct for all.
    pub(crate) fn scoring_pool(&self) -> &crate::pool::ScoringPool {
        let cell = match self.session {
            Some(shared) => &shared.pool,
            None => &self.pool,
        };
        cell.get_or_init(|| crate::pool::ScoringPool::new(self.score_threads))
    }

    /// Cache key for `node`'s heuristic bound against a candidate host
    /// whose overlay group signature is `host_sig`, on the placement
    /// `path` currently encodes. Two candidate hosts with equal group
    /// signatures share a key — and, because [`lower_bound_mbps`]
    /// never consults host identity (only availabilities and minimum
    /// separation costs), they share the exact bound.
    ///
    /// [`lower_bound_mbps`]: crate::heuristic::lower_bound_mbps
    pub(crate) fn bound_key(node: NodeId, path_signature: u64, host_sig: u64) -> (u32, u64) {
        (node.index() as u32, mix64(path_signature ^ mix64(host_sig)))
    }

    /// Normalized objective of a (possibly partial) usage.
    pub(crate) fn objective(&self, ubw_mbps: u64, new_hosts: usize) -> f64 {
        self.norm.objective(self.weights, ubw_mbps, new_hosts)
    }
}

/// Groups interchangeable nodes: same requirements, same diversity-zone
/// membership (non-empty), and identical links to every third node
/// (§III-B3's assumption, verified rather than assumed).
fn symmetry_groups(topo: &ApplicationTopology) -> Vec<u32> {
    let n = topo.node_count();
    let mut group = vec![NO_GROUP; n];
    let mut next_group = 0u32;
    // Representative node of each open group.
    let mut reps: Vec<NodeId> = Vec::new();
    for node in topo.nodes() {
        let id = node.id();
        if topo.zones_of(id).is_empty() {
            continue;
        }
        let mut found = false;
        for (gi, &rep) in reps.iter().enumerate() {
            if interchangeable(topo, rep, id) {
                group[id.index()] = gi as u32;
                found = true;
                break;
            }
        }
        if !found {
            group[id.index()] = next_group;
            reps.push(id);
            next_group += 1;
        }
    }
    // Singleton groups are useless; clear them.
    let mut counts = vec![0u32; next_group as usize];
    for &g in &group {
        if g != NO_GROUP {
            counts[g as usize] += 1;
        }
    }
    for g in &mut group {
        if *g != NO_GROUP && counts[*g as usize] < 2 {
            *g = NO_GROUP;
        }
    }
    group
}

/// `true` if swapping `a` and `b` leaves the placement problem
/// unchanged: same kind and size, same zone set, and identical
/// bandwidth to every other node.
fn interchangeable(topo: &ApplicationTopology, a: NodeId, b: NodeId) -> bool {
    if topo.node(a).kind() != topo.node(b).kind() {
        return false;
    }
    let (za, zb) = (topo.zones_of(a), topo.zones_of(b));
    if za != zb {
        return false;
    }
    let mut na: Vec<(NodeId, _)> =
        topo.neighbors(a).iter().filter(|&&(n, _)| n != b).copied().collect();
    let mut nb: Vec<(NodeId, _)> =
        topo.neighbors(b).iter().filter(|&&(n, _)| n != a).copied().collect();
    na.sort_unstable();
    nb.sort_unstable();
    na == nb
}

/// One partial placement hypothesis: the paper's search path
/// `(V_p, H*_p, u_p)`.
#[derive(Clone, Debug)]
pub(crate) struct Path<'a> {
    pub overlay: OverlayState<'a>,
    /// Host per node; `None` while unplaced.
    pub assignment: Vec<Option<HostId>>,
    /// How many entries of `ctx.order` are placed (always a prefix).
    pub placed: usize,
    /// Accumulated hop-weighted bandwidth of placed-placed edges (Mbps·hops).
    pub ubw_mbps: u64,
    /// Normalized accumulated utility u\* of the placed prefix.
    pub u_star: f64,
    /// u\* plus the admissible heuristic lower bound.
    pub u_total: f64,
    /// Order-independent signature of the assignment set, for the
    /// closed queue.
    pub signature: u64,
    /// Per host: Mbps promised to edges between a resident node and a
    /// still-unplaced neighbor. The candidate screen reserves this
    /// headroom so placing more nodes never strands a resident's
    /// future edges behind a saturated NIC. Entries may sit at zero
    /// once fully consumed; only [`Path::promised_nic`] reads them.
    pub promised_nic: FxHashMap<HostId, u64>,
}

/// Everything needed to revert one [`Path::place_mut`] call: the
/// overlay journal position plus the scalar fields and `promised_nic`
/// entries the placement touched. Marks must be undone in LIFO order
/// (the overlay journal enforces this).
#[derive(Debug)]
pub(crate) struct PlacedMark {
    overlay: OverlayMark,
    node: NodeId,
    host: HostId,
    prev_ubw_mbps: u64,
    prev_u_star: f64,
    prev_u_total: f64,
    /// `promised_nic` entries this placement modified, oldest first,
    /// with their prior values (`None` = the key was absent).
    promised_prev: Vec<(HostId, Option<u64>)>,
}

impl<'a> Path<'a> {
    /// The empty root path (before pinned nodes are applied).
    pub(crate) fn empty(ctx: &Ctx<'a>) -> Self {
        Path {
            overlay: OverlayState::new(ctx.infra, ctx.base),
            assignment: vec![None; ctx.topo.node_count()],
            placed: 0,
            ubw_mbps: 0,
            u_star: 0.0,
            u_total: 0.0,
            signature: 0,
            promised_nic: FxHashMap::default(),
        }
    }

    /// A copy of this path whose overlay starts a fresh journal —
    /// cheaper than `clone()` when this path has a long undo history,
    /// and what arena snapshots should use.
    pub(crate) fn fork(&self) -> Path<'a> {
        Path {
            overlay: self.overlay.fork(),
            assignment: self.assignment.clone(),
            placed: self.placed,
            ubw_mbps: self.ubw_mbps,
            u_star: self.u_star,
            u_total: self.u_total,
            signature: self.signature,
            promised_nic: self.promised_nic.clone(),
        }
    }

    /// Mbps of NIC bandwidth promised to residents' future edges.
    pub(crate) fn promised_nic(&self, host: HostId) -> u64 {
        self.promised_nic.get(&host).copied().unwrap_or(0)
    }

    /// The next node this path must place, per the fixed order.
    pub(crate) fn next_node(&self, ctx: &Ctx<'a>) -> Option<NodeId> {
        ctx.order.get(self.placed).copied()
    }

    /// `true` once every node is placed.
    pub(crate) fn is_complete(&self, ctx: &Ctx<'a>) -> bool {
        self.placed == ctx.order.len()
    }

    /// Newly activated hosts under this hypothesis (the uc numerator).
    pub(crate) fn new_hosts(&self) -> usize {
        self.overlay.newly_active_hosts()
    }

    /// Materializes the child path that places `node` on `host`, by
    /// forking this path and applying the placement in place.
    ///
    /// Returns `None` if the combined reservations do not fit (the
    /// per-edge feasibility pre-check is necessary but not sufficient
    /// when several flows share links).
    pub(crate) fn place(&self, ctx: &Ctx<'a>, node: NodeId, host: HostId) -> Option<Path<'a>> {
        let mut child = self.fork();
        child.place_mut(ctx, node, host)?;
        Some(child)
    }

    /// Applies the placement of `node` on `host` to this path directly,
    /// returning a mark that [`undo`](Self::undo) reverts. Costs
    /// O(edges of `node`) instead of the O(placed prefix) a clone-based
    /// child would — this is the search kernel's child-expansion fast
    /// path.
    ///
    /// On failure the path is left exactly as it was (the partial
    /// reservations are rolled back internally) and `None` is returned.
    pub(crate) fn place_mut(
        &mut self,
        ctx: &Ctx<'a>,
        node: NodeId,
        host: HostId,
    ) -> Option<PlacedMark> {
        debug_assert_eq!(Some(node), self.next_node(ctx));
        let mut mark = PlacedMark {
            overlay: self.overlay.checkpoint(),
            node,
            host,
            prev_ubw_mbps: self.ubw_mbps,
            prev_u_star: self.u_star,
            prev_u_total: self.u_total,
            promised_prev: Vec::new(),
        };
        let req = ctx.topo.node(node).requirements();
        if self.overlay.reserve_node(host, req).is_err() {
            return None; // reserve_node is atomic; nothing to revert.
        }
        let mut added = 0u64;
        let mut future_mbps = 0u64;
        for &(neighbor, bw) in ctx.topo.neighbors(node) {
            if let Some(other_host) = self.assignment[neighbor.index()] {
                if self.overlay.reserve_flow(host, other_host, bw).is_err() {
                    self.revert_to(&mut mark);
                    return None;
                }
                added += bw.as_mbps() * ctx.infra.hop_cost(host, other_host);
                // The promise made when the neighbor was placed is now
                // either consumed (reserved above) or void (co-located).
                // The entry stays, possibly at zero — removing it here
                // and re-inserting on the next promise just churns the
                // map.
                if let Some(p) = self.promised_nic.get_mut(&other_host) {
                    mark.promised_prev.push((other_host, Some(*p)));
                    *p = p.saturating_sub(bw.as_mbps());
                }
            } else {
                future_mbps += bw.as_mbps();
            }
        }
        if future_mbps > 0 {
            mark.promised_prev.push((host, self.promised_nic.get(&host).copied()));
            *self.promised_nic.entry(host).or_insert(0) += future_mbps;
        }
        self.assignment[node.index()] = Some(host);
        self.placed += 1;
        self.ubw_mbps += added;
        self.u_star = ctx.objective(self.ubw_mbps, self.new_hosts());
        self.signature ^= pair_hash(node, host);
        Some(mark)
    }

    /// Reverts one [`place_mut`](Self::place_mut), restoring the path
    /// to the state observed when the mark was taken. Marks must be
    /// undone newest-first.
    pub(crate) fn undo(&mut self, mark: PlacedMark) {
        let mut mark = mark;
        self.assignment[mark.node.index()] = None;
        self.placed -= 1;
        self.signature ^= pair_hash(mark.node, mark.host);
        self.revert_to(&mut mark);
    }

    /// Restores the overlay, promises, and scalar cost fields recorded
    /// in `mark` (shared by `undo` and `place_mut`'s failure path).
    fn revert_to(&mut self, mark: &mut PlacedMark) {
        self.overlay.rollback(mark.overlay);
        for (host, prev) in mark.promised_prev.drain(..).rev() {
            match prev {
                Some(v) => {
                    self.promised_nic.insert(host, v);
                }
                None => {
                    self.promised_nic.remove(&host);
                }
            }
        }
        self.ubw_mbps = mark.prev_ubw_mbps;
        self.u_star = mark.prev_u_star;
        self.u_total = mark.prev_u_total;
    }

    /// The original clone-per-child expansion, kept as the reference
    /// implementation: tests assert it agrees with
    /// [`place_mut`](Self::place_mut), and the kernel benchmark
    /// measures the speedup against it.
    #[cfg(any(test, feature = "clone-baseline"))]
    pub(crate) fn place_via_clone(
        &self,
        ctx: &Ctx<'a>,
        node: NodeId,
        host: HostId,
    ) -> Option<Path<'a>> {
        debug_assert_eq!(Some(node), self.next_node(ctx));
        let mut child = self.clone();
        let req = ctx.topo.node(node).requirements();
        child.overlay.reserve_node(host, req).ok()?;
        let mut added = 0u64;
        let mut future_mbps = 0u64;
        for &(neighbor, bw) in ctx.topo.neighbors(node) {
            if let Some(other_host) = child.assignment[neighbor.index()] {
                child.overlay.reserve_flow(host, other_host, bw).ok()?;
                added += bw.as_mbps() * ctx.infra.hop_cost(host, other_host);
                if let Some(p) = child.promised_nic.get_mut(&other_host) {
                    *p = p.saturating_sub(bw.as_mbps());
                    if *p == 0 {
                        child.promised_nic.remove(&other_host);
                    }
                }
            } else {
                future_mbps += bw.as_mbps();
            }
        }
        if future_mbps > 0 {
            *child.promised_nic.entry(host).or_insert(0) += future_mbps;
        }
        child.assignment[node.index()] = Some(host);
        child.placed += 1;
        child.ubw_mbps += added;
        child.u_star = ctx.objective(child.ubw_mbps, child.new_hosts());
        child.signature ^= pair_hash(node, host);
        Some(child)
    }

    /// The cost delta and feasibility of placing `node` on `host`,
    /// *without* materializing the child (used to score candidates).
    /// Returns the added hop-weighted Mbps, or `None` if an edge fails
    /// its individual feasibility check.
    pub(crate) fn probe(&self, ctx: &Ctx<'a>, node: NodeId, host: HostId) -> Option<u64> {
        let mut added = 0u64;
        let mut nic_demand = ostro_model::Bandwidth::ZERO;
        for &(neighbor, bw) in ctx.topo.neighbors(node) {
            if let Some(other_host) = self.assignment[neighbor.index()] {
                if !self.overlay.flow_fits(host, other_host, bw) {
                    return None;
                }
                if other_host != host {
                    nic_demand += bw;
                }
                added += bw.as_mbps() * ctx.infra.hop_cost(host, other_host);
            }
        }
        // Every off-host flow shares this host's NIC; the per-edge
        // checks above cannot see their sum.
        use ostro_datacenter::LinkRef;
        if nic_demand > self.overlay.link_available(LinkRef::HostNic(host)) {
            return None;
        }
        Some(added)
    }
}

/// Commutative hash of one (node, host) decision; XOR-combined into an
/// order-independent placement signature.
pub(crate) fn pair_hash(node: NodeId, host: HostId) -> u64 {
    let x = ((node.index() as u64) << 32) | host.index() as u64;
    mix64(x)
}

/// splitmix64 finalizer: the repo's standard bit mixer.
pub(crate) fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Resolves the request's `score_threads` knob: 0 means "ask the OS",
/// capped so an accidental 256-core box does not spawn 255 scoring
/// workers for candidate sets that rarely exceed a few thousand.
pub(crate) fn resolve_score_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(16)
}

/// Approximate bytes one candidate's scoring touches: the
/// `ScoredCandidate` written, the host's availability row, NIC/link
/// headroom, and the hash-map probes the bound lookup makes. Used only
/// to size chunks, so it needs to be the right magnitude, not exact.
const BYTES_PER_CANDIDATE: usize = 192;

/// Fallback per-chunk cache budget when the core topology cannot be
/// read: a conservative slice of a typical per-core L2 (256 KiB keeps
/// a chunk resident even on older parts).
const DEFAULT_CHUNK_BYTES: usize = 256 * 1024;

/// Bounds on the detected budget: below 128 KiB chunking overhead
/// dominates; above 2 MiB a chunk stops fitting any realistic
/// mid-level cache slice and locality is lost anyway.
const MIN_CHUNK_BYTES: usize = 128 * 1024;
const MAX_CHUNK_BYTES: usize = 2 * 1024 * 1024;

/// The per-chunk budget when `--chunk-bytes` is unset: each core's
/// *share* of the mid-level (L2) cache, detected once from the core
/// topology sysfs exports. On parts with a private L2 this is the
/// whole L2; on parts sharing L2 across a module (or under SMT
/// sharing) it is the slice one scoring worker can actually keep
/// resident. Detection failure (non-Linux, masked sysfs) falls back to
/// the conservative 256 KiB default.
fn detected_chunk_bytes() -> usize {
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        detect_cache_budget()
            .map_or(DEFAULT_CHUNK_BYTES, |b| b.clamp(MIN_CHUNK_BYTES, MAX_CHUNK_BYTES))
    })
}

/// One core's share of the L2: `cache/index2/size` divided by how many
/// CPUs `shared_cpu_list` says share that cache instance.
#[cfg(target_os = "linux")]
fn detect_cache_budget() -> Option<usize> {
    let base = "/sys/devices/system/cpu/cpu0/cache/index2";
    let size = parse_cache_size(&std::fs::read_to_string(format!("{base}/size")).ok()?)?;
    let sharers =
        parse_cpu_list_len(&std::fs::read_to_string(format!("{base}/shared_cpu_list")).ok()?)?;
    Some(size / sharers.max(1))
}

#[cfg(not(target_os = "linux"))]
fn detect_cache_budget() -> Option<usize> {
    None
}

/// Parses sysfs cache sizes: `"2048K"`, `"1M"`, or a bare byte count.
fn parse_cache_size(raw: &str) -> Option<usize> {
    let s = raw.trim();
    if let Some(kib) = s.strip_suffix(['K', 'k']) {
        return kib.parse::<usize>().ok().map(|v| v * 1024);
    }
    if let Some(mib) = s.strip_suffix(['M', 'm']) {
        return mib.parse::<usize>().ok().map(|v| v * 1024 * 1024);
    }
    s.parse().ok()
}

/// Counts CPUs in a sysfs cpu list (`"0"`, `"0-3"`, `"0,2-5,7"`).
fn parse_cpu_list_len(raw: &str) -> Option<usize> {
    let mut count = 0usize;
    for part in raw.trim().split(',').filter(|p| !p.is_empty()) {
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: usize = lo.trim().parse().ok()?;
                let hi: usize = hi.trim().parse().ok()?;
                count += hi.checked_sub(lo)? + 1;
            }
            None => {
                let _: usize = part.trim().parse().ok()?;
                count += 1;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(count)
    }
}

/// Resolves the request's `chunk_bytes` knob (0 = the detected
/// per-core cache budget) into a ceiling on candidates per scoring
/// chunk. Chunking never changes results — chunks are concatenated in
/// host order — so this is purely a locality lever.
fn resolve_chunk_cap(chunk_bytes: usize) -> usize {
    let budget = if chunk_bytes == 0 { detected_chunk_bytes() } else { chunk_bytes };
    (budget / BYTES_PER_CANDIDATE).max(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{Bandwidth, TopologyBuilder};

    fn infra_flat(racks: usize, hosts: usize) -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            racks,
            hosts,
            Resources::new(16, 32_768, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("2048K\n"), Some(2048 * 1024));
        assert_eq!(parse_cache_size("1M"), Some(1024 * 1024));
        assert_eq!(parse_cache_size("524288"), Some(524_288));
        assert_eq!(parse_cache_size("huge"), None);
        assert_eq!(parse_cache_size(""), None);
    }

    #[test]
    fn cpu_list_parsing() {
        assert_eq!(parse_cpu_list_len("0\n"), Some(1));
        assert_eq!(parse_cpu_list_len("0-3"), Some(4));
        assert_eq!(parse_cpu_list_len("0,2-5,7"), Some(6));
        assert_eq!(parse_cpu_list_len("3-0"), None);
        assert_eq!(parse_cpu_list_len(""), None);
    }

    #[test]
    fn detected_budget_is_clamped_and_stable() {
        let detected = detected_chunk_bytes();
        assert!((MIN_CHUNK_BYTES..=MAX_CHUNK_BYTES).contains(&detected));
        assert_eq!(detected_chunk_bytes(), detected);
        // An explicit knob always wins over detection.
        assert_eq!(resolve_chunk_cap(192 * 1024), 192 * 1024 / BYTES_PER_CANDIDATE);
        assert_eq!(resolve_chunk_cap(0), detected / BYTES_PER_CANDIDATE);
    }

    #[test]
    fn separation_costs_flat_site() {
        let infra = infra_flat(3, 4);
        let costs = SeparationCosts::compute(&infra);
        assert_eq!(costs.min_cost(None), 0);
        assert_eq!(costs.min_cost(Some(DiversityLevel::Host)), 2);
        assert_eq!(costs.min_cost(Some(DiversityLevel::Rack)), 4);
        // Single transparent pod, single site: pod/DC diversity infeasible.
        assert_eq!(costs.min_cost(Some(DiversityLevel::Pod)), INFEASIBLE_COST);
        assert_eq!(costs.min_cost(Some(DiversityLevel::DataCenter)), INFEASIBLE_COST);
    }

    #[test]
    fn separation_costs_with_pods_and_sites() {
        let mut b = InfrastructureBuilder::new();
        let cap = Resources::new(8, 8_192, 100);
        for s in 0..2 {
            let site = b.site(format!("s{s}"), Bandwidth::from_gbps(100));
            for p in 0..2 {
                let pod = b.pod(site, format!("s{s}p{p}"), Bandwidth::from_gbps(40)).unwrap();
                let rack =
                    b.rack_in_pod(pod, format!("s{s}p{p}r"), Bandwidth::from_gbps(100)).unwrap();
                b.host(rack, format!("s{s}p{p}h"), cap, Bandwidth::from_gbps(10)).unwrap();
            }
        }
        let infra = b.build().unwrap();
        let costs = SeparationCosts::compute(&infra);
        // One host per rack: host diversity needs a rack change... but
        // racks are one per pod, so it needs a pod change.
        assert_eq!(costs.min_cost(Some(DiversityLevel::Host)), 6);
        assert_eq!(costs.min_cost(Some(DiversityLevel::Rack)), 6);
        assert_eq!(costs.min_cost(Some(DiversityLevel::Pod)), 6);
        // Cross-site: 4 + 1 + 1 + 2 (all pods real).
        assert_eq!(costs.min_cost(Some(DiversityLevel::DataCenter)), 8);
    }

    fn simple_ctx_fixture() -> (ApplicationTopology, Infrastructure) {
        let mut b = TopologyBuilder::new("t");
        let big = b.vm("big", 8, 16_384).unwrap();
        let small = b.vm("small", 1, 1_024).unwrap();
        let vol = b.volume("vol", 100).unwrap();
        b.link(big, small, Bandwidth::from_mbps(100)).unwrap();
        b.link(big, vol, Bandwidth::from_mbps(200)).unwrap();
        (b.build().unwrap(), infra_flat(2, 2))
    }

    #[test]
    fn order_is_heaviest_first() {
        let (topo, infra) = simple_ctx_fixture();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        assert_eq!(ctx.order[0], topo.node_by_name("big").unwrap().id());
        assert_eq!(ctx.pinned_prefix, 0);
        // bw_order: big (300) first, then vol (200), then small (100).
        assert_eq!(ctx.bw_order[0], topo.node_by_name("big").unwrap().id());
        assert_eq!(ctx.bw_order[1], topo.node_by_name("vol").unwrap().id());
    }

    #[test]
    fn pinned_nodes_lead_the_order() {
        let (topo, infra) = simple_ctx_fixture();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let small = topo.node_by_name("small").unwrap().id();
        let mut pinned = vec![None; 3];
        pinned[small.index()] = Some(HostId::from_index(1));
        let ctx = Ctx::new(&topo, &infra, &base, &req, pinned).unwrap();
        assert_eq!(ctx.order[0], small);
        assert_eq!(ctx.pinned_prefix, 1);
    }

    #[test]
    fn place_accumulates_cost_and_signature() {
        let (topo, infra) = simple_ctx_fixture();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        let root = Path::empty(&ctx);
        assert_eq!(root.next_node(&ctx), Some(ctx.order[0]));

        let h0 = HostId::from_index(0);
        let h2 = HostId::from_index(2); // different rack
        let p1 = root.place(&ctx, ctx.order[0], h0).unwrap();
        assert_eq!(p1.placed, 1);
        assert_eq!(p1.ubw_mbps, 0);
        assert_eq!(p1.new_hosts(), 1);

        let next = p1.next_node(&ctx).unwrap();
        let probe_same = p1.probe(&ctx, next, h0).unwrap();
        let probe_far = p1.probe(&ctx, next, h2).unwrap();
        assert_eq!(probe_same, 0);
        // next is `vol` (200 Mbps to big) at hop cost 4.
        assert!(probe_far > 0);

        let p2 = p1.place(&ctx, next, h2).unwrap();
        assert_eq!(p2.ubw_mbps, probe_far);
        assert!(p2.u_star > p1.u_star);
        assert_ne!(p2.signature, p1.signature);
        assert!(!p2.is_complete(&ctx));
    }

    #[test]
    fn place_rejects_overflow() {
        let (topo, infra) = simple_ctx_fixture();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        let root = Path::empty(&ctx);
        let h0 = HostId::from_index(0);
        let p1 = root.place(&ctx, ctx.order[0], h0).unwrap();
        // big took 8 of 16 vCPUs; second node is the volume (disk
        // only); third (small) fits. Saturate by placing big again is
        // impossible; instead verify a too-big reservation fails via
        // overlay state — emulate by exhausting vCPUs.
        let mut ov = p1.overlay.clone();
        ov.reserve_node(h0, Resources::new(8, 16_384, 0)).unwrap();
        assert!(ov.reserve_node(h0, Resources::new(1, 1, 0)).is_err());
    }

    /// Asserts two paths are observably identical: same scalars, same
    /// assignment, same promises, and same availability on every host
    /// and NIC.
    fn assert_paths_identical(infra: &Infrastructure, a: &Path<'_>, b: &Path<'_>, what: &str) {
        assert_eq!(a.placed, b.placed, "{what}: placed");
        assert_eq!(a.assignment, b.assignment, "{what}: assignment");
        assert_eq!(a.ubw_mbps, b.ubw_mbps, "{what}: ubw");
        assert_eq!(a.u_star.to_bits(), b.u_star.to_bits(), "{what}: u_star");
        assert_eq!(a.signature, b.signature, "{what}: signature");
        for host in infra.hosts() {
            let id = host.id();
            assert_eq!(a.promised_nic(id), b.promised_nic(id), "{what}: promise {id}");
            assert_eq!(a.overlay.available(id), b.overlay.available(id), "{what}: avail {id}");
            assert_eq!(
                a.overlay.link_available(ostro_datacenter::LinkRef::HostNic(id)),
                b.overlay.link_available(ostro_datacenter::LinkRef::HostNic(id)),
                "{what}: nic {id}"
            );
            assert_eq!(a.overlay.is_active(id), b.overlay.is_active(id), "{what}: active {id}");
        }
        assert_eq!(a.new_hosts(), b.new_hosts(), "{what}: new hosts");
    }

    /// The delta-undo expansion and the clone-based reference produce
    /// byte-identical children on every (node, host) choice of a walk.
    #[test]
    fn place_mut_matches_clone_based_expansion() {
        let (topo, infra) = simple_ctx_fixture();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        let hosts: Vec<HostId> = infra.hosts().iter().map(|h| h.id()).collect();

        let mut delta = Path::empty(&ctx);
        let mut reference = Path::empty(&ctx);
        for step in 0..ctx.order.len() {
            let node = delta.next_node(&ctx).unwrap();
            // Probe every host both ways before committing to one.
            for &host in &hosts {
                let via_clone = reference.place_via_clone(&ctx, node, host);
                let mut trial = delta.fork();
                match trial.place_mut(&ctx, node, host) {
                    Some(_) => {
                        let clone_child = via_clone.expect("clone path must also admit");
                        assert_paths_identical(
                            &infra,
                            &trial,
                            &clone_child,
                            &format!("step {step} host {host}"),
                        );
                    }
                    None => assert!(via_clone.is_none(), "step {step} host {host}: admission"),
                }
            }
            let host = hosts[step % hosts.len()];
            let mark = delta.place_mut(&ctx, node, host);
            let clone_child = reference.place_via_clone(&ctx, node, host);
            assert_eq!(mark.is_some(), clone_child.is_some(), "step {step}");
            if let Some(child) = clone_child {
                reference = child;
                assert_paths_identical(&infra, &delta, &reference, &format!("step {step}"));
            }
        }
    }

    /// place_mut followed by undo restores the path exactly, including
    /// after failed placements (which must self-revert).
    #[test]
    fn undo_reverts_place_mut_exactly() {
        let (topo, infra) = simple_ctx_fixture();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        let hosts: Vec<HostId> = infra.hosts().iter().map(|h| h.id()).collect();

        let mut path = Path::empty(&ctx);
        // Put one node down so later trials touch promises.
        let n0 = path.next_node(&ctx).unwrap();
        path.place_mut(&ctx, n0, hosts[0]).unwrap();
        let reference = path.fork();

        let node = path.next_node(&ctx).unwrap();
        for &host in &hosts {
            if let Some(mark) = path.place_mut(&ctx, node, host) {
                path.undo(mark);
            }
            assert_paths_identical(&infra, &path, &reference, &format!("undo on {host}"));
        }
    }

    /// The NIC promise made for a resident's future edge is consumed
    /// when the neighbor lands on a remote host, and voided when the
    /// neighbor co-locates — in both cases the entry drains without
    /// churning the map, and undo restores it.
    #[test]
    fn promises_are_consumed_or_voided() {
        let mut b = TopologyBuilder::new("t");
        let hub = b.vm("hub", 4, 4_096).unwrap();
        let w1 = b.vm("w1", 1, 1_024).unwrap();
        let w2 = b.vm("w2", 1, 1_024).unwrap();
        b.link(hub, w1, Bandwidth::from_mbps(300)).unwrap();
        b.link(hub, w2, Bandwidth::from_mbps(200)).unwrap();
        let topo = b.build().unwrap();
        let infra = infra_flat(2, 2);
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        assert_eq!(ctx.order[0], hub, "hub is heaviest and goes first");

        let h0 = HostId::from_index(0);
        let h2 = HostId::from_index(2); // different rack
        let mut path = Path::empty(&ctx);
        path.place_mut(&ctx, hub, h0).unwrap();
        // Both edges are still open: the full 500 Mbps is promised.
        assert_eq!(path.promised_nic(h0), 500);

        // Remote placement consumes w1's share of the promise and
        // reserves the flow for real.
        let next = path.next_node(&ctx).unwrap();
        let (first_bw, second_bw) = if next == w1 { (300, 200) } else { (200, 300) };
        let mark = path.place_mut(&ctx, next, h2).unwrap();
        assert_eq!(path.promised_nic(h0), second_bw);
        assert_eq!(
            path.overlay.link_available(ostro_datacenter::LinkRef::HostNic(h0)),
            Bandwidth::from_mbps(10_000 - first_bw)
        );
        path.undo(mark);
        assert_eq!(path.promised_nic(h0), 500, "undo restores the promise");

        // Co-location voids the promise instead: nothing is reserved,
        // but the promise still drains.
        let mid_mark = path.place_mut(&ctx, next, h0).unwrap();
        assert_eq!(path.promised_nic(h0), second_bw);
        assert_eq!(
            path.overlay.link_available(ostro_datacenter::LinkRef::HostNic(h0)),
            Bandwidth::from_gbps(10),
            "co-located edge reserves no NIC bandwidth"
        );
        let last = path.next_node(&ctx).unwrap();
        let last_mark = path.place_mut(&ctx, last, h0).unwrap();
        assert_eq!(path.promised_nic(h0), 0, "all promises drained");

        // LIFO undo walks back through both promise states.
        path.undo(last_mark);
        assert_eq!(path.promised_nic(h0), second_bw);
        path.undo(mid_mark);
        assert_eq!(path.promised_nic(h0), 500);
    }

    #[test]
    fn signature_is_order_independent() {
        let a = pair_hash(NodeId::from_index(1), HostId::from_index(2));
        let b = pair_hash(NodeId::from_index(3), HostId::from_index(4));
        assert_eq!(a ^ b, b ^ a);
        assert_ne!(a, b);
    }

    #[test]
    fn symmetry_groups_require_identical_links_and_zones() {
        let mut b = TopologyBuilder::new("t");
        let hub = b.vm("hub", 2, 2_048).unwrap();
        let w1 = b.vm("w1", 1, 1_024).unwrap();
        let w2 = b.vm("w2", 1, 1_024).unwrap();
        let w3 = b.vm("w3", 2, 2_048).unwrap(); // different size
        let lone = b.vm("lone", 1, 1_024).unwrap(); // no zone
        for &w in &[w1, w2, w3] {
            b.link(hub, w, Bandwidth::from_mbps(50)).unwrap();
        }
        b.link(hub, lone, Bandwidth::from_mbps(50)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &[w1, w2, w3]).unwrap();
        let topo = b.build().unwrap();
        let groups = symmetry_groups(&topo);
        assert_eq!(groups[w1.index()], groups[w2.index()]);
        assert_ne!(groups[w1.index()], NO_GROUP);
        assert_eq!(groups[w3.index()], NO_GROUP); // size differs -> singleton
        assert_eq!(groups[lone.index()], NO_GROUP);
        assert_eq!(groups[hub.index()], NO_GROUP);
    }
}
