//! The concurrent placement service: optimistic
//! snapshot-plan / validate-commit scheduling over one
//! [`SchedulerSession`].
//!
//! A [`SchedulerSession`] is a `&mut self` world — every request
//! serializes through it, so sustained throughput is capped at
//! single-planner speed no matter how fast one scoring round is. The
//! [`PlacementService`] splits each request into two phases:
//!
//! 1. **Snapshot-plan** — the planner grabs the current
//!    [`PlanSnapshot`] (an epoch-stamped, immutable copy of the
//!    committed books plus the session's summaries and capacity-table
//!    columns; the value-keyed bound cache is *shared*, not copied)
//!    and solves against it with no lock held. Any number of planners
//!    plan concurrently against the same snapshot.
//! 2. **Validate-commit** — under the single commit lock, the planned
//!    hosts' per-host epochs are compared with the snapshot's. If no
//!    planned host changed since the snapshot, the decision commits:
//!    the session applies it (journaling dirty hosts and appending to
//!    the WAL, which makes the commit *order* durable), the touched
//!    hosts' epochs advance to the new commit sequence number, and a
//!    fresh snapshot is published. The lock is held only for the cheap
//!    apply — never for planning.
//!
//! Validation is two-level. Epoch cleanliness is the fast path: a
//! clean decision's books are exactly what it planned against, so its
//! commit is guaranteed to apply and its objective is exact. An
//! epoch-**stale** decision is not rejected outright — under a packing
//! objective every concurrent planner wants the same attractive hosts,
//! so strict staleness-equals-conflict degenerates the pipeline to
//! serial. Instead (with [`ServiceConfig::admit_stale`], the default)
//! the session's all-or-nothing commit re-validates the decision
//! against the *live* books: if capacity and every link still admit
//! it, it commits — its objective drifts by at most what raced in
//! ahead of it. Only a decision the live books no longer admit is a
//! **conflict**: the loser re-plans against a fresh snapshot, up to
//! [`ServiceConfig::max_retries`] times, then plans *serialized* under
//! the commit lock, where it cannot lose again. Host epochs alone are
//! never sufficient — a concurrent commit elsewhere in a rack can
//! saturate a shared uplink a "clean" plan relied on — so the session
//! commit remains the authoritative check in every path, and a commit
//! failure against a moved sequence number is a conflict too.
//!
//! One caveat of stale admission: the commit re-validates *capacity*,
//! not candidacy policy. The service exposes no quarantine entry
//! point, so this cannot currently admit a decision onto a host some
//! concurrent operation disqualified; if the service ever grows such
//! an entry point, quarantine must join the epoch check.
//!
//! **Admission batching**: [`PlacementService::serve`] runs a planner
//! pool behind a FIFO queue. Each planner pops up to
//! [`ServiceConfig::batch`] jobs, plans them all against *one*
//! snapshot, detects host-set overlap between batch members up front
//! (a later member overlapping an earlier one's hosts would lose
//! validation anyway, so it goes straight to the retry path without
//! entering the lock), then takes the commit lock **once** for the
//! whole batch and publishes **one** snapshot. With
//! [`ServiceConfig::durable_acks`] the batch also fsyncs the WAL once
//! before any of its responses are delivered — group commit: a
//! delivered `Placed` is durable.
//!
//! # What the service guarantees
//!
//! Commits are **linearized** by the commit sequence number: the final
//! books equal a serial replay of the committed decisions in sequence
//! order over the base state, and every decision was feasible at its
//! commit point (the session's all-or-nothing commit checked it while
//! holding the lock). With one planner and batch size 1 the pipeline
//! degenerates to the serial warm-session path and decisions are
//! bit-identical to [`SchedulerSession::place`] — `scripts/verify.sh`
//! diffs the two decision digests on every run.
//!
//! Concurrent planners run their searches with request-level
//! parallelism instead of intra-request scoring parallelism
//! ([`PlacementRequest::parallel`] is forced off in
//! [`plan`](PlacementService::plan)): a scoring pool serves one search
//! at a time, and parallel-vs-serial scoring is bit-identical anyway.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::ApplicationTopology;
use serde::{Deserialize, Serialize};

use crate::deadline::BudgetStamp;
use crate::defrag::{MaintenanceLoad, MaintenancePlane, MaintenanceTick, TenantRecord};
use crate::error::PlacementError;
use crate::placement::{Placement, PlacementOutcome};
use crate::pool::lock_unpoisoned;
use crate::request::PlacementRequest;
use crate::scheduler::Scheduler;
use crate::session::{avail_signature, HostSummary, SchedulerSession, SessionShared};
use crate::wal::WalMark;

/// Tuning for a [`PlacementService`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Planner threads [`serve`](PlacementService::serve) runs.
    pub planners: usize,
    /// Maximum jobs one planner plans against a single snapshot (and
    /// commits under a single lock acquisition).
    pub batch: usize,
    /// Optimistic re-plans a losing request is granted before it falls
    /// back to planning serialized under the commit lock.
    pub max_retries: u32,
    /// Admit epoch-stale decisions whose commit still succeeds against
    /// the live books (see the module docs). `false` demands strict
    /// epoch cleanliness — every stale decision re-plans, which keeps
    /// objectives snapshot-exact but collapses throughput under
    /// packing objectives where every planner wants the same hosts.
    pub admit_stale: bool,
    /// When a WAL is attached: fsync once per commit-lock acquisition,
    /// *before* responses are delivered, so an acknowledged commit is
    /// durable (group commit). Without a WAL this is a no-op.
    pub durable_acks: bool,
    /// Bound on the ingress queue [`serve`](PlacementService::serve)
    /// runs behind: a placement submitted while this many jobs are
    /// already queued is shed at the door with
    /// [`PlacementError::QueueFull`]. Releases are always admitted —
    /// shedding a release would leak capacity. `0` (the default) is
    /// the legacy unbounded queue.
    #[serde(default)]
    pub queue_depth: usize,
    /// Per-request deadline budget in milliseconds: a placement that
    /// has already waited this long in the ingress queue is shed
    /// before planning with [`PlacementError::DeadlineExceeded`]. `0`
    /// (the default) disables budgets.
    #[serde(default)]
    pub deadline_ms: u64,
    /// Virtual microseconds one submission tick represents. `0` (the
    /// default) measures queue age on the wall clock; non-zero
    /// replaces it with the service's submission-tick counter — the
    /// queue-level analogue of the search's virtual deadline clock —
    /// so deadline shedding becomes a pure function of the submission
    /// schedule (what the chaos harness's bit-identity drills need).
    #[serde(default)]
    pub virtual_tick_us: u64,
    /// Load-aware degraded-mode policy: step planning down the engine
    /// ladder as queue depth rises. Disabled by default.
    #[serde(default)]
    pub degrade: DegradePolicy,
    /// What a group commit does when the WAL fails under it. The
    /// default keeps the legacy fail-stop behavior (acks continue
    /// non-durably; the latched error surfaces via
    /// [`SchedulerSession::take_wal_error`]).
    #[serde(default)]
    pub wal_policy: DurabilityPolicy,
    /// With [`DurabilityPolicy::Reject`]: fsync retries before the
    /// batch is rolled back (retries only run when every append
    /// landed and just the fsync failed).
    #[serde(default)]
    pub wal_retries: u32,
    /// With [`DurabilityPolicy::Reject`]: base backoff between fsync
    /// retries in milliseconds, doubling per attempt and capped at 8×.
    /// `0` (the default) retries immediately — what deterministic
    /// tests and the virtual-clock chaos drills use.
    #[serde(default)]
    pub wal_backoff_ms: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            planners: 1,
            batch: 8,
            max_retries: 3,
            admit_stale: true,
            durable_acks: true,
            queue_depth: 0,
            deadline_ms: 0,
            virtual_tick_us: 0,
            degrade: DegradePolicy::default(),
            wal_policy: DurabilityPolicy::default(),
            wal_retries: 0,
            wal_backoff_ms: 0,
        }
    }
}

/// The load-aware degraded-mode policy: as the ingress queue deepens,
/// planning steps down the engine ladder — first capping the A\*
/// tiers' expansion budgets, then dropping to the greedy EG floor —
/// and climbs back up with hysteresis as the backlog drains.
///
/// The ladder has three rungs, keyed off the queue depth a planner
/// observes when it wakes: **normal** (the requested algorithm,
/// untouched), **capped** (depth ≥ [`high`](Self::high):
/// `max_expansions` tightened to [`cap_expansions`](Self::cap_expansions)),
/// and **floor** (depth ≥ [`floor`](Self::floor): A\* tiers replaced
/// by greedy EG). Recovery is sticky: a capped service returns to
/// normal only at depth ≤ [`low`](Self::low), and the floor steps
/// back to capped only at depth ≤ [`high`](Self::high) — the
/// hysteresis that keeps the ladder from thrashing at a threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradePolicy {
    /// Master switch; `false` (the default) never degrades.
    pub enabled: bool,
    /// Queue depth at or above which planning enters the capped tier.
    pub high: usize,
    /// Queue depth at or below which a degraded service returns to
    /// normal (hysteresis low-water mark; keep `low < high`).
    pub low: usize,
    /// Queue depth at or above which planning drops to the greedy
    /// floor (keep `floor > high`).
    pub floor: usize,
    /// The expansion budget the capped tier imposes on the A\* tiers
    /// (never loosening a tighter request-level cap).
    pub cap_expansions: u64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy { enabled: false, high: 16, low: 4, floor: 64, cap_expansions: 4_096 }
    }
}

/// What a group commit does when the WAL fails under it (an append
/// error during the batch, or the group-commit fsync itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurabilityPolicy {
    /// Legacy fail-stop journaling: the first WAL error latches, the
    /// service keeps acknowledging *non-durably*, and the typed error
    /// surfaces through [`SchedulerSession::take_wal_error`] (the CLI
    /// reports it loudly). Recovery replays the consistent prefix up
    /// to the fault.
    #[default]
    Degrade,
    /// Never acknowledge what is not durable: retry the fsync with
    /// bounded, capped backoff ([`ServiceConfig::wal_retries`] /
    /// [`ServiceConfig::wal_backoff_ms`]); if the journal still cannot
    /// be completed, roll the books back, rewind the journal to the
    /// pre-batch mark, and fail every acknowledgement of the batch
    /// with [`PlacementError::Durability`]. The journal heals in
    /// place, so the service keeps serving once the disk recovers.
    Reject,
}

/// An epoch-stamped, immutable view of the committed books that any
/// number of planners can solve against concurrently.
#[derive(Debug)]
pub struct PlanSnapshot {
    /// Commit sequence number at capture: how many mutations (commits
    /// and releases) the service had applied.
    seq: u64,
    /// Per-host commit epochs at capture — `host_epochs[h]` is the
    /// sequence number of the last mutation that touched host `h`.
    host_epochs: Vec<u64>,
    /// The committed books at capture.
    state: CapacityState,
    /// The session's summaries and capacity-table columns describing
    /// `state`, plus the *shared* value-keyed bound cache.
    shared: SessionShared,
}

impl PlanSnapshot {
    /// The commit sequence number this snapshot was captured at.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The frozen books this snapshot plans against.
    #[must_use]
    pub fn state(&self) -> &CapacityState {
        &self.state
    }

    /// The commit epoch of `host` at capture.
    #[must_use]
    pub fn host_epoch(&self, host: HostId) -> u64 {
        self.host_epochs[host.index()]
    }
}

/// Phase-1 output: a decision planned against a snapshot, not yet
/// validated or committed.
#[derive(Debug)]
pub struct PlannedPlacement {
    outcome: PlacementOutcome,
    snapshot: Arc<PlanSnapshot>,
    /// Distinct hosts the decision touches, ascending by index — the
    /// set validate-commit checks epochs for.
    hosts: Vec<HostId>,
}

impl PlannedPlacement {
    /// The planned decision and its search metrics.
    #[must_use]
    pub fn outcome(&self) -> &PlacementOutcome {
        &self.outcome
    }

    /// The snapshot this plan was computed against.
    #[must_use]
    pub fn snapshot(&self) -> &Arc<PlanSnapshot> {
        &self.snapshot
    }

    /// Distinct hosts the decision touches, ascending by index.
    #[must_use]
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }
}

/// The result of one optimistic commit attempt.
// One short-lived value per commit attempt; boxing the outcome would
// trade an allocation per commit for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CommitAttempt {
    /// Validation passed; the decision is in the books (and, with a
    /// WAL attached, in the journal).
    Committed(ServiceOutcome),
    /// A planned host changed since the snapshot (or a shared link the
    /// plan relied on saturated). Re-plan against a fresh snapshot.
    Conflict {
        /// The first planned host whose epoch moved (or, for a link
        /// conflict, the plan's first host).
        host: HostId,
    },
}

/// A committed placement: the decision plus its position in the
/// service's total commit order.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Commit sequence number — the service's total order. Replaying
    /// committed decisions in `seq` order over the base state
    /// reproduces the books exactly.
    pub seq: u64,
    /// The decision and search metrics;
    /// [`stats.commit_conflicts`](crate::SearchStats::commit_conflicts)
    /// and [`stats.replans`](crate::SearchStats::replans) record how
    /// contended this request's path to commit was.
    pub outcome: PlacementOutcome,
}

/// Cumulative service counters, serialized into `ostro serve` output
/// and the service benchmark artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Placements committed.
    pub committed: u64,
    /// Tenants released.
    pub released: u64,
    /// Requests rejected (planning failed against current books).
    pub rejected: u64,
    /// Optimistic commits that failed validation (the live books no
    /// longer admitted the decision, or — in strict mode — a planned
    /// host's epoch moved).
    pub commit_conflicts: u64,
    /// Epoch-stale decisions the live books still admitted (committed
    /// without re-planning; their objectives are snapshot-relative).
    pub stale_admissions: u64,
    /// Re-plans against a fresh snapshot after a lost commit race.
    pub replans: u64,
    /// Within-batch host-set overlaps detected by the up-front screen.
    /// In strict mode these members go straight to the retry path; with
    /// stale admission they proceed to live-book re-validation (and
    /// usually land in [`stale_admissions`](Self::stale_admissions)).
    pub overlap_conflicts: u64,
    /// Requests that exhausted their retry budget and planned
    /// serialized under the commit lock.
    pub serialized_fallbacks: u64,
    /// Batches popped by planners.
    pub batches: u64,
    /// Histogram of batch sizes: `batch_sizes[n]` batches held exactly
    /// `n` jobs.
    pub batch_sizes: Vec<u64>,
    /// Snapshots published (one per mutating lock acquisition).
    pub snapshots_published: u64,
    /// Group-commit WAL fsyncs issued.
    pub wal_syncs: u64,
    /// Placements shed at the door: the bounded ingress queue was full.
    #[serde(default)]
    pub shed_queue_full: u64,
    /// Placements shed before planning: their deadline budget was
    /// already spent waiting in the queue.
    #[serde(default)]
    pub shed_deadline: u64,
    /// Planner panics contained by `catch_unwind` (each surfaced as a
    /// typed [`PlacementError::PlannerPanic`], never a poisoned
    /// service).
    #[serde(default)]
    pub planner_panics: u64,
    /// Placements solved by a degraded (capped or greedy-floor)
    /// search instead of the requested algorithm.
    #[serde(default)]
    pub degraded_decisions: u64,
    /// Degrade-ladder level changes (in either direction).
    #[serde(default)]
    pub degraded_transitions: u64,
    /// Group commits that observed a WAL failure (whatever the
    /// durability policy then did about it).
    #[serde(default)]
    pub wal_faults: u64,
    /// Fsync retries issued by [`DurabilityPolicy::Reject`].
    #[serde(default)]
    pub wal_retry_syncs: u64,
    /// Acknowledgements delivered *non-durably* after a WAL failure
    /// under [`DurabilityPolicy::Degrade`] (or when a rewind was
    /// impossible).
    #[serde(default)]
    pub non_durable_acks: u64,
    /// Acknowledgements converted to [`PlacementError::Durability`]
    /// rejections by [`DurabilityPolicy::Reject`] (books rolled back,
    /// journal rewound).
    #[serde(default)]
    pub durability_rejections: u64,
    /// Pods scored by the sharded coarse stage, summed over requests
    /// (zero unless requests set `shard`).
    #[serde(default)]
    pub pods_scanned: u64,
    /// Pods the coarse stage pruned before exact search, summed over
    /// requests.
    #[serde(default)]
    pub pods_pruned: u64,
    /// Sharded requests that fell back to the plain unsharded search.
    #[serde(default)]
    pub shard_fallbacks: u64,
    /// Maintenance-plane ticks run through [`PlacementService::maintain`].
    #[serde(default)]
    pub maintenance_ticks: u64,
    /// Tenant migrations the maintenance plane applied (drains +
    /// defrag moves), each journaled as one atomic WAL record.
    #[serde(default)]
    pub maintenance_migrations: u64,
    /// Defrag sweeps that yielded to foreground load (queue depth or
    /// an elevated degrade-ladder rung).
    #[serde(default)]
    pub maintenance_yields: u64,
}

/// The serialized half: the session (whose all-or-nothing commit is
/// the authoritative feasibility check), the commit sequence number,
/// and the per-host commit epochs validation compares against.
#[derive(Debug)]
struct Authority<'a> {
    session: SchedulerSession<'a>,
    seq: u64,
    host_epochs: Vec<u64>,
}

impl Authority<'_> {
    /// The first planned host whose epoch moved since the snapshot.
    fn stale_host(&self, planned: &PlannedPlacement) -> Option<HostId> {
        planned
            .hosts
            .iter()
            .copied()
            .find(|h| self.host_epochs[h.index()] != planned.snapshot.host_epochs[h.index()])
    }

    fn bump_epochs(&mut self, placement: &Placement) {
        let seq = self.seq;
        for &host in placement.assignments() {
            self.host_epochs[host.index()] = seq;
        }
    }

    fn apply_commit(
        &mut self,
        topology: &ApplicationTopology,
        placement: &Placement,
    ) -> Result<u64, PlacementError> {
        self.session.commit(topology, placement)?;
        self.seq += 1;
        self.bump_epochs(placement);
        Ok(self.seq)
    }

    fn apply_release(
        &mut self,
        topology: &ApplicationTopology,
        placement: &Placement,
    ) -> Result<u64, PlacementError> {
        self.session.release(topology, placement)?;
        self.seq += 1;
        self.bump_epochs(placement);
        Ok(self.seq)
    }
}

/// Outcome of one validate-commit under the lock, before stats and
/// snapshot publication are folded in.
enum Validated {
    /// Epoch-clean: committed with a snapshot-exact objective.
    Committed {
        seq: u64,
    },
    /// Epoch-stale but the live books still admitted it.
    CommittedStale {
        seq: u64,
    },
    Conflict {
        host: HostId,
    },
}

/// A batch's speculative books: one clone of the snapshot's state and
/// shared tables, with earlier batch members' decisions applied
/// virtually so later members plan around them instead of colliding.
/// Batch members plan sequentially on one planner thread, so the
/// overlay needs no synchronization; cross-planner races are still
/// caught by epoch validation at commit time.
struct BatchView {
    state: CapacityState,
    shared: SessionShared,
}

impl BatchView {
    /// Re-resolves `hosts` from the overlaid state — the same per-host
    /// resync the session's dirty-host journal performs after a real
    /// commit, so summaries, capacity-table columns, and the epoch
    /// component of cache keys stay value-correct.
    fn refresh_hosts(&mut self, hosts: impl IntoIterator<Item = HostId>) {
        for host in hosts {
            let free = self.state.available(host);
            let fresh = HostSummary {
                free,
                nic_mbps: self.state.nic_available(host).as_mbps(),
                avail_sig: avail_signature(free),
            };
            let old = self.shared.summaries[host.index()];
            self.shared.pods.update(host.index(), &old, &fresh);
            self.shared.summaries[host.index()] = fresh;
            self.shared.table.refresh_base_host(&self.state, host);
            self.shared.epochs[host.index()] += 1;
        }
    }
}

/// The concurrent placement service. See the module docs for the
/// pipeline; [`serve`](Self::serve) for the batched front-end;
/// [`place_blocking`](Self::place_blocking) /
/// [`release_blocking`](Self::release_blocking) for direct calls (any
/// number of threads may call them concurrently — `&self` throughout).
#[derive(Debug)]
pub struct PlacementService<'a> {
    infra: &'a Infrastructure,
    authority: Mutex<Authority<'a>>,
    snapshot: Mutex<Arc<PlanSnapshot>>,
    stats: Mutex<ServiceStats>,
    config: ServiceConfig,
    /// Current degrade-ladder rung (one of the `LEVEL_*` constants).
    degrade_level: AtomicU8,
    /// Submission-tick counter for the virtual admission clock.
    ticks: AtomicU64,
    plan_hook: Option<PlanHook>,
}

/// Degrade-ladder rungs (see [`DegradePolicy`]).
const LEVEL_NORMAL: u8 = 0;
const LEVEL_CAPPED: u8 = 1;
const LEVEL_FLOOR: u8 = 2;

/// An injectable planner hook, called at the top of every plan with
/// the topology about to be solved. The chaos harness uses it to
/// inject planner panics (a panicking hook is exactly a panicking
/// search, and must be contained the same way) and latency spikes (a
/// sleeping hook). Production services have none.
#[derive(Clone)]
pub struct PlanHook(Arc<dyn Fn(&ApplicationTopology) + Send + Sync>);

impl PlanHook {
    /// Wraps a hook closure.
    pub fn new(f: impl Fn(&ApplicationTopology) + Send + Sync + 'static) -> Self {
        PlanHook(Arc::new(f))
    }

    fn call(&self, topology: &ApplicationTopology) {
        (self.0)(topology);
    }
}

impl fmt::Debug for PlanHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PlanHook(..)")
    }
}

/// Renders a contained panic payload for the typed per-request error.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl<'a> PlacementService<'a> {
    /// Wraps `session` in the service. The session's pending dirty
    /// hosts are drained and the initial snapshot published.
    #[must_use]
    pub fn new(mut session: SchedulerSession<'a>, config: ServiceConfig) -> Self {
        session.refresh();
        let infra = session.infrastructure();
        let host_epochs = vec![0u64; infra.host_count()];
        let snapshot = Arc::new(PlanSnapshot {
            seq: 0,
            host_epochs: host_epochs.clone(),
            state: session.state().clone(),
            shared: session.shared().clone_for_snapshot(),
        });
        PlacementService {
            infra,
            authority: Mutex::new(Authority { session, seq: 0, host_epochs }),
            snapshot: Mutex::new(snapshot),
            stats: Mutex::new(ServiceStats::default()),
            config,
            degrade_level: AtomicU8::new(LEVEL_NORMAL),
            ticks: AtomicU64::new(0),
            plan_hook: None,
        }
    }

    /// Installs (or clears) the planner hook consulted at the top of
    /// every plan — the chaos harness's panic/latency injection point.
    pub fn set_plan_hook(&mut self, hook: Option<PlanHook>) {
        self.plan_hook = hook;
    }

    /// The current degrade-ladder rung: 0 = normal, 1 = capped,
    /// 2 = greedy floor.
    #[must_use]
    pub fn degrade_level(&self) -> u8 {
        self.degrade_level.load(Ordering::Relaxed)
    }

    /// Stamps a submission on whichever admission clock the service
    /// runs (see [`ServiceConfig::virtual_tick_us`]).
    fn stamp(&self) -> BudgetStamp {
        if self.config.virtual_tick_us > 0 {
            BudgetStamp::Tick(self.ticks.fetch_add(1, Ordering::Relaxed))
        } else {
            BudgetStamp::Wall(Instant::now())
        }
    }

    /// Milliseconds a stamped job has spent in the ingress queue.
    fn budget_elapsed_ms(&self, stamp: BudgetStamp) -> u64 {
        match stamp {
            BudgetStamp::Wall(at) => at.elapsed().as_millis().try_into().unwrap_or(u64::MAX),
            BudgetStamp::Tick(at) => {
                let now = self.ticks.load(Ordering::Relaxed);
                now.saturating_sub(at) * self.config.virtual_tick_us / 1_000
            }
        }
    }

    /// Steps the degrade ladder for an observed queue depth (called by
    /// a planner as it wakes), with the hysteresis described on
    /// [`DegradePolicy`]. Returns the level planning should run at.
    fn update_degrade(&self, depth: usize) -> u8 {
        let policy = &self.config.degrade;
        if !policy.enabled {
            return LEVEL_NORMAL;
        }
        let current = self.degrade_level.load(Ordering::Relaxed);
        let next = match current {
            LEVEL_NORMAL => {
                if depth >= policy.floor {
                    LEVEL_FLOOR
                } else if depth >= policy.high {
                    LEVEL_CAPPED
                } else {
                    LEVEL_NORMAL
                }
            }
            LEVEL_CAPPED => {
                if depth >= policy.floor {
                    LEVEL_FLOOR
                } else if depth <= policy.low {
                    LEVEL_NORMAL
                } else {
                    LEVEL_CAPPED
                }
            }
            _ => {
                if depth <= policy.low {
                    LEVEL_NORMAL
                } else if depth <= policy.high {
                    LEVEL_CAPPED
                } else {
                    LEVEL_FLOOR
                }
            }
        };
        if next != current
            && self
                .degrade_level
                .compare_exchange(current, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            self.note(|st| st.degraded_transitions += 1);
        }
        next
    }

    /// The request `level` actually plans with: `None` when the rung
    /// leaves it untouched (normal level, or an engine already at or
    /// below the rung's tier).
    fn degraded_request(&self, request: &PlacementRequest, level: u8) -> Option<PlacementRequest> {
        if level == LEVEL_NORMAL {
            return None;
        }
        let mut req = request.clone();
        let changed = if level == LEVEL_CAPPED {
            req.cap_search(self.config.degrade.cap_expansions)
        } else {
            req.floor_search()
        };
        changed.then_some(req)
    }

    /// The service's configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The infrastructure the service places onto.
    #[must_use]
    pub fn infrastructure(&self) -> &'a Infrastructure {
        self.infra
    }

    /// The current commit sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        lock_unpoisoned(&self.authority).seq
    }

    /// A copy of the cumulative service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        lock_unpoisoned(&self.stats).clone()
    }

    /// Consumes the service, returning the session with every commit
    /// applied.
    #[must_use]
    pub fn into_session(self) -> SchedulerSession<'a> {
        let authority = match self.authority.into_inner() {
            Ok(a) => a,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut session = authority.session;
        session.refresh();
        session
    }

    fn note(&self, f: impl FnOnce(&mut ServiceStats)) {
        f(&mut lock_unpoisoned(&self.stats));
    }

    /// The current published snapshot. Cheap: an [`Arc`] clone.
    #[must_use]
    pub fn snapshot(&self) -> Arc<PlanSnapshot> {
        Arc::clone(&lock_unpoisoned(&self.snapshot))
    }

    /// Runs one maintenance-plane tick against the live books,
    /// serialized with foreground commits. The plane sees the caller's
    /// `queue_depth` and the current degrade-ladder rung, so sweeps
    /// yield whenever foreground traffic is already struggling. If the
    /// tick touched the books, every touched host's epoch is bumped —
    /// in-flight optimistic plans whose hosts were migrated under them
    /// revalidate instead of committing stale — a fresh snapshot is
    /// published, and (under durable acknowledgements) one group-commit
    /// fsync covers every migration record the tick journaled.
    pub fn maintain(
        &self,
        plane: &mut MaintenancePlane,
        ledger: &mut Vec<TenantRecord>,
        tick: u64,
        queue_depth: usize,
    ) -> MaintenanceTick {
        let load = MaintenanceLoad { queue_depth, degrade_level: self.degrade_level() };
        let mut authority = lock_unpoisoned(&self.authority);
        let report = plane.tick(&mut authority.session, ledger, tick, load);
        let touched: Vec<HostId> = authority.session.pending_dirty_hosts().to_vec();
        if !touched.is_empty() {
            authority.seq += 1;
            let seq = authority.seq;
            for host in touched {
                authority.host_epochs[host.index()] = seq;
            }
            self.publish_locked(&mut authority);
            if self.config.durable_acks {
                authority.session.sync_wal();
                self.note(|st| st.wal_syncs += 1);
            }
        }
        self.note(|st| {
            st.maintenance_ticks += 1;
            st.maintenance_migrations += u64::from(report.migrations);
            if report.yielded {
                st.maintenance_yields += 1;
            }
        });
        report
    }

    /// Re-captures the snapshot from the authority's current books.
    /// Called with the lock held, after every mutating acquisition.
    fn publish_locked(&self, authority: &mut Authority<'a>) {
        authority.session.refresh();
        let snapshot = Arc::new(PlanSnapshot {
            seq: authority.seq,
            host_epochs: authority.host_epochs.clone(),
            state: authority.session.state().clone(),
            shared: authority.session.shared().clone_for_snapshot(),
        });
        *lock_unpoisoned(&self.snapshot) = snapshot;
        self.note(|st| st.snapshots_published += 1);
    }

    /// Group-commit point: fsync the WAL once for everything this lock
    /// acquisition committed, before any response is delivered.
    ///
    /// `mark` is the journal position captured when the lock was
    /// acquired (before the first append), `applied` how many
    /// mutations this acquisition performed, and `undo` a books-only
    /// rollback of those mutations in reverse order. On a WAL failure
    /// the [`DurabilityPolicy`] decides: `Degrade` keeps the
    /// acknowledgements (counted non-durable; the latched error stays
    /// loud via [`SchedulerSession::take_wal_error`]); `Reject`
    /// retries the fsync, then runs `undo`, rewinds the journal to
    /// `mark`, and returns the typed error the caller must convert
    /// this acquisition's acknowledgements into.
    fn sync_locked(
        &self,
        authority: &mut Authority<'a>,
        mark: Option<WalMark>,
        applied: u64,
        undo: impl FnOnce(&mut SchedulerSession<'a>),
    ) -> Option<PlacementError> {
        if !self.config.durable_acks {
            return None;
        }
        authority.session.sync_wal();
        self.note(|st| st.wal_syncs += 1);
        authority.session.wal_error()?;
        self.note(|st| st.wal_faults += 1);
        match self.config.wal_policy {
            DurabilityPolicy::Degrade => {
                self.note(|st| st.non_durable_acks += applied);
                None
            }
            DurabilityPolicy::Reject => {
                let mark = mark?;
                // Retrying the fsync only helps when every append
                // landed; a missing append means the journal cannot be
                // completed, only rewound.
                if authority.session.wal_seq() == Some(mark.seq() + applied) {
                    for attempt in 0..self.config.wal_retries {
                        self.backoff(attempt);
                        self.note(|st| st.wal_retry_syncs += 1);
                        if authority.session.retry_sync() {
                            return None;
                        }
                    }
                }
                if !authority.session.wal_can_rewind(&mark) {
                    // A snapshot compaction ran mid-batch, so part of
                    // the batch is already durably in the snapshot —
                    // rolling back would contradict durable state.
                    // Degrade these acknowledgements instead.
                    self.note(|st| st.non_durable_acks += applied);
                    return None;
                }
                let reason = match authority.session.wal_error() {
                    Some(e) => e.to_string(),
                    None => "journal unavailable".to_string(),
                };
                // Books-only rollback: the fail-stop latch keeps these
                // inverse mutations out of the journal; the rewind then
                // erases the batch's records and clears the latch, so
                // journal and books agree again and the service keeps
                // serving durably once the disk recovers.
                undo(&mut authority.session);
                let _ = authority.session.wal_rewind(&mark);
                self.note(|st| st.durability_rejections += applied);
                Some(PlacementError::Durability { reason })
            }
        }
    }

    /// Capped doubling backoff between fsync retries.
    fn backoff(&self, attempt: u32) {
        if self.config.wal_backoff_ms > 0 {
            let factor = 1u64 << attempt.min(3);
            std::thread::sleep(Duration::from_millis(self.config.wal_backoff_ms * factor));
        }
    }

    /// Forces the knobs concurrent planning requires: request-level
    /// parallelism replaces intra-request scoring parallelism (a
    /// scoring pool serves one search at a time). Decisions are
    /// unaffected — parallel and serial scoring are bit-identical.
    fn planning_request(request: &PlacementRequest) -> PlacementRequest {
        let mut req = request.clone();
        req.parallel = false;
        req.score_threads = 1;
        req
    }

    /// Phase 1: plans `topology` against `snapshot` with no lock held.
    /// Safe to call from any number of threads concurrently.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::place`] — note the failure is relative to the
    /// snapshot's books, which may be stale;
    /// [`place_blocking`](Self::place_blocking) re-plans such failures
    /// against fresh state before rejecting.
    pub fn plan(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        snapshot: &Arc<PlanSnapshot>,
    ) -> Result<PlannedPlacement, PlacementError> {
        self.plan_against(topology, request, &snapshot.state, &snapshot.shared, snapshot)
    }

    /// Plans against arbitrary (`state`, `shared`) books — the
    /// snapshot's own, or a batch's speculative overlay — stamping the
    /// result with `origin` for epoch validation.
    fn plan_against(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        state: &CapacityState,
        shared: &SessionShared,
        origin: &Arc<PlanSnapshot>,
    ) -> Result<PlannedPlacement, PlacementError> {
        let req = Self::planning_request(request);
        let evictions_before = {
            let mut cache = lock_unpoisoned(&shared.cache);
            cache.begin_request();
            cache.evictions()
        };
        // Contain planner panics: every lock on the shared path is
        // taken through `lock_unpoisoned`, so a panicking search (or
        // hook) is surfaced as a typed per-request error instead of
        // poisoning the service.
        let result = catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &self.plan_hook {
                hook.call(topology);
            }
            Scheduler::new(self.infra).place_pinned_with(
                topology,
                state,
                &req,
                &vec![None; topology.node_count()],
                Some(shared),
            )
        }));
        let result = match result {
            Ok(r) => r,
            Err(payload) => {
                self.note(|st| st.planner_panics += 1);
                Err(PlacementError::PlannerPanic { reason: panic_reason(payload.as_ref()) })
            }
        };
        let evictions_after = lock_unpoisoned(&shared.cache).evictions();
        let mut outcome = result?;
        outcome.stats.session_cache_evictions = evictions_after.saturating_sub(evictions_before);
        if outcome.stats.pods_scanned != 0 || outcome.stats.shard_fallbacks != 0 {
            let (scanned, pruned, fallbacks) = (
                outcome.stats.pods_scanned,
                outcome.stats.pods_pruned,
                outcome.stats.shard_fallbacks,
            );
            self.note(|st| {
                st.pods_scanned += scanned;
                st.pods_pruned += pruned;
                st.shard_fallbacks += fallbacks;
            });
        }
        let mut hosts: Vec<HostId> = outcome.placement.assignments().to_vec();
        hosts.sort_unstable_by_key(|h| h.index());
        hosts.dedup();
        Ok(PlannedPlacement { outcome, snapshot: Arc::clone(origin), hosts })
    }

    /// Validate-commit under an already-held lock. Epoch-clean
    /// decisions commit with exact objectives; epoch-stale ones are
    /// re-validated by the session's all-or-nothing commit against the
    /// live books (unless [`ServiceConfig::admit_stale`] is off). A
    /// commit failure against books that moved since the snapshot is a
    /// conflict; against unmoved books it is a genuine error.
    fn validate_commit_locked(
        &self,
        authority: &mut Authority<'a>,
        topology: &ApplicationTopology,
        planned: &PlannedPlacement,
    ) -> Result<Validated, PlacementError> {
        if let Some(host) = authority.stale_host(planned) {
            if !self.config.admit_stale {
                return Ok(Validated::Conflict { host });
            }
            return match authority.apply_commit(topology, &planned.outcome.placement) {
                Ok(seq) => Ok(Validated::CommittedStale { seq }),
                Err(_) => Ok(Validated::Conflict { host }),
            };
        }
        match authority.apply_commit(topology, &planned.outcome.placement) {
            Ok(seq) => Ok(Validated::Committed { seq }),
            Err(e) => match planned.hosts.first() {
                Some(&host) if authority.seq != planned.snapshot.seq => {
                    Ok(Validated::Conflict { host })
                }
                _ => Err(e),
            },
        }
    }

    /// Phase 2: validates `planned`'s host epochs and, if nothing
    /// moved, commits it — taking the commit lock, publishing a fresh
    /// snapshot, and (with [`ServiceConfig::durable_acks`]) fsyncing
    /// the WAL before returning.
    ///
    /// # Errors
    ///
    /// As [`SchedulerSession::commit`], only when the snapshot was
    /// still current (stale-snapshot commit failures surface as
    /// [`CommitAttempt::Conflict`]); [`PlacementError::Durability`] if
    /// the rejecting durability policy rolled the commit back.
    pub fn try_commit(
        &self,
        topology: &ApplicationTopology,
        planned: &PlannedPlacement,
    ) -> Result<CommitAttempt, PlacementError> {
        let mut authority = lock_unpoisoned(&self.authority);
        let mark = authority.session.wal_mark();
        match self.validate_commit_locked(&mut authority, topology, planned)? {
            committed @ (Validated::Committed { .. } | Validated::CommittedStale { .. }) => {
                let durability = self.sync_locked(&mut authority, mark, 1, |session| {
                    let _ = session.release(topology, &planned.outcome.placement);
                });
                self.publish_locked(&mut authority);
                drop(authority);
                if let Some(err) = durability {
                    return Err(err);
                }
                let seq = match committed {
                    Validated::Committed { seq } => {
                        self.note(|st| st.committed += 1);
                        seq
                    }
                    Validated::CommittedStale { seq } => {
                        self.note(|st| {
                            st.committed += 1;
                            st.stale_admissions += 1;
                        });
                        seq
                    }
                    Validated::Conflict { .. } => unreachable!("matched committed variants"),
                };
                Ok(CommitAttempt::Committed(ServiceOutcome {
                    seq,
                    outcome: planned.outcome.clone(),
                }))
            }
            Validated::Conflict { host } => {
                drop(authority);
                self.note(|st| st.commit_conflicts += 1);
                Ok(CommitAttempt::Conflict { host })
            }
        }
    }

    /// Last resort after the retry budget: plan *under* the commit
    /// lock, warm against the live session, where no concurrent commit
    /// can invalidate the decision.
    fn commit_serialized(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        conflicts: u64,
        replans: u64,
    ) -> Result<ServiceOutcome, PlacementError> {
        let req = Self::planning_request(request);
        self.note(|st| st.serialized_fallbacks += 1);
        let mut authority = lock_unpoisoned(&self.authority);
        let mark = authority.session.wal_mark();
        // The serialized path plans on the same ladder as the
        // optimistic one: a panicking search (or hook) must yield a
        // typed error here too, or a sticky panic would sneak through
        // the fallback.
        let planned = catch_unwind(AssertUnwindSafe(|| {
            if let Some(hook) = &self.plan_hook {
                hook.call(topology);
            }
            authority.session.place(topology, &req)
        }));
        let planned = match planned {
            Ok(r) => r,
            Err(payload) => {
                self.note(|st| st.planner_panics += 1);
                Err(PlacementError::PlannerPanic { reason: panic_reason(payload.as_ref()) })
            }
        };
        let result = planned.and_then(|outcome| {
            authority.apply_commit(topology, &outcome.placement).map(|seq| (seq, outcome))
        });
        match result {
            Ok((seq, mut outcome)) => {
                let durability = self.sync_locked(&mut authority, mark, 1, |session| {
                    let _ = session.release(topology, &outcome.placement);
                });
                self.publish_locked(&mut authority);
                drop(authority);
                if let Some(err) = durability {
                    return Err(err);
                }
                self.note(|st| st.committed += 1);
                outcome.stats.commit_conflicts = conflicts;
                outcome.stats.replans = replans;
                Ok(ServiceOutcome { seq, outcome })
            }
            Err(e) => {
                drop(authority);
                self.note(|st| st.rejected += 1);
                Err(e)
            }
        }
    }

    /// The full optimistic loop from a given starting snapshot:
    /// plan → validate-commit → re-plan on conflict (bounded) →
    /// serialized fallback. `conflicts`/`replans` carry counts from
    /// attempts the caller already burned (the batch path).
    fn place_from(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        mut snapshot: Arc<PlanSnapshot>,
        mut conflicts: u64,
        mut replans: u64,
    ) -> Result<ServiceOutcome, PlacementError> {
        loop {
            if replans > u64::from(self.config.max_retries) {
                return self.commit_serialized(topology, request, conflicts, replans);
            }
            let planned = match self.plan(topology, request, &snapshot) {
                Ok(p) => p,
                Err(e) => {
                    // A plan failure against *current* books is a
                    // genuine rejection; against stale books it gets a
                    // retry like any other loser.
                    if self.seq() == snapshot.seq {
                        self.note(|st| st.rejected += 1);
                        return Err(e);
                    }
                    replans += 1;
                    self.note(|st| st.replans += 1);
                    snapshot = self.snapshot();
                    continue;
                }
            };
            match self.try_commit(topology, &planned)? {
                CommitAttempt::Committed(mut outcome) => {
                    outcome.outcome.stats.commit_conflicts = conflicts;
                    outcome.outcome.stats.replans = replans;
                    return Ok(outcome);
                }
                CommitAttempt::Conflict { .. } => {
                    conflicts += 1;
                    replans += 1;
                    self.note(|st| st.replans += 1);
                    snapshot = self.snapshot();
                }
            }
        }
    }

    /// Places `topology` through the full optimistic pipeline,
    /// blocking until it commits or is rejected against current books.
    /// Any number of threads may call this concurrently.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::place`], evaluated against current books.
    pub fn place_blocking(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
    ) -> Result<ServiceOutcome, PlacementError> {
        let snapshot = self.snapshot();
        self.place_from(topology, request, snapshot, 0, 0)
    }

    /// Releases a committed tenant. Releases never conflict — they are
    /// applied directly under the commit lock and take the next
    /// sequence number.
    ///
    /// # Errors
    ///
    /// As [`SchedulerSession::release`]; [`PlacementError::Durability`]
    /// if the rejecting durability policy rolled the release back.
    pub fn release_blocking(
        &self,
        topology: &ApplicationTopology,
        placement: &Placement,
    ) -> Result<u64, PlacementError> {
        let mut authority = lock_unpoisoned(&self.authority);
        let mark = authority.session.wal_mark();
        let seq = authority.apply_release(topology, placement)?;
        let durability = self.sync_locked(&mut authority, mark, 1, |session| {
            let _ = session.commit(topology, placement);
        });
        self.publish_locked(&mut authority);
        drop(authority);
        if let Some(err) = durability {
            return Err(err);
        }
        self.note(|st| st.released += 1);
        Ok(seq)
    }

    /// Runs the batched service front-end: spawns
    /// [`ServiceConfig::planners`] planner threads behind a FIFO
    /// queue, hands `driver` a [`ServiceHandle`] to submit jobs
    /// through, and drains the queue before returning `driver`'s
    /// result. Every submitted ticket is resolved by then.
    pub fn serve<R>(&self, driver: impl FnOnce(&ServiceHandle<'_, 'a>) -> R) -> R {
        let shared = ServeShared {
            queue: Mutex::new(ServeQueue { jobs: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
        };
        let result = std::thread::scope(|scope| {
            for _ in 0..self.config.planners.max(1) {
                scope.spawn(|| self.planner_loop(&shared));
            }
            // Close the queue when the driver returns *or unwinds* —
            // otherwise the planners would wait forever and the scope
            // would never join.
            let _close = CloseGuard(&shared);
            let handle = ServiceHandle { service: self, shared: &shared };
            driver(&handle)
        });
        // Graceful shutdown: the scope joining means every planner
        // drained the queue and exited; one final fsync makes the tail
        // durable even without `durable_acks` (which already synced
        // per batch). Not counted as a group-commit sync.
        lock_unpoisoned(&self.authority).session.sync_wal();
        result
    }

    fn planner_loop(&self, shared: &ServeShared) {
        loop {
            let (batch, depth): (Vec<Job>, usize) = {
                let mut queue = lock_unpoisoned(&shared.queue);
                loop {
                    if !queue.jobs.is_empty() {
                        break;
                    }
                    if queue.closed {
                        return;
                    }
                    queue = match shared.cv.wait(queue) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                let depth = queue.jobs.len();
                let take = depth.min(self.config.batch.max(1));
                (queue.jobs.drain(..take).collect(), depth)
            };
            self.update_degrade(depth);
            // Safety net under the whole batch: planning panics are
            // already contained in `plan_against`, but nothing that
            // panics may strand a ticket — the driver would hang on it
            // forever. Tickets the batch resolved keep their response;
            // the rest get the typed panic error.
            let tickets: Vec<Arc<TicketInner>> = batch.iter().map(Job::ticket).collect();
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.process_batch(batch))) {
                let reason = panic_reason(payload.as_ref());
                self.note(|st| st.planner_panics += 1);
                for ticket in &tickets {
                    deliver_if_empty(
                        ticket,
                        ServiceResponse::Failed(PlacementError::PlannerPanic {
                            reason: reason.clone(),
                        }),
                    );
                }
            }
        }
    }

    /// One admission batch: plan every member against a single
    /// snapshot, screen within-batch host-set overlap up front, commit
    /// the survivors under one lock acquisition (one snapshot
    /// publication, one group-commit fsync), then push the losers
    /// through the individual retry path.
    fn process_batch(&self, batch: Vec<Job>) {
        self.note(|st| {
            st.batches += 1;
            if st.batch_sizes.len() <= batch.len() {
                st.batch_sizes.resize(batch.len() + 1, 0);
            }
            st.batch_sizes[batch.len()] += 1;
        });
        let snapshot = self.snapshot();

        // Phase 1: plan all arrivals with no lock held. Multi-member
        // batches plan against a speculative overlay of the snapshot:
        // each member's decision (place or release) is applied
        // virtually before the next member plans, so members stop
        // colliding with each other inside the batch. Overlaid plans
        // are epoch-stale by construction relative to the snapshot the
        // authority will validate against, which is exactly what the
        // stale-admission path handles — in strict mode the overlay is
        // skipped so epoch validation stays snapshot-exact.
        // (A batch holds at most `config.batch` of these, briefly.)
        #[allow(clippy::large_enum_variant)]
        enum Member {
            Place {
                topology: Arc<ApplicationTopology>,
                request: PlacementRequest,
                ticket: Arc<TicketInner>,
                plan: Result<PlannedPlacement, PlacementError>,
                overlap: bool,
                degraded: bool,
            },
            Release {
                topology: Arc<ApplicationTopology>,
                placement: Placement,
                ticket: Arc<TicketInner>,
            },
        }
        let level = self.degrade_level.load(Ordering::Relaxed);
        let mut view = (self.config.admit_stale && batch.len() > 1).then(|| BatchView {
            state: snapshot.state.clone(),
            shared: snapshot.shared.clone_for_snapshot(),
        });
        let scheduler = Scheduler::new(self.infra);
        let mut shed_deadline = 0u64;
        let mut degraded_decisions = 0u64;
        let mut members: Vec<Member> = Vec::new();
        for job in batch {
            match job {
                Job::Place { topology, request, ticket, stamp } => {
                    // Deadline shed: a request whose budget was already
                    // burned waiting in the queue gets a typed error
                    // *before* any planning work is spent on it.
                    let budget_ms = self.config.deadline_ms;
                    if budget_ms > 0 && self.budget_elapsed_ms(stamp) >= budget_ms {
                        shed_deadline += 1;
                        deliver(
                            &ticket,
                            ServiceResponse::Failed(PlacementError::DeadlineExceeded { budget_ms }),
                        );
                        continue;
                    }
                    // Engine-ladder degradation: under overload the
                    // request plans with a cheaper search than it asked
                    // for, flagged in its stats.
                    let (request, degraded) = match self.degraded_request(&request, level) {
                        Some(down) => {
                            degraded_decisions += 1;
                            (down, true)
                        }
                        None => (request, false),
                    };
                    let mut plan = match view.as_mut() {
                        Some(view) => {
                            let plan = self.plan_against(
                                &topology,
                                &request,
                                &view.state,
                                &view.shared,
                                &snapshot,
                            );
                            if let Ok(planned) = &plan {
                                if scheduler
                                    .commit(&topology, &planned.outcome.placement, &mut view.state)
                                    .is_ok()
                                {
                                    view.refresh_hosts(planned.hosts.iter().copied());
                                }
                            }
                            plan
                        }
                        None => self.plan(&topology, &request, &snapshot),
                    };
                    if degraded {
                        if let Ok(planned) = &mut plan {
                            planned.outcome.stats.degraded = true;
                        }
                    }
                    members.push(Member::Place {
                        topology,
                        request,
                        ticket,
                        plan,
                        overlap: false,
                        degraded,
                    });
                }
                Job::Release { topology, placement, ticket } => {
                    if let Some(view) = view.as_mut() {
                        if scheduler.release(&topology, &placement, &mut view.state).is_ok() {
                            let mut hosts: Vec<HostId> = placement.assignments().to_vec();
                            hosts.sort_unstable_by_key(|h| h.index());
                            hosts.dedup();
                            view.refresh_hosts(hosts);
                        }
                    }
                    members.push(Member::Release { topology, placement, ticket });
                }
            }
        }
        if shed_deadline > 0 || degraded_decisions > 0 {
            self.note(|st| {
                st.shed_deadline += shed_deadline;
                st.degraded_decisions += degraded_decisions;
            });
        }

        // Up-front overlap screen: members claim their host sets in
        // batch order; a later plan touching an already-claimed host
        // will be epoch-stale once the earlier member commits. With
        // stale admission on, the flag routes it through live-book
        // re-validation; in strict mode it goes straight to the retry
        // path without entering the lock.
        let mut claimed = vec![false; self.infra.host_count()];
        let mut overlaps = 0u64;
        for member in &mut members {
            match member {
                Member::Release { placement, .. } => {
                    for &host in placement.assignments() {
                        claimed[host.index()] = true;
                    }
                }
                Member::Place { plan: Ok(planned), overlap, .. } => {
                    if planned.hosts.iter().any(|h| claimed[h.index()]) {
                        *overlap = true;
                        overlaps += 1;
                    } else {
                        for &host in &planned.hosts {
                            claimed[host.index()] = true;
                        }
                    }
                }
                Member::Place { .. } => {}
            }
        }

        // Phase 2: one commit-lock acquisition for the whole batch.
        let mut acks: Vec<(Arc<TicketInner>, ServiceResponse)> = Vec::new();
        #[allow(clippy::type_complexity)]
        let mut losers: Vec<(
            Arc<ApplicationTopology>,
            PlacementRequest,
            Arc<TicketInner>,
            u64,
            bool,
        )> = Vec::new();
        let mut committed = 0u64;
        let mut released = 0u64;
        let mut rejected = 0u64;
        let mut conflicts = 0u64;
        let mut stale = 0u64;
        let mut durability = None;
        {
            let mut authority = lock_unpoisoned(&self.authority);
            let mark = authority.session.wal_mark();
            // Under the Reject policy every applied mutation records
            // its inverse so a failed group-commit fsync can roll the
            // whole batch back off the books.
            let log_undo = matches!(self.config.wal_policy, DurabilityPolicy::Reject);
            let mut undo_log: Vec<(Arc<ApplicationTopology>, Placement, bool)> = Vec::new();
            let mut mutated = false;
            for member in members {
                match member {
                    Member::Release { topology, placement, ticket } => {
                        match authority.apply_release(&topology, &placement) {
                            Ok(seq) => {
                                mutated = true;
                                released += 1;
                                if log_undo {
                                    undo_log.push((topology, placement, false));
                                }
                                acks.push((ticket, ServiceResponse::Released { seq }));
                            }
                            Err(e) => {
                                rejected += 1;
                                acks.push((ticket, ServiceResponse::Failed(e)));
                            }
                        }
                    }
                    Member::Place { topology, request, ticket, plan, overlap, degraded } => {
                        match plan {
                            Ok(planned) if self.config.admit_stale || !overlap => {
                                match self.validate_commit_locked(
                                    &mut authority,
                                    &topology,
                                    &planned,
                                ) {
                                    Ok(
                                        v @ (Validated::Committed { .. }
                                        | Validated::CommittedStale { .. }),
                                    ) => {
                                        let seq = match v {
                                            Validated::Committed { seq } => seq,
                                            Validated::CommittedStale { seq } => {
                                                stale += 1;
                                                seq
                                            }
                                            Validated::Conflict { .. } => {
                                                unreachable!("matched committed variants")
                                            }
                                        };
                                        mutated = true;
                                        committed += 1;
                                        if log_undo {
                                            undo_log.push((
                                                Arc::clone(&topology),
                                                planned.outcome.placement.clone(),
                                                true,
                                            ));
                                        }
                                        let mut outcome = planned.outcome;
                                        outcome.stats.commit_conflicts = 0;
                                        outcome.stats.replans = 0;
                                        acks.push((
                                            ticket,
                                            ServiceResponse::Placed(ServiceOutcome {
                                                seq,
                                                outcome,
                                            }),
                                        ));
                                    }
                                    Ok(Validated::Conflict { .. }) => {
                                        conflicts += 1;
                                        losers.push((topology, request, ticket, 1, degraded));
                                    }
                                    Err(e) => {
                                        rejected += 1;
                                        acks.push((ticket, ServiceResponse::Failed(e)));
                                    }
                                }
                            }
                            Ok(_) => {
                                // Strict-mode overlap loser: counted as the
                                // conflict it would have been.
                                conflicts += 1;
                                losers.push((topology, request, ticket, 1, degraded));
                            }
                            Err(e) => {
                                if authority.seq == snapshot.seq {
                                    rejected += 1;
                                    acks.push((ticket, ServiceResponse::Failed(e)));
                                } else {
                                    losers.push((topology, request, ticket, 0, degraded));
                                }
                            }
                        }
                    }
                }
            }
            if mutated {
                // Sync *before* publishing: if the Reject policy rolls
                // the batch back, readers never see the undone books.
                durability =
                    self.sync_locked(&mut authority, mark, committed + released, |session| {
                        for (topology, placement, was_commit) in undo_log.iter().rev() {
                            if *was_commit {
                                let _ = session.release(topology, placement);
                            } else {
                                let _ = session.commit(topology, placement);
                            }
                        }
                    });
                self.publish_locked(&mut authority);
            }
        }
        if let Some(err) = &durability {
            // The batch's mutations were rolled back — convert every
            // would-be ack into the typed durability rejection.
            for (_, response) in &mut acks {
                if matches!(response, ServiceResponse::Placed(_) | ServiceResponse::Released { .. })
                {
                    *response = ServiceResponse::Failed(err.clone());
                }
            }
            committed = 0;
            released = 0;
            stale = 0;
        }
        self.note(|st| {
            st.committed += committed;
            st.released += released;
            st.rejected += rejected;
            st.commit_conflicts += conflicts;
            st.overlap_conflicts += overlaps;
            st.stale_admissions += stale;
            // Every conflict loser re-plans in phase 4; count those
            // re-plans here so the global counter matches the sum of
            // the per-request `stats.replans` the losers will report.
            st.replans += conflicts;
        });

        // Phase 3: responses — after the group-commit fsync, so a
        // delivered `Placed` is durable.
        for (ticket, response) in acks {
            deliver(&ticket, response);
        }

        // Phase 4: losers re-plan individually against fresh snapshots.
        // A loser that planned degraded re-plans with the same degraded
        // request, so the flag stays truthful on its final outcome.
        for (topology, request, ticket, burned, degraded) in losers {
            let response =
                match self.place_from(&topology, &request, self.snapshot(), burned, burned) {
                    Ok(mut outcome) => {
                        if degraded {
                            outcome.outcome.stats.degraded = true;
                        }
                        ServiceResponse::Placed(outcome)
                    }
                    Err(e) => ServiceResponse::Failed(e),
                };
            deliver(&ticket, response);
        }
    }
}

// ---------------------------------------------------------------------------
// The batched front-end: queue, jobs, tickets
// ---------------------------------------------------------------------------

struct ServeQueue {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct ServeShared {
    queue: Mutex<ServeQueue>,
    cv: Condvar,
}

/// Closes the queue on drop so planners drain and exit even when the
/// driver unwinds.
struct CloseGuard<'s>(&'s ServeShared);

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        lock_unpoisoned(&self.0.queue).closed = true;
        self.0.cv.notify_all();
    }
}

enum Job {
    Place {
        topology: Arc<ApplicationTopology>,
        request: PlacementRequest,
        ticket: Arc<TicketInner>,
        /// When the request was admitted — the deadline budget counts
        /// from here, so queue wait burns it down.
        stamp: BudgetStamp,
    },
    Release {
        topology: Arc<ApplicationTopology>,
        placement: Placement,
        ticket: Arc<TicketInner>,
    },
}

impl Job {
    fn ticket(&self) -> Arc<TicketInner> {
        match self {
            Job::Place { ticket, .. } | Job::Release { ticket, .. } => Arc::clone(ticket),
        }
    }
}

/// The driver's side of a running [`PlacementService::serve`] call:
/// submit jobs, get [`Ticket`]s back.
#[derive(Clone, Copy)]
pub struct ServiceHandle<'s, 'a> {
    service: &'s PlacementService<'a>,
    shared: &'s ServeShared,
}

impl<'s, 'a> ServiceHandle<'s, 'a> {
    /// The service behind this handle.
    #[must_use]
    pub fn service(&self) -> &'s PlacementService<'a> {
        self.service
    }

    /// Enqueues a placement request; the returned ticket resolves to
    /// [`ServiceResponse::Placed`] or [`ServiceResponse::Failed`] —
    /// immediately with [`PlacementError::QueueFull`] when admission
    /// control sheds it.
    pub fn submit(&self, topology: Arc<ApplicationTopology>, request: PlacementRequest) -> Ticket {
        let ticket = Arc::new(TicketInner::default());
        let stamp = self.service.stamp();
        self.push(Job::Place { topology, request, ticket: Arc::clone(&ticket), stamp });
        Ticket(ticket)
    }

    /// Enqueues a release; the returned ticket resolves to
    /// [`ServiceResponse::Released`] or [`ServiceResponse::Failed`].
    pub fn submit_release(
        &self,
        topology: Arc<ApplicationTopology>,
        placement: Placement,
    ) -> Ticket {
        let ticket = Arc::new(TicketInner::default());
        self.push(Job::Release { topology, placement, ticket: Arc::clone(&ticket) });
        Ticket(ticket)
    }

    /// Runs one maintenance tick with the *live* ingress queue depth
    /// as the yield signal — the `serve --maintain` entry point. The
    /// driver interleaves these with submissions; sweeps automatically
    /// back off whenever the queue it shares with placements deepens.
    pub fn maintain(
        &self,
        plane: &mut MaintenancePlane,
        ledger: &mut Vec<TenantRecord>,
        tick: u64,
    ) -> MaintenanceTick {
        let depth = lock_unpoisoned(&self.shared.queue).jobs.len();
        self.service.maintain(plane, ledger, tick, depth)
    }

    fn push(&self, job: Job) {
        let limit = self.service.config.queue_depth;
        let mut queue = lock_unpoisoned(&self.shared.queue);
        if limit > 0 && queue.jobs.len() >= limit {
            // Admission control: placements are shed with a typed
            // rejection; releases are always admitted — shedding a
            // release would leak the capacity it returns.
            if let Job::Place { ticket, .. } = &job {
                let depth = queue.jobs.len();
                drop(queue);
                self.service.note(|st| st.shed_queue_full += 1);
                deliver(ticket, ServiceResponse::Failed(PlacementError::QueueFull { depth }));
                return;
            }
        }
        queue.jobs.push_back(job);
        self.shared.cv.notify_one();
    }
}

/// What a [`Ticket`] resolves to.
///
/// The `Placed` payload dwarfs the other variants, but a response is
/// constructed once and moved straight into its ticket slot — never
/// stored in bulk — so boxing would only add an allocation per commit.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ServiceResponse {
    /// The placement committed (durably, with [`ServiceConfig::durable_acks`]).
    Placed(ServiceOutcome),
    /// The release applied at commit sequence `seq`.
    Released {
        /// The release's position in the commit order.
        seq: u64,
    },
    /// The request was rejected against current books.
    Failed(PlacementError),
}

#[derive(Default)]
struct TicketInner {
    slot: Mutex<Option<(ServiceResponse, Instant)>>,
    cv: Condvar,
}

fn deliver(ticket: &TicketInner, response: ServiceResponse) {
    *lock_unpoisoned(&ticket.slot) = Some((response, Instant::now()));
    ticket.cv.notify_all();
}

/// Delivers only if the ticket is still unresolved — the panic safety
/// net must not overwrite a response the batch already produced.
fn deliver_if_empty(ticket: &TicketInner, response: ServiceResponse) {
    let mut slot = lock_unpoisoned(&ticket.slot);
    if slot.is_none() {
        *slot = Some((response, Instant::now()));
        ticket.cv.notify_all();
    }
}

/// A pending response from [`ServiceHandle::submit`] /
/// [`ServiceHandle::submit_release`].
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    /// Blocks until the job resolves.
    #[must_use]
    pub fn wait(self) -> ServiceResponse {
        self.wait_timed().0
    }

    /// Like [`wait`](Self::wait), also returning the instant the
    /// response was *delivered* (not observed) — what latency
    /// percentiles should measure when tickets are drained late.
    #[must_use]
    pub fn wait_timed(self) -> (ServiceResponse, Instant) {
        let mut slot = lock_unpoisoned(&self.0.slot);
        loop {
            if let Some(resolved) = slot.take() {
                return resolved;
            }
            slot = match self.0.cv.wait(slot) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Algorithm;
    use crate::validate::verify_placement;
    use crate::wal::{self, Wal, WalFault, WalFaultHook, WalIoOp, WalOptions};
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{Bandwidth, Resources, TopologyBuilder};

    fn infra_flat(racks: usize, hosts: usize) -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            racks,
            hosts,
            Resources::new(16, 32_768, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn pair_app(name: &str, vcpus: u32) -> ApplicationTopology {
        let mut b = TopologyBuilder::new(name);
        let x = b.vm("x", vcpus, 2_048).unwrap();
        let y = b.vm("y", vcpus, 2_048).unwrap();
        b.link(x, y, Bandwidth::from_mbps(150)).unwrap();
        b.build().unwrap()
    }

    fn hub_app(name: &str) -> ApplicationTopology {
        let mut b = TopologyBuilder::new(name);
        let hub = b.vm("hub", 4, 8_192).unwrap();
        for i in 0..3 {
            let w = b.vm(format!("w{i}"), 2, 2_048).unwrap();
            b.link(hub, w, Bandwidth::from_mbps(100 + 50 * i as u64)).unwrap();
        }
        b.build().unwrap()
    }

    fn request() -> PlacementRequest {
        PlacementRequest { algorithm: Algorithm::Greedy, ..PlacementRequest::default() }
    }

    /// Replays committed decisions in commit-sequence order over the
    /// base state, verifying each was feasible at its commit point,
    /// and asserts the fold equals `final_state` — the service's
    /// linearizability contract.
    fn assert_linearizable(
        infra: &Infrastructure,
        base: &CapacityState,
        mut events: Vec<(u64, ApplicationTopology, Option<Placement>)>,
        final_state: &CapacityState,
    ) {
        events.sort_by_key(|(seq, _, _)| *seq);
        let scheduler = Scheduler::new(infra);
        let mut state = base.clone();
        let mut last_seq = 0;
        for (seq, topology, placement) in &events {
            assert!(*seq > last_seq, "commit sequence numbers must be strictly increasing");
            last_seq = *seq;
            match placement {
                Some(p) => {
                    let violations = verify_placement(topology, infra, &state, p).unwrap();
                    assert!(
                        violations.is_empty(),
                        "decision at seq {seq} infeasible at its commit point: {violations:?}"
                    );
                    scheduler.commit(topology, p, &mut state).unwrap();
                }
                None => {
                    // A release event: placement is carried in the
                    // topology slot's paired entry; handled by caller.
                    unreachable!("release events carry placements");
                }
            }
        }
        assert_eq!(&state, final_state, "serial replay in commit order diverged from the books");
    }

    /// With one planner and batch size 1 the service path must be
    /// decision-identical to the serial warm session.
    #[test]
    fn single_planner_service_matches_serial_session() {
        let infra = infra_flat(2, 4);
        let shapes = [hub_app("a"), pair_app("b", 2), hub_app("c"), pair_app("d", 4), hub_app("e")];
        let req = request();

        // Serial warm session, with the same forced planning knobs.
        let serial_req = PlacementService::planning_request(&req);
        let mut session = SchedulerSession::new(&infra);
        let mut serial: Vec<Placement> = Vec::new();
        for shape in &shapes {
            let outcome = session.place(shape, &serial_req).unwrap();
            session.commit(shape, &outcome.placement).unwrap();
            serial.push(outcome.placement);
        }
        session.release(&shapes[1], &serial[1]).unwrap();
        let outcome = session.place(&shapes[1], &serial_req).unwrap();
        session.commit(&shapes[1], &outcome.placement).unwrap();
        let serial_replaced = outcome.placement.clone();
        let serial_state = session.into_state();

        // The same schedule through the service pipeline.
        let config = ServiceConfig { planners: 1, batch: 1, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);
        let mut placed: Vec<Placement> = Vec::new();
        for shape in &shapes {
            let outcome = service.place_blocking(shape, &req).unwrap();
            assert_eq!(outcome.outcome.stats.commit_conflicts, 0);
            placed.push(outcome.outcome.placement.clone());
        }
        service.release_blocking(&shapes[1], &placed[1]).unwrap();
        let replaced = service.place_blocking(&shapes[1], &req).unwrap();

        assert_eq!(placed, serial, "service decisions diverged from serial session");
        assert_eq!(replaced.outcome.placement, serial_replaced);
        assert_eq!(service.into_session().into_state(), serial_state);
    }

    /// The linearizability property: N concurrent requests committed
    /// through the service produce books identical to a serial replay
    /// of the committed decisions in commit-sequence order, each
    /// feasible at its commit point.
    #[test]
    fn concurrent_commits_linearize() {
        let infra = infra_flat(4, 8);
        let base = CapacityState::new(&infra);
        let req = request();
        let shapes: Vec<Arc<ApplicationTopology>> = (0..4)
            .map(|i| {
                Arc::new(if i % 2 == 0 {
                    hub_app(&format!("hub{i}"))
                } else {
                    pair_app(&format!("pair{i}"), 2 + i as u32)
                })
            })
            .collect();
        let config =
            ServiceConfig { planners: 4, batch: 2, max_retries: 2, ..ServiceConfig::default() };
        let service =
            PlacementService::new(SchedulerSession::with_state(&infra, base.clone()), config);

        let arrivals = 24usize;
        let responses: Vec<(usize, ServiceResponse)> = service.serve(|handle| {
            let tickets: Vec<(usize, Ticket)> = (0..arrivals)
                .map(|i| (i, handle.submit(Arc::clone(&shapes[i % shapes.len()]), req.clone())))
                .collect();
            tickets.into_iter().map(|(i, t)| (i, t.wait())).collect()
        });

        let mut events: Vec<(u64, ApplicationTopology, Option<Placement>)> = Vec::new();
        let mut committed = 0;
        for (i, response) in responses {
            match response {
                ServiceResponse::Placed(outcome) => {
                    committed += 1;
                    events.push((
                        outcome.seq,
                        (*shapes[i % shapes.len()]).clone(),
                        Some(outcome.outcome.placement),
                    ));
                }
                ServiceResponse::Failed(_) => {}
                ServiceResponse::Released { .. } => panic!("no releases submitted"),
            }
        }
        assert!(committed >= arrivals / 2, "too many rejections: {committed}/{arrivals}");
        let final_state = service.into_session().into_state();
        assert_linearizable(&infra, &base, events, &final_state);
    }

    /// A deterministic forced conflict in strict mode: plan against a
    /// snapshot, let a competing commit touch the planned hosts, and
    /// watch validation reject the stale plan; then run the full retry
    /// loop from the same stale snapshot and watch it re-plan once and
    /// commit.
    #[test]
    fn forced_conflict_is_detected_and_retried() {
        let infra = infra_flat(1, 2);
        let req = request();
        let config = ServiceConfig { admit_stale: false, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);

        // Plan A against the initial snapshot, then commit B — a tiny
        // DC guarantees host-set overlap.
        let stale = service.snapshot();
        let app_a = pair_app("a", 2);
        let planned = service.plan(&app_a, &req, &stale).unwrap();
        let app_b = pair_app("b", 2);
        service.place_blocking(&app_b, &req).unwrap();

        match service.try_commit(&app_a, &planned).unwrap() {
            CommitAttempt::Conflict { host } => {
                assert!(planned.hosts().contains(&host), "conflict must name a planned host");
            }
            CommitAttempt::Committed(_) => panic!("stale plan passed validation"),
        }
        assert_eq!(service.stats().commit_conflicts, 1);

        // The loop from the same stale snapshot: one conflict, one
        // re-plan, then commit.
        let outcome = service.place_from(&app_a, &req, stale, 0, 0).unwrap();
        assert_eq!(outcome.outcome.stats.commit_conflicts, 1);
        assert_eq!(outcome.outcome.stats.replans, 1);
        let stats = service.stats();
        assert_eq!(stats.commit_conflicts, 2);
        assert_eq!(stats.replans, 1);
        assert_eq!(stats.serialized_fallbacks, 0);
        assert_eq!(stats.committed, 2);
    }

    /// With a zero retry budget a conflicted request goes straight to
    /// the serialized fallback — and still commits.
    #[test]
    fn exhausted_retry_budget_falls_back_to_serialized_planning() {
        let infra = infra_flat(1, 2);
        let req = request();
        let config =
            ServiceConfig { max_retries: 0, admit_stale: false, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);

        let stale = service.snapshot();
        service.place_blocking(&pair_app("winner", 2), &req).unwrap();
        let outcome = service.place_from(&pair_app("loser", 2), &req, stale, 0, 0).unwrap();
        assert_eq!(outcome.outcome.stats.commit_conflicts, 1);
        let stats = service.stats();
        assert_eq!(stats.serialized_fallbacks, 1);
        assert_eq!(stats.committed, 2);
    }

    /// The batch path flags within-batch host-set overlap up front;
    /// with stale admission the overlapping member re-validates against
    /// the live books under the same lock and commits without a
    /// re-plan, with the histogram recording the batch size.
    #[test]
    fn batch_overlap_detected_up_front() {
        let infra = infra_flat(1, 2);
        let req = request();
        let config = ServiceConfig { planners: 1, batch: 4, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);

        let a = Arc::new(pair_app("a", 2));
        let b = Arc::new(pair_app("b", 2));
        let ta = Arc::new(TicketInner::default());
        let tb = Arc::new(TicketInner::default());
        service.process_batch(vec![
            Job::Place {
                topology: Arc::clone(&a),
                request: req.clone(),
                ticket: Arc::clone(&ta),
                stamp: BudgetStamp::Wall(Instant::now()),
            },
            Job::Place {
                topology: Arc::clone(&b),
                request: req.clone(),
                ticket: Arc::clone(&tb),
                stamp: BudgetStamp::Wall(Instant::now()),
            },
        ]);
        let ra = Ticket(ta).wait();
        let rb = Ticket(tb).wait();
        assert!(matches!(ra, ServiceResponse::Placed(_)), "first member must commit: {ra:?}");
        assert!(matches!(rb, ServiceResponse::Placed(_)), "overlap member must commit: {rb:?}");
        let stats = service.stats();
        assert_eq!(stats.overlap_conflicts, 1, "overlap must be caught before the lock");
        assert_eq!(stats.stale_admissions, 1, "the books still fit both pairs");
        assert_eq!(stats.commit_conflicts, 0);
        assert_eq!(stats.replans, 0);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_sizes, vec![0, 0, 1]);
        assert_eq!(stats.committed, 2);
    }

    /// Strict mode sends the within-batch overlap member to the retry
    /// path instead, where it re-plans and commits.
    #[test]
    fn strict_batch_overlap_goes_to_retry_path() {
        let infra = infra_flat(1, 2);
        let req = request();
        let config =
            ServiceConfig { planners: 1, batch: 4, admit_stale: false, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);

        let a = Arc::new(pair_app("a", 2));
        let b = Arc::new(pair_app("b", 2));
        let ta = Arc::new(TicketInner::default());
        let tb = Arc::new(TicketInner::default());
        service.process_batch(vec![
            Job::Place {
                topology: Arc::clone(&a),
                request: req.clone(),
                ticket: Arc::clone(&ta),
                stamp: BudgetStamp::Wall(Instant::now()),
            },
            Job::Place {
                topology: Arc::clone(&b),
                request: req.clone(),
                ticket: Arc::clone(&tb),
                stamp: BudgetStamp::Wall(Instant::now()),
            },
        ]);
        assert!(matches!(Ticket(ta).wait(), ServiceResponse::Placed(_)));
        assert!(matches!(Ticket(tb).wait(), ServiceResponse::Placed(_)));
        let stats = service.stats();
        assert_eq!(stats.overlap_conflicts, 1);
        assert_eq!(stats.commit_conflicts, 1, "strict mode turns the overlap into a conflict");
        assert_eq!(stats.replans, 1);
        assert_eq!(stats.stale_admissions, 0);
        assert_eq!(stats.committed, 2);
    }

    /// Stale admission end-to-end: a plan whose snapshot went stale
    /// commits without re-planning when the live books still admit it.
    #[test]
    fn stale_plan_admitted_when_books_still_fit() {
        let infra = infra_flat(1, 2);
        let req = request();
        let service =
            PlacementService::new(SchedulerSession::new(&infra), ServiceConfig::default());

        let stale = service.snapshot();
        let app_a = pair_app("a", 2);
        let planned = service.plan(&app_a, &req, &stale).unwrap();
        service.place_blocking(&pair_app("b", 2), &req).unwrap();

        match service.try_commit(&app_a, &planned).unwrap() {
            CommitAttempt::Committed(outcome) => assert_eq!(outcome.seq, 2),
            CommitAttempt::Conflict { .. } => panic!("books still fit — must admit stale plan"),
        }
        let stats = service.stats();
        assert_eq!(stats.stale_admissions, 1);
        assert_eq!(stats.commit_conflicts, 0);
        assert_eq!(stats.committed, 2);
    }

    /// Stale admission still conflicts when the racing commit actually
    /// consumed the capacity the plan relied on — and the retry loop
    /// then rejects against current books if nothing fits.
    #[test]
    fn stale_plan_conflicts_when_capacity_moved() {
        // 9-vcpu VMs cannot co-locate on a 16-vcpu host, so each pair
        // spreads 9+9 across both hosts; after one commits, the other
        // genuinely no longer fits anywhere.
        let infra = infra_flat(1, 2);
        let req = request();
        let service =
            PlacementService::new(SchedulerSession::new(&infra), ServiceConfig::default());

        let stale = service.snapshot();
        let loser = pair_app("loser", 9);
        service.place_blocking(&pair_app("winner", 9), &req).unwrap();
        let err = service.place_from(&loser, &req, stale, 0, 0).unwrap_err();
        let _ = err;
        let stats = service.stats();
        assert_eq!(stats.commit_conflicts, 1, "stale commit against full books must conflict");
        assert_eq!(stats.replans, 1);
        assert_eq!(stats.rejected, 1, "re-plan against current books finds nothing");
        assert_eq!(stats.stale_admissions, 0);
        assert_eq!(stats.committed, 1);
    }

    /// Group commit keeps acknowledged commits durable: everything the
    /// service acknowledged is recoverable from the WAL alone after an
    /// abrupt stop (no checkpoint, no graceful shutdown).
    #[test]
    fn acknowledged_commits_survive_a_crash() {
        let dir = std::env::temp_dir().join(format!("ostro-service-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let infra = infra_flat(2, 4);
        let req = request();
        let (journal, _recovery) =
            Wal::open(&dir, &infra, WalOptions { snapshot_every: 0, ..WalOptions::default() })
                .unwrap();
        let mut session = SchedulerSession::new(&infra);
        session.attach_wal(journal);
        let service = PlacementService::new(session, ServiceConfig::default());

        let shapes = [hub_app("a"), pair_app("b", 2), hub_app("c")];
        let mut placed = Vec::new();
        for shape in &shapes {
            placed.push(service.place_blocking(shape, &req).unwrap());
        }
        service.release_blocking(&shapes[1], &placed[1].outcome.placement).unwrap();
        let live = service.into_session().into_state();

        // "Crash": the Wal is simply dropped with the session — no
        // checkpoint. Recovery must reproduce every acknowledged
        // mutation.
        let recovered = wal::recover(&dir, &infra).unwrap();
        assert_eq!(recovered.state, live, "recovered books diverged from acknowledged commits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sanity for the serve front-end: arrivals and departures mixed
    /// through the queue, every ticket resolves, and the books balance
    /// back to base after all tenants depart. Exercised at 1, 2, and 4
    /// planners so both the serial and the contended paths are covered.
    #[test]
    fn serve_roundtrip_releases_everything() {
        for planners in [1usize, 2, 4] {
            let infra = infra_flat(2, 4);
            let base = CapacityState::new(&infra);
            let req = request();
            let config = ServiceConfig { planners, batch: 3, ..ServiceConfig::default() };
            let service =
                PlacementService::new(SchedulerSession::with_state(&infra, base.clone()), config);
            let shapes: Vec<Arc<ApplicationTopology>> =
                (0..3).map(|i| Arc::new(pair_app(&format!("t{i}"), 2))).collect();

            service.serve(|handle| {
                let tickets: Vec<(usize, Ticket)> = (0..6)
                    .map(|i| (i % 3, handle.submit(Arc::clone(&shapes[i % 3]), req.clone())))
                    .collect();
                let mut live = Vec::new();
                for (shape, ticket) in tickets {
                    match ticket.wait() {
                        ServiceResponse::Placed(outcome) => {
                            live.push((shape, outcome.outcome.placement))
                        }
                        ServiceResponse::Failed(e) => {
                            panic!("placement failed at {planners} planners: {e}")
                        }
                        ServiceResponse::Released { .. } => unreachable!(),
                    }
                }
                let releases: Vec<Ticket> = live
                    .into_iter()
                    .map(|(shape, placement)| {
                        handle.submit_release(Arc::clone(&shapes[shape]), placement)
                    })
                    .collect();
                for ticket in releases {
                    assert!(matches!(ticket.wait(), ServiceResponse::Released { .. }));
                }
            });
            let stats = service.stats();
            assert_eq!(stats.committed, 6, "at {planners} planners");
            assert_eq!(stats.released, 6, "at {planners} planners");
            assert_eq!(service.into_session().into_state(), base, "at {planners} planners");
        }
    }

    /// Admission control: with a bounded queue and a gated planner, the
    /// overflow submission is shed immediately with the typed
    /// queue-full error while admitted work completes untouched.
    #[test]
    fn bounded_queue_sheds_overflow_with_typed_error() {
        let infra = infra_flat(2, 4);
        let req = request();
        // Gate the planner inside the plan hook so the queue can be
        // filled deterministically while a batch is in flight.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let hook_gate = Arc::clone(&gate);
        let config =
            ServiceConfig { planners: 1, batch: 1, queue_depth: 2, ..ServiceConfig::default() };
        let mut service = PlacementService::new(SchedulerSession::new(&infra), config);
        service.set_plan_hook(Some(PlanHook::new(move |_| {
            let (open, cv) = &*hook_gate;
            let mut open = lock_unpoisoned(open);
            while !*open {
                open = match cv.wait(open) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        })));

        let shapes: Vec<Arc<ApplicationTopology>> =
            (0..4).map(|i| Arc::new(pair_app(&format!("t{i}"), 2))).collect();
        service.serve(|handle| {
            // First submission is popped by the planner (which then
            // blocks on the gate), leaving the queue empty.
            let first = handle.submit(Arc::clone(&shapes[0]), req.clone());
            while handle.service().stats().batches < 1 {
                std::thread::sleep(Duration::from_millis(1));
            }
            // Two more fill the bounded queue; the fourth must shed.
            let second = handle.submit(Arc::clone(&shapes[1]), req.clone());
            let third = handle.submit(Arc::clone(&shapes[2]), req.clone());
            let overflow = handle.submit(Arc::clone(&shapes[3]), req.clone());
            match overflow.wait() {
                ServiceResponse::Failed(PlacementError::QueueFull { depth }) => {
                    assert_eq!(depth, 2)
                }
                other => panic!("overflow must shed with QueueFull: {other:?}"),
            }
            // Open the gate; everything admitted completes.
            let (open, cv) = &*gate;
            *lock_unpoisoned(open) = true;
            cv.notify_all();
            for ticket in [first, second, third] {
                assert!(matches!(ticket.wait(), ServiceResponse::Placed(_)));
            }
        });
        let stats = service.stats();
        assert_eq!(stats.shed_queue_full, 1);
        assert_eq!(stats.committed, 3);
    }

    /// Deadline shedding on the deterministic virtual clock: a request
    /// stamped before the budget's worth of ticks elapsed is shed with
    /// the typed error before any planning; a fresh one plans.
    #[test]
    fn stale_deadline_budget_sheds_before_planning() {
        let infra = infra_flat(2, 4);
        let req = request();
        let config = ServiceConfig {
            planners: 1,
            batch: 2,
            deadline_ms: 5,
            virtual_tick_us: 1_000, // one tick = 1ms of budget
            ..ServiceConfig::default()
        };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);
        service.ticks.store(10, Ordering::Relaxed);

        let expired = Arc::new(TicketInner::default());
        let fresh = Arc::new(TicketInner::default());
        service.process_batch(vec![
            Job::Place {
                topology: Arc::new(pair_app("expired", 2)),
                request: req.clone(),
                ticket: Arc::clone(&expired),
                stamp: BudgetStamp::Tick(0), // 10 ticks = 10ms spent > 5ms budget
            },
            Job::Place {
                topology: Arc::new(pair_app("fresh", 2)),
                request: req.clone(),
                ticket: Arc::clone(&fresh),
                stamp: BudgetStamp::Tick(10), // 0ms spent
            },
        ]);
        match Ticket(expired).wait() {
            ServiceResponse::Failed(PlacementError::DeadlineExceeded { budget_ms }) => {
                assert_eq!(budget_ms, 5)
            }
            other => panic!("stale budget must shed: {other:?}"),
        }
        assert!(matches!(Ticket(fresh).wait(), ServiceResponse::Placed(_)));
        let stats = service.stats();
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.committed, 1);
    }

    /// The degrade ladder's hysteresis: up fast on backlog, down only
    /// once the queue has drained past the low-water mark.
    #[test]
    fn degrade_ladder_moves_with_hysteresis() {
        let infra = infra_flat(1, 2);
        let config = ServiceConfig {
            degrade: DegradePolicy { enabled: true, ..DegradePolicy::default() },
            ..ServiceConfig::default()
        };
        // Default thresholds: high 16, low 4, floor 64.
        let service = PlacementService::new(SchedulerSession::new(&infra), config);
        assert_eq!(service.update_degrade(10), LEVEL_NORMAL, "below high stays normal");
        assert_eq!(service.update_degrade(16), LEVEL_CAPPED, "high-water trips capping");
        assert_eq!(service.update_degrade(10), LEVEL_CAPPED, "mid-band holds (hysteresis)");
        assert_eq!(service.update_degrade(64), LEVEL_FLOOR, "floor-water trips the floor");
        assert_eq!(service.update_degrade(16), LEVEL_CAPPED, "draining past high re-caps");
        assert_eq!(service.update_degrade(5), LEVEL_CAPPED, "still above low holds");
        assert_eq!(service.update_degrade(4), LEVEL_NORMAL, "low-water restores normal");
        assert_eq!(service.stats().degraded_transitions, 4);

        // Normal jumps straight to the floor under a deep burst.
        assert_eq!(service.update_degrade(100), LEVEL_FLOOR);
        assert_eq!(service.update_degrade(0), LEVEL_NORMAL, "floor drains straight to normal");

        // Disabled policy never degrades.
        let off_infra = infra_flat(1, 2);
        let off =
            PlacementService::new(SchedulerSession::new(&off_infra), ServiceConfig::default());
        assert_eq!(off.update_degrade(1_000), LEVEL_NORMAL);
    }

    /// At the floor level an A*-tier request plans with the greedy
    /// engine and its outcome is flagged as degraded.
    #[test]
    fn floored_batch_plans_greedy_and_flags_the_outcome() {
        let infra = infra_flat(2, 4);
        let config = ServiceConfig {
            degrade: DegradePolicy { enabled: true, ..DegradePolicy::default() },
            ..ServiceConfig::default()
        };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);
        service.degrade_level.store(LEVEL_FLOOR, Ordering::Relaxed);

        let ticket = Arc::new(TicketInner::default());
        service.process_batch(vec![Job::Place {
            topology: Arc::new(pair_app("a", 2)),
            request: PlacementRequest::with_algorithm(Algorithm::BoundedAStar),
            ticket: Arc::clone(&ticket),
            stamp: BudgetStamp::Wall(Instant::now()),
        }]);
        match Ticket(ticket).wait() {
            ServiceResponse::Placed(outcome) => {
                assert!(outcome.outcome.stats.degraded, "outcome must carry the degraded flag");
            }
            other => panic!("floored request must still place: {other:?}"),
        }
        assert_eq!(service.stats().degraded_decisions, 1);

        // A greedy request at the floor is already at the floor — no
        // degradation recorded, no flag.
        let greedy = Arc::new(TicketInner::default());
        service.process_batch(vec![Job::Place {
            topology: Arc::new(pair_app("b", 2)),
            request: request(),
            ticket: Arc::clone(&greedy),
            stamp: BudgetStamp::Wall(Instant::now()),
        }]);
        match Ticket(greedy).wait() {
            ServiceResponse::Placed(outcome) => assert!(!outcome.outcome.stats.degraded),
            other => panic!("greedy request must place: {other:?}"),
        }
        assert_eq!(service.stats().degraded_decisions, 1);
    }

    /// Planner panics become typed per-request errors and the service
    /// keeps serving — both on the blocking path and through serve().
    #[test]
    fn planner_panic_is_contained_as_a_typed_error() {
        let infra = infra_flat(2, 4);
        let req = request();
        let mut service =
            PlacementService::new(SchedulerSession::new(&infra), ServiceConfig::default());
        service.set_plan_hook(Some(PlanHook::new(|topology| {
            if topology.name() == "boom" {
                panic!("injected planner fault");
            }
        })));

        // Suppress the default panic backtrace spew for this test.
        let prior = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = service.place_blocking(&pair_app("boom", 2), &req).unwrap_err();
        match &err {
            PlacementError::PlannerPanic { reason } => {
                assert!(reason.contains("injected planner fault"), "reason: {reason}")
            }
            other => panic!("expected PlannerPanic, got {other}"),
        }
        // The service is still healthy.
        service.place_blocking(&pair_app("ok", 2), &req).unwrap();

        // Through the queue: the poison request fails typed, its batch
        // neighbours still resolve, nothing hangs.
        let shapes = [
            Arc::new(pair_app("t0", 2)),
            Arc::new(pair_app("boom", 2)),
            Arc::new(pair_app("t1", 2)),
        ];
        let responses = service.serve(|handle| {
            let tickets: Vec<Ticket> =
                shapes.iter().map(|s| handle.submit(Arc::clone(s), req.clone())).collect();
            tickets.into_iter().map(Ticket::wait).collect::<Vec<_>>()
        });
        std::panic::set_hook(prior);
        assert!(matches!(&responses[0], ServiceResponse::Placed(_)));
        assert!(matches!(
            &responses[1],
            ServiceResponse::Failed(PlacementError::PlannerPanic { .. })
        ));
        assert!(matches!(&responses[2], ServiceResponse::Placed(_)));
        assert!(service.stats().planner_panics >= 1);
    }

    /// WAL disk-full mid-group-commit under the Reject policy: the
    /// fsync fails between the batch's journal appends and the ack, the
    /// whole batch is rolled back off the books, every member gets the
    /// typed durability error, and recovery replays exactly the acked
    /// prefix. Once the disk heals the same service commits again.
    #[test]
    fn disk_full_mid_group_commit_rejects_the_batch() {
        let dir = std::env::temp_dir().join(format!("ostro-enospc-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let infra = infra_flat(2, 4);
        let req = request();
        let (journal, _recovery) =
            Wal::open(&dir, &infra, WalOptions { snapshot_every: 0, ..WalOptions::default() })
                .unwrap();
        let mut session = SchedulerSession::new(&infra);
        session.attach_wal(journal);
        let armed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hook_armed = Arc::clone(&armed);
        session.set_wal_fault_hook(Some(WalFaultHook::new(move |op, _seq| {
            (hook_armed.load(Ordering::Relaxed) && op == WalIoOp::Sync)
                .then_some(WalFault::Error(std::io::ErrorKind::StorageFull))
        })));
        let config = ServiceConfig {
            planners: 1,
            batch: 4,
            wal_policy: DurabilityPolicy::Reject,
            wal_retries: 2,
            ..ServiceConfig::default()
        };
        let service = PlacementService::new(session, config);

        // A commits durably while the disk is healthy.
        let a = pair_app("a", 2);
        service.place_blocking(&a, &req).unwrap();
        let acked = wal::recover(&dir, &infra).unwrap().state;

        // Disk fills; a two-member batch appends its records, then the
        // group-commit fsync fails.
        armed.store(true, Ordering::Relaxed);
        let tb = Arc::new(TicketInner::default());
        let tc = Arc::new(TicketInner::default());
        service.process_batch(vec![
            Job::Place {
                topology: Arc::new(pair_app("b", 2)),
                request: req.clone(),
                ticket: Arc::clone(&tb),
                stamp: BudgetStamp::Wall(Instant::now()),
            },
            Job::Place {
                topology: Arc::new(pair_app("c", 2)),
                request: req.clone(),
                ticket: Arc::clone(&tc),
                stamp: BudgetStamp::Wall(Instant::now()),
            },
        ]);
        for ticket in [tb, tc] {
            match Ticket(ticket).wait() {
                ServiceResponse::Failed(PlacementError::Durability { reason }) => {
                    assert!(reason.contains("injected"), "reason: {reason}")
                }
                other => panic!("un-durable member must reject typed: {other:?}"),
            }
        }
        let stats = service.stats();
        assert_eq!(stats.durability_rejections, 2);
        assert_eq!(stats.non_durable_acks, 0, "Reject must never degrade the ack");
        assert!(stats.wal_retry_syncs >= 1, "bounded fsync retries must have run");
        assert_eq!(stats.committed, 1, "the rolled-back batch must not count as committed");

        // Nothing beyond A is on disk or on the books.
        assert_eq!(wal::recover(&dir, &infra).unwrap().state, acked);

        // Disk heals: the same service commits D durably again.
        armed.store(false, Ordering::Relaxed);
        let d = pair_app("d", 2);
        service.place_blocking(&d, &req).unwrap();
        let live = service.into_session().into_state();
        assert_eq!(wal::recover(&dir, &infra).unwrap().state, live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The default Degrade policy keeps serving on WAL faults: the ack
    /// stands, flagged as non-durable in the stats, and the fail-stop
    /// latch carries the typed error for the report path.
    #[test]
    fn degrade_policy_acks_non_durably_on_wal_fault() {
        let dir = std::env::temp_dir().join(format!("ostro-degrade-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let infra = infra_flat(2, 4);
        let req = request();
        let (journal, _recovery) =
            Wal::open(&dir, &infra, WalOptions { snapshot_every: 0, ..WalOptions::default() })
                .unwrap();
        let mut session = SchedulerSession::new(&infra);
        session.attach_wal(journal);
        session.set_wal_fault_hook(Some(WalFaultHook::new(|op, _seq| {
            (op == WalIoOp::Sync).then_some(WalFault::Error(std::io::ErrorKind::StorageFull))
        })));
        let service = PlacementService::new(session, ServiceConfig::default());

        service.place_blocking(&pair_app("a", 2), &req).unwrap();
        let stats = service.stats();
        assert_eq!(stats.non_durable_acks, 1);
        assert_eq!(stats.wal_faults, 1);
        assert_eq!(stats.committed, 1, "the ack stands under Degrade");
        let mut session = service.into_session();
        let latched = session.take_wal_error().expect("fault must latch for the report path");
        assert!(latched.to_string().contains("injected"), "latched: {latched}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
