//! The concurrent placement service: optimistic
//! snapshot-plan / validate-commit scheduling over one
//! [`SchedulerSession`].
//!
//! A [`SchedulerSession`] is a `&mut self` world — every request
//! serializes through it, so sustained throughput is capped at
//! single-planner speed no matter how fast one scoring round is. The
//! [`PlacementService`] splits each request into two phases:
//!
//! 1. **Snapshot-plan** — the planner grabs the current
//!    [`PlanSnapshot`] (an epoch-stamped, immutable copy of the
//!    committed books plus the session's summaries and capacity-table
//!    columns; the value-keyed bound cache is *shared*, not copied)
//!    and solves against it with no lock held. Any number of planners
//!    plan concurrently against the same snapshot.
//! 2. **Validate-commit** — under the single commit lock, the planned
//!    hosts' per-host epochs are compared with the snapshot's. If no
//!    planned host changed since the snapshot, the decision commits:
//!    the session applies it (journaling dirty hosts and appending to
//!    the WAL, which makes the commit *order* durable), the touched
//!    hosts' epochs advance to the new commit sequence number, and a
//!    fresh snapshot is published. The lock is held only for the cheap
//!    apply — never for planning.
//!
//! Validation is two-level. Epoch cleanliness is the fast path: a
//! clean decision's books are exactly what it planned against, so its
//! commit is guaranteed to apply and its objective is exact. An
//! epoch-**stale** decision is not rejected outright — under a packing
//! objective every concurrent planner wants the same attractive hosts,
//! so strict staleness-equals-conflict degenerates the pipeline to
//! serial. Instead (with [`ServiceConfig::admit_stale`], the default)
//! the session's all-or-nothing commit re-validates the decision
//! against the *live* books: if capacity and every link still admit
//! it, it commits — its objective drifts by at most what raced in
//! ahead of it. Only a decision the live books no longer admit is a
//! **conflict**: the loser re-plans against a fresh snapshot, up to
//! [`ServiceConfig::max_retries`] times, then plans *serialized* under
//! the commit lock, where it cannot lose again. Host epochs alone are
//! never sufficient — a concurrent commit elsewhere in a rack can
//! saturate a shared uplink a "clean" plan relied on — so the session
//! commit remains the authoritative check in every path, and a commit
//! failure against a moved sequence number is a conflict too.
//!
//! One caveat of stale admission: the commit re-validates *capacity*,
//! not candidacy policy. The service exposes no quarantine entry
//! point, so this cannot currently admit a decision onto a host some
//! concurrent operation disqualified; if the service ever grows such
//! an entry point, quarantine must join the epoch check.
//!
//! **Admission batching**: [`PlacementService::serve`] runs a planner
//! pool behind a FIFO queue. Each planner pops up to
//! [`ServiceConfig::batch`] jobs, plans them all against *one*
//! snapshot, detects host-set overlap between batch members up front
//! (a later member overlapping an earlier one's hosts would lose
//! validation anyway, so it goes straight to the retry path without
//! entering the lock), then takes the commit lock **once** for the
//! whole batch and publishes **one** snapshot. With
//! [`ServiceConfig::durable_acks`] the batch also fsyncs the WAL once
//! before any of its responses are delivered — group commit: a
//! delivered `Placed` is durable.
//!
//! # What the service guarantees
//!
//! Commits are **linearized** by the commit sequence number: the final
//! books equal a serial replay of the committed decisions in sequence
//! order over the base state, and every decision was feasible at its
//! commit point (the session's all-or-nothing commit checked it while
//! holding the lock). With one planner and batch size 1 the pipeline
//! degenerates to the serial warm-session path and decisions are
//! bit-identical to [`SchedulerSession::place`] — `scripts/verify.sh`
//! diffs the two decision digests on every run.
//!
//! Concurrent planners run their searches with request-level
//! parallelism instead of intra-request scoring parallelism
//! ([`PlacementRequest::parallel`] is forced off in
//! [`plan`](PlacementService::plan)): a scoring pool serves one search
//! at a time, and parallel-vs-serial scoring is bit-identical anyway.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::ApplicationTopology;
use serde::{Deserialize, Serialize};

use crate::error::PlacementError;
use crate::placement::{Placement, PlacementOutcome};
use crate::pool::lock_unpoisoned;
use crate::request::PlacementRequest;
use crate::scheduler::Scheduler;
use crate::session::{avail_signature, HostSummary, SchedulerSession, SessionShared};

/// Tuning for a [`PlacementService`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Planner threads [`serve`](PlacementService::serve) runs.
    pub planners: usize,
    /// Maximum jobs one planner plans against a single snapshot (and
    /// commits under a single lock acquisition).
    pub batch: usize,
    /// Optimistic re-plans a losing request is granted before it falls
    /// back to planning serialized under the commit lock.
    pub max_retries: u32,
    /// Admit epoch-stale decisions whose commit still succeeds against
    /// the live books (see the module docs). `false` demands strict
    /// epoch cleanliness — every stale decision re-plans, which keeps
    /// objectives snapshot-exact but collapses throughput under
    /// packing objectives where every planner wants the same hosts.
    pub admit_stale: bool,
    /// When a WAL is attached: fsync once per commit-lock acquisition,
    /// *before* responses are delivered, so an acknowledged commit is
    /// durable (group commit). Without a WAL this is a no-op.
    pub durable_acks: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            planners: 1,
            batch: 8,
            max_retries: 3,
            admit_stale: true,
            durable_acks: true,
        }
    }
}

/// An epoch-stamped, immutable view of the committed books that any
/// number of planners can solve against concurrently.
#[derive(Debug)]
pub struct PlanSnapshot {
    /// Commit sequence number at capture: how many mutations (commits
    /// and releases) the service had applied.
    seq: u64,
    /// Per-host commit epochs at capture — `host_epochs[h]` is the
    /// sequence number of the last mutation that touched host `h`.
    host_epochs: Vec<u64>,
    /// The committed books at capture.
    state: CapacityState,
    /// The session's summaries and capacity-table columns describing
    /// `state`, plus the *shared* value-keyed bound cache.
    shared: SessionShared,
}

impl PlanSnapshot {
    /// The commit sequence number this snapshot was captured at.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The frozen books this snapshot plans against.
    #[must_use]
    pub fn state(&self) -> &CapacityState {
        &self.state
    }

    /// The commit epoch of `host` at capture.
    #[must_use]
    pub fn host_epoch(&self, host: HostId) -> u64 {
        self.host_epochs[host.index()]
    }
}

/// Phase-1 output: a decision planned against a snapshot, not yet
/// validated or committed.
#[derive(Debug)]
pub struct PlannedPlacement {
    outcome: PlacementOutcome,
    snapshot: Arc<PlanSnapshot>,
    /// Distinct hosts the decision touches, ascending by index — the
    /// set validate-commit checks epochs for.
    hosts: Vec<HostId>,
}

impl PlannedPlacement {
    /// The planned decision and its search metrics.
    #[must_use]
    pub fn outcome(&self) -> &PlacementOutcome {
        &self.outcome
    }

    /// The snapshot this plan was computed against.
    #[must_use]
    pub fn snapshot(&self) -> &Arc<PlanSnapshot> {
        &self.snapshot
    }

    /// Distinct hosts the decision touches, ascending by index.
    #[must_use]
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }
}

/// The result of one optimistic commit attempt.
// One short-lived value per commit attempt; boxing the outcome would
// trade an allocation per commit for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CommitAttempt {
    /// Validation passed; the decision is in the books (and, with a
    /// WAL attached, in the journal).
    Committed(ServiceOutcome),
    /// A planned host changed since the snapshot (or a shared link the
    /// plan relied on saturated). Re-plan against a fresh snapshot.
    Conflict {
        /// The first planned host whose epoch moved (or, for a link
        /// conflict, the plan's first host).
        host: HostId,
    },
}

/// A committed placement: the decision plus its position in the
/// service's total commit order.
#[derive(Debug, Clone)]
pub struct ServiceOutcome {
    /// Commit sequence number — the service's total order. Replaying
    /// committed decisions in `seq` order over the base state
    /// reproduces the books exactly.
    pub seq: u64,
    /// The decision and search metrics;
    /// [`stats.commit_conflicts`](crate::SearchStats::commit_conflicts)
    /// and [`stats.replans`](crate::SearchStats::replans) record how
    /// contended this request's path to commit was.
    pub outcome: PlacementOutcome,
}

/// Cumulative service counters, serialized into `ostro serve` output
/// and the service benchmark artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Placements committed.
    pub committed: u64,
    /// Tenants released.
    pub released: u64,
    /// Requests rejected (planning failed against current books).
    pub rejected: u64,
    /// Optimistic commits that failed validation (the live books no
    /// longer admitted the decision, or — in strict mode — a planned
    /// host's epoch moved).
    pub commit_conflicts: u64,
    /// Epoch-stale decisions the live books still admitted (committed
    /// without re-planning; their objectives are snapshot-relative).
    pub stale_admissions: u64,
    /// Re-plans against a fresh snapshot after a lost commit race.
    pub replans: u64,
    /// Within-batch host-set overlaps detected by the up-front screen.
    /// In strict mode these members go straight to the retry path; with
    /// stale admission they proceed to live-book re-validation (and
    /// usually land in [`stale_admissions`](Self::stale_admissions)).
    pub overlap_conflicts: u64,
    /// Requests that exhausted their retry budget and planned
    /// serialized under the commit lock.
    pub serialized_fallbacks: u64,
    /// Batches popped by planners.
    pub batches: u64,
    /// Histogram of batch sizes: `batch_sizes[n]` batches held exactly
    /// `n` jobs.
    pub batch_sizes: Vec<u64>,
    /// Snapshots published (one per mutating lock acquisition).
    pub snapshots_published: u64,
    /// Group-commit WAL fsyncs issued.
    pub wal_syncs: u64,
}

/// The serialized half: the session (whose all-or-nothing commit is
/// the authoritative feasibility check), the commit sequence number,
/// and the per-host commit epochs validation compares against.
#[derive(Debug)]
struct Authority<'a> {
    session: SchedulerSession<'a>,
    seq: u64,
    host_epochs: Vec<u64>,
}

impl Authority<'_> {
    /// The first planned host whose epoch moved since the snapshot.
    fn stale_host(&self, planned: &PlannedPlacement) -> Option<HostId> {
        planned
            .hosts
            .iter()
            .copied()
            .find(|h| self.host_epochs[h.index()] != planned.snapshot.host_epochs[h.index()])
    }

    fn bump_epochs(&mut self, placement: &Placement) {
        let seq = self.seq;
        for &host in placement.assignments() {
            self.host_epochs[host.index()] = seq;
        }
    }

    fn apply_commit(
        &mut self,
        topology: &ApplicationTopology,
        placement: &Placement,
    ) -> Result<u64, PlacementError> {
        self.session.commit(topology, placement)?;
        self.seq += 1;
        self.bump_epochs(placement);
        Ok(self.seq)
    }

    fn apply_release(
        &mut self,
        topology: &ApplicationTopology,
        placement: &Placement,
    ) -> Result<u64, PlacementError> {
        self.session.release(topology, placement)?;
        self.seq += 1;
        self.bump_epochs(placement);
        Ok(self.seq)
    }
}

/// Outcome of one validate-commit under the lock, before stats and
/// snapshot publication are folded in.
enum Validated {
    /// Epoch-clean: committed with a snapshot-exact objective.
    Committed {
        seq: u64,
    },
    /// Epoch-stale but the live books still admitted it.
    CommittedStale {
        seq: u64,
    },
    Conflict {
        host: HostId,
    },
}

/// A batch's speculative books: one clone of the snapshot's state and
/// shared tables, with earlier batch members' decisions applied
/// virtually so later members plan around them instead of colliding.
/// Batch members plan sequentially on one planner thread, so the
/// overlay needs no synchronization; cross-planner races are still
/// caught by epoch validation at commit time.
struct BatchView {
    state: CapacityState,
    shared: SessionShared,
}

impl BatchView {
    /// Re-resolves `hosts` from the overlaid state — the same per-host
    /// resync the session's dirty-host journal performs after a real
    /// commit, so summaries, capacity-table columns, and the epoch
    /// component of cache keys stay value-correct.
    fn refresh_hosts(&mut self, hosts: impl IntoIterator<Item = HostId>) {
        for host in hosts {
            let free = self.state.available(host);
            self.shared.summaries[host.index()] = HostSummary {
                free,
                nic_mbps: self.state.nic_available(host).as_mbps(),
                avail_sig: avail_signature(free),
            };
            self.shared.table.refresh_base_host(&self.state, host);
            self.shared.epochs[host.index()] += 1;
        }
    }
}

/// The concurrent placement service. See the module docs for the
/// pipeline; [`serve`](Self::serve) for the batched front-end;
/// [`place_blocking`](Self::place_blocking) /
/// [`release_blocking`](Self::release_blocking) for direct calls (any
/// number of threads may call them concurrently — `&self` throughout).
#[derive(Debug)]
pub struct PlacementService<'a> {
    infra: &'a Infrastructure,
    authority: Mutex<Authority<'a>>,
    snapshot: Mutex<Arc<PlanSnapshot>>,
    stats: Mutex<ServiceStats>,
    config: ServiceConfig,
}

impl<'a> PlacementService<'a> {
    /// Wraps `session` in the service. The session's pending dirty
    /// hosts are drained and the initial snapshot published.
    #[must_use]
    pub fn new(mut session: SchedulerSession<'a>, config: ServiceConfig) -> Self {
        session.refresh();
        let infra = session.infrastructure();
        let host_epochs = vec![0u64; infra.host_count()];
        let snapshot = Arc::new(PlanSnapshot {
            seq: 0,
            host_epochs: host_epochs.clone(),
            state: session.state().clone(),
            shared: session.shared().clone_for_snapshot(),
        });
        PlacementService {
            infra,
            authority: Mutex::new(Authority { session, seq: 0, host_epochs }),
            snapshot: Mutex::new(snapshot),
            stats: Mutex::new(ServiceStats::default()),
            config,
        }
    }

    /// The service's configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The infrastructure the service places onto.
    #[must_use]
    pub fn infrastructure(&self) -> &'a Infrastructure {
        self.infra
    }

    /// The current commit sequence number.
    #[must_use]
    pub fn seq(&self) -> u64 {
        lock_unpoisoned(&self.authority).seq
    }

    /// A copy of the cumulative service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        lock_unpoisoned(&self.stats).clone()
    }

    /// Consumes the service, returning the session with every commit
    /// applied.
    #[must_use]
    pub fn into_session(self) -> SchedulerSession<'a> {
        let authority = match self.authority.into_inner() {
            Ok(a) => a,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut session = authority.session;
        session.refresh();
        session
    }

    fn note(&self, f: impl FnOnce(&mut ServiceStats)) {
        f(&mut lock_unpoisoned(&self.stats));
    }

    /// The current published snapshot. Cheap: an [`Arc`] clone.
    #[must_use]
    pub fn snapshot(&self) -> Arc<PlanSnapshot> {
        Arc::clone(&lock_unpoisoned(&self.snapshot))
    }

    /// Re-captures the snapshot from the authority's current books.
    /// Called with the lock held, after every mutating acquisition.
    fn publish_locked(&self, authority: &mut Authority<'a>) {
        authority.session.refresh();
        let snapshot = Arc::new(PlanSnapshot {
            seq: authority.seq,
            host_epochs: authority.host_epochs.clone(),
            state: authority.session.state().clone(),
            shared: authority.session.shared().clone_for_snapshot(),
        });
        *lock_unpoisoned(&self.snapshot) = snapshot;
        self.note(|st| st.snapshots_published += 1);
    }

    /// Group-commit point: fsync the WAL once for everything this lock
    /// acquisition committed, before any response is delivered.
    fn sync_locked(&self, authority: &mut Authority<'a>) {
        if self.config.durable_acks {
            authority.session.sync_wal();
            self.note(|st| st.wal_syncs += 1);
        }
    }

    /// Forces the knobs concurrent planning requires: request-level
    /// parallelism replaces intra-request scoring parallelism (a
    /// scoring pool serves one search at a time). Decisions are
    /// unaffected — parallel and serial scoring are bit-identical.
    fn planning_request(request: &PlacementRequest) -> PlacementRequest {
        let mut req = request.clone();
        req.parallel = false;
        req.score_threads = 1;
        req
    }

    /// Phase 1: plans `topology` against `snapshot` with no lock held.
    /// Safe to call from any number of threads concurrently.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::place`] — note the failure is relative to the
    /// snapshot's books, which may be stale;
    /// [`place_blocking`](Self::place_blocking) re-plans such failures
    /// against fresh state before rejecting.
    pub fn plan(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        snapshot: &Arc<PlanSnapshot>,
    ) -> Result<PlannedPlacement, PlacementError> {
        self.plan_against(topology, request, &snapshot.state, &snapshot.shared, snapshot)
    }

    /// Plans against arbitrary (`state`, `shared`) books — the
    /// snapshot's own, or a batch's speculative overlay — stamping the
    /// result with `origin` for epoch validation.
    fn plan_against(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        state: &CapacityState,
        shared: &SessionShared,
        origin: &Arc<PlanSnapshot>,
    ) -> Result<PlannedPlacement, PlacementError> {
        let req = Self::planning_request(request);
        let evictions_before = {
            let mut cache = lock_unpoisoned(&shared.cache);
            cache.begin_request();
            cache.evictions()
        };
        let result = Scheduler::new(self.infra).place_pinned_with(
            topology,
            state,
            &req,
            &vec![None; topology.node_count()],
            Some(shared),
        );
        let evictions_after = lock_unpoisoned(&shared.cache).evictions();
        let mut outcome = result?;
        outcome.stats.session_cache_evictions = evictions_after.saturating_sub(evictions_before);
        let mut hosts: Vec<HostId> = outcome.placement.assignments().to_vec();
        hosts.sort_unstable_by_key(|h| h.index());
        hosts.dedup();
        Ok(PlannedPlacement { outcome, snapshot: Arc::clone(origin), hosts })
    }

    /// Validate-commit under an already-held lock. Epoch-clean
    /// decisions commit with exact objectives; epoch-stale ones are
    /// re-validated by the session's all-or-nothing commit against the
    /// live books (unless [`ServiceConfig::admit_stale`] is off). A
    /// commit failure against books that moved since the snapshot is a
    /// conflict; against unmoved books it is a genuine error.
    fn validate_commit_locked(
        &self,
        authority: &mut Authority<'a>,
        topology: &ApplicationTopology,
        planned: &PlannedPlacement,
    ) -> Result<Validated, PlacementError> {
        if let Some(host) = authority.stale_host(planned) {
            if !self.config.admit_stale {
                return Ok(Validated::Conflict { host });
            }
            return match authority.apply_commit(topology, &planned.outcome.placement) {
                Ok(seq) => Ok(Validated::CommittedStale { seq }),
                Err(_) => Ok(Validated::Conflict { host }),
            };
        }
        match authority.apply_commit(topology, &planned.outcome.placement) {
            Ok(seq) => Ok(Validated::Committed { seq }),
            Err(e) => match planned.hosts.first() {
                Some(&host) if authority.seq != planned.snapshot.seq => {
                    Ok(Validated::Conflict { host })
                }
                _ => Err(e),
            },
        }
    }

    /// Phase 2: validates `planned`'s host epochs and, if nothing
    /// moved, commits it — taking the commit lock, publishing a fresh
    /// snapshot, and (with [`ServiceConfig::durable_acks`]) fsyncing
    /// the WAL before returning.
    ///
    /// # Errors
    ///
    /// As [`SchedulerSession::commit`], only when the snapshot was
    /// still current (stale-snapshot commit failures surface as
    /// [`CommitAttempt::Conflict`]).
    pub fn try_commit(
        &self,
        topology: &ApplicationTopology,
        planned: &PlannedPlacement,
    ) -> Result<CommitAttempt, PlacementError> {
        let mut authority = lock_unpoisoned(&self.authority);
        match self.validate_commit_locked(&mut authority, topology, planned)? {
            committed @ (Validated::Committed { .. } | Validated::CommittedStale { .. }) => {
                self.publish_locked(&mut authority);
                self.sync_locked(&mut authority);
                drop(authority);
                let seq = match committed {
                    Validated::Committed { seq } => {
                        self.note(|st| st.committed += 1);
                        seq
                    }
                    Validated::CommittedStale { seq } => {
                        self.note(|st| {
                            st.committed += 1;
                            st.stale_admissions += 1;
                        });
                        seq
                    }
                    Validated::Conflict { .. } => unreachable!("matched committed variants"),
                };
                Ok(CommitAttempt::Committed(ServiceOutcome {
                    seq,
                    outcome: planned.outcome.clone(),
                }))
            }
            Validated::Conflict { host } => {
                drop(authority);
                self.note(|st| st.commit_conflicts += 1);
                Ok(CommitAttempt::Conflict { host })
            }
        }
    }

    /// Last resort after the retry budget: plan *under* the commit
    /// lock, warm against the live session, where no concurrent commit
    /// can invalidate the decision.
    fn commit_serialized(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        conflicts: u64,
        replans: u64,
    ) -> Result<ServiceOutcome, PlacementError> {
        let req = Self::planning_request(request);
        self.note(|st| st.serialized_fallbacks += 1);
        let mut authority = lock_unpoisoned(&self.authority);
        let result = authority.session.place(topology, &req).and_then(|outcome| {
            authority.apply_commit(topology, &outcome.placement).map(|seq| (seq, outcome))
        });
        match result {
            Ok((seq, mut outcome)) => {
                self.publish_locked(&mut authority);
                self.sync_locked(&mut authority);
                drop(authority);
                self.note(|st| st.committed += 1);
                outcome.stats.commit_conflicts = conflicts;
                outcome.stats.replans = replans;
                Ok(ServiceOutcome { seq, outcome })
            }
            Err(e) => {
                drop(authority);
                self.note(|st| st.rejected += 1);
                Err(e)
            }
        }
    }

    /// The full optimistic loop from a given starting snapshot:
    /// plan → validate-commit → re-plan on conflict (bounded) →
    /// serialized fallback. `conflicts`/`replans` carry counts from
    /// attempts the caller already burned (the batch path).
    fn place_from(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
        mut snapshot: Arc<PlanSnapshot>,
        mut conflicts: u64,
        mut replans: u64,
    ) -> Result<ServiceOutcome, PlacementError> {
        loop {
            if replans > u64::from(self.config.max_retries) {
                return self.commit_serialized(topology, request, conflicts, replans);
            }
            let planned = match self.plan(topology, request, &snapshot) {
                Ok(p) => p,
                Err(e) => {
                    // A plan failure against *current* books is a
                    // genuine rejection; against stale books it gets a
                    // retry like any other loser.
                    if self.seq() == snapshot.seq {
                        self.note(|st| st.rejected += 1);
                        return Err(e);
                    }
                    replans += 1;
                    self.note(|st| st.replans += 1);
                    snapshot = self.snapshot();
                    continue;
                }
            };
            match self.try_commit(topology, &planned)? {
                CommitAttempt::Committed(mut outcome) => {
                    outcome.outcome.stats.commit_conflicts = conflicts;
                    outcome.outcome.stats.replans = replans;
                    return Ok(outcome);
                }
                CommitAttempt::Conflict { .. } => {
                    conflicts += 1;
                    replans += 1;
                    self.note(|st| st.replans += 1);
                    snapshot = self.snapshot();
                }
            }
        }
    }

    /// Places `topology` through the full optimistic pipeline,
    /// blocking until it commits or is rejected against current books.
    /// Any number of threads may call this concurrently.
    ///
    /// # Errors
    ///
    /// As [`Scheduler::place`], evaluated against current books.
    pub fn place_blocking(
        &self,
        topology: &ApplicationTopology,
        request: &PlacementRequest,
    ) -> Result<ServiceOutcome, PlacementError> {
        let snapshot = self.snapshot();
        self.place_from(topology, request, snapshot, 0, 0)
    }

    /// Releases a committed tenant. Releases never conflict — they are
    /// applied directly under the commit lock and take the next
    /// sequence number.
    ///
    /// # Errors
    ///
    /// As [`SchedulerSession::release`].
    pub fn release_blocking(
        &self,
        topology: &ApplicationTopology,
        placement: &Placement,
    ) -> Result<u64, PlacementError> {
        let mut authority = lock_unpoisoned(&self.authority);
        let seq = authority.apply_release(topology, placement)?;
        self.publish_locked(&mut authority);
        self.sync_locked(&mut authority);
        drop(authority);
        self.note(|st| st.released += 1);
        Ok(seq)
    }

    /// Runs the batched service front-end: spawns
    /// [`ServiceConfig::planners`] planner threads behind a FIFO
    /// queue, hands `driver` a [`ServiceHandle`] to submit jobs
    /// through, and drains the queue before returning `driver`'s
    /// result. Every submitted ticket is resolved by then.
    pub fn serve<R>(&self, driver: impl FnOnce(&ServiceHandle<'_, 'a>) -> R) -> R {
        let shared = ServeShared {
            queue: Mutex::new(ServeQueue { jobs: VecDeque::new(), closed: false }),
            cv: Condvar::new(),
        };
        std::thread::scope(|scope| {
            for _ in 0..self.config.planners.max(1) {
                scope.spawn(|| self.planner_loop(&shared));
            }
            // Close the queue when the driver returns *or unwinds* —
            // otherwise the planners would wait forever and the scope
            // would never join.
            let _close = CloseGuard(&shared);
            let handle = ServiceHandle { service: self, shared: &shared };
            driver(&handle)
        })
    }

    fn planner_loop(&self, shared: &ServeShared) {
        loop {
            let batch: Vec<Job> = {
                let mut queue = lock_unpoisoned(&shared.queue);
                loop {
                    if !queue.jobs.is_empty() {
                        break;
                    }
                    if queue.closed {
                        return;
                    }
                    queue = match shared.cv.wait(queue) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                let take = queue.jobs.len().min(self.config.batch.max(1));
                queue.jobs.drain(..take).collect()
            };
            self.process_batch(batch);
        }
    }

    /// One admission batch: plan every member against a single
    /// snapshot, screen within-batch host-set overlap up front, commit
    /// the survivors under one lock acquisition (one snapshot
    /// publication, one group-commit fsync), then push the losers
    /// through the individual retry path.
    fn process_batch(&self, batch: Vec<Job>) {
        self.note(|st| {
            st.batches += 1;
            if st.batch_sizes.len() <= batch.len() {
                st.batch_sizes.resize(batch.len() + 1, 0);
            }
            st.batch_sizes[batch.len()] += 1;
        });
        let snapshot = self.snapshot();

        // Phase 1: plan all arrivals with no lock held. Multi-member
        // batches plan against a speculative overlay of the snapshot:
        // each member's decision (place or release) is applied
        // virtually before the next member plans, so members stop
        // colliding with each other inside the batch. Overlaid plans
        // are epoch-stale by construction relative to the snapshot the
        // authority will validate against, which is exactly what the
        // stale-admission path handles — in strict mode the overlay is
        // skipped so epoch validation stays snapshot-exact.
        // (A batch holds at most `config.batch` of these, briefly.)
        #[allow(clippy::large_enum_variant)]
        enum Member {
            Place {
                topology: Arc<ApplicationTopology>,
                request: PlacementRequest,
                ticket: Arc<TicketInner>,
                plan: Result<PlannedPlacement, PlacementError>,
                overlap: bool,
            },
            Release {
                topology: Arc<ApplicationTopology>,
                placement: Placement,
                ticket: Arc<TicketInner>,
            },
        }
        let mut view = (self.config.admit_stale && batch.len() > 1).then(|| BatchView {
            state: snapshot.state.clone(),
            shared: snapshot.shared.clone_for_snapshot(),
        });
        let scheduler = Scheduler::new(self.infra);
        let mut members: Vec<Member> = batch
            .into_iter()
            .map(|job| match job {
                Job::Place { topology, request, ticket } => {
                    let plan = match view.as_mut() {
                        Some(view) => {
                            let plan = self.plan_against(
                                &topology,
                                &request,
                                &view.state,
                                &view.shared,
                                &snapshot,
                            );
                            if let Ok(planned) = &plan {
                                if scheduler
                                    .commit(&topology, &planned.outcome.placement, &mut view.state)
                                    .is_ok()
                                {
                                    view.refresh_hosts(planned.hosts.iter().copied());
                                }
                            }
                            plan
                        }
                        None => self.plan(&topology, &request, &snapshot),
                    };
                    Member::Place { topology, request, ticket, plan, overlap: false }
                }
                Job::Release { topology, placement, ticket } => {
                    if let Some(view) = view.as_mut() {
                        if scheduler.release(&topology, &placement, &mut view.state).is_ok() {
                            let mut hosts: Vec<HostId> = placement.assignments().to_vec();
                            hosts.sort_unstable_by_key(|h| h.index());
                            hosts.dedup();
                            view.refresh_hosts(hosts);
                        }
                    }
                    Member::Release { topology, placement, ticket }
                }
            })
            .collect();

        // Up-front overlap screen: members claim their host sets in
        // batch order; a later plan touching an already-claimed host
        // will be epoch-stale once the earlier member commits. With
        // stale admission on, the flag routes it through live-book
        // re-validation; in strict mode it goes straight to the retry
        // path without entering the lock.
        let mut claimed = vec![false; self.infra.host_count()];
        let mut overlaps = 0u64;
        for member in &mut members {
            match member {
                Member::Release { placement, .. } => {
                    for &host in placement.assignments() {
                        claimed[host.index()] = true;
                    }
                }
                Member::Place { plan: Ok(planned), overlap, .. } => {
                    if planned.hosts.iter().any(|h| claimed[h.index()]) {
                        *overlap = true;
                        overlaps += 1;
                    } else {
                        for &host in &planned.hosts {
                            claimed[host.index()] = true;
                        }
                    }
                }
                Member::Place { .. } => {}
            }
        }

        // Phase 2: one commit-lock acquisition for the whole batch.
        let mut acks: Vec<(Arc<TicketInner>, ServiceResponse)> = Vec::new();
        let mut losers: Vec<(Arc<ApplicationTopology>, PlacementRequest, Arc<TicketInner>, u64)> =
            Vec::new();
        let mut committed = 0u64;
        let mut released = 0u64;
        let mut rejected = 0u64;
        let mut conflicts = 0u64;
        let mut stale = 0u64;
        {
            let mut authority = lock_unpoisoned(&self.authority);
            let mut mutated = false;
            for member in members {
                match member {
                    Member::Release { topology, placement, ticket } => {
                        match authority.apply_release(&topology, &placement) {
                            Ok(seq) => {
                                mutated = true;
                                released += 1;
                                acks.push((ticket, ServiceResponse::Released { seq }));
                            }
                            Err(e) => {
                                rejected += 1;
                                acks.push((ticket, ServiceResponse::Failed(e)));
                            }
                        }
                    }
                    Member::Place { topology, request, ticket, plan, overlap } => match plan {
                        Ok(planned) if self.config.admit_stale || !overlap => {
                            match self.validate_commit_locked(&mut authority, &topology, &planned) {
                                Ok(
                                    v @ (Validated::Committed { .. }
                                    | Validated::CommittedStale { .. }),
                                ) => {
                                    let seq = match v {
                                        Validated::Committed { seq } => seq,
                                        Validated::CommittedStale { seq } => {
                                            stale += 1;
                                            seq
                                        }
                                        Validated::Conflict { .. } => {
                                            unreachable!("matched committed variants")
                                        }
                                    };
                                    mutated = true;
                                    committed += 1;
                                    let mut outcome = planned.outcome;
                                    outcome.stats.commit_conflicts = 0;
                                    outcome.stats.replans = 0;
                                    acks.push((
                                        ticket,
                                        ServiceResponse::Placed(ServiceOutcome { seq, outcome }),
                                    ));
                                }
                                Ok(Validated::Conflict { .. }) => {
                                    conflicts += 1;
                                    losers.push((topology, request, ticket, 1));
                                }
                                Err(e) => {
                                    rejected += 1;
                                    acks.push((ticket, ServiceResponse::Failed(e)));
                                }
                            }
                        }
                        Ok(_) => {
                            // Strict-mode overlap loser: counted as the
                            // conflict it would have been.
                            conflicts += 1;
                            losers.push((topology, request, ticket, 1));
                        }
                        Err(e) => {
                            if authority.seq == snapshot.seq {
                                rejected += 1;
                                acks.push((ticket, ServiceResponse::Failed(e)));
                            } else {
                                losers.push((topology, request, ticket, 0));
                            }
                        }
                    },
                }
            }
            if mutated {
                self.publish_locked(&mut authority);
                self.sync_locked(&mut authority);
            }
        }
        self.note(|st| {
            st.committed += committed;
            st.released += released;
            st.rejected += rejected;
            st.commit_conflicts += conflicts;
            st.overlap_conflicts += overlaps;
            st.stale_admissions += stale;
            // Every conflict loser re-plans in phase 4; count those
            // re-plans here so the global counter matches the sum of
            // the per-request `stats.replans` the losers will report.
            st.replans += conflicts;
        });

        // Phase 3: responses — after the group-commit fsync, so a
        // delivered `Placed` is durable.
        for (ticket, response) in acks {
            deliver(&ticket, response);
        }

        // Phase 4: losers re-plan individually against fresh snapshots.
        for (topology, request, ticket, burned) in losers {
            let response =
                match self.place_from(&topology, &request, self.snapshot(), burned, burned) {
                    Ok(outcome) => ServiceResponse::Placed(outcome),
                    Err(e) => ServiceResponse::Failed(e),
                };
            deliver(&ticket, response);
        }
    }
}

// ---------------------------------------------------------------------------
// The batched front-end: queue, jobs, tickets
// ---------------------------------------------------------------------------

struct ServeQueue {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct ServeShared {
    queue: Mutex<ServeQueue>,
    cv: Condvar,
}

/// Closes the queue on drop so planners drain and exit even when the
/// driver unwinds.
struct CloseGuard<'s>(&'s ServeShared);

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        lock_unpoisoned(&self.0.queue).closed = true;
        self.0.cv.notify_all();
    }
}

enum Job {
    Place {
        topology: Arc<ApplicationTopology>,
        request: PlacementRequest,
        ticket: Arc<TicketInner>,
    },
    Release {
        topology: Arc<ApplicationTopology>,
        placement: Placement,
        ticket: Arc<TicketInner>,
    },
}

/// The driver's side of a running [`PlacementService::serve`] call:
/// submit jobs, get [`Ticket`]s back.
#[derive(Clone, Copy)]
pub struct ServiceHandle<'s, 'a> {
    service: &'s PlacementService<'a>,
    shared: &'s ServeShared,
}

impl<'s, 'a> ServiceHandle<'s, 'a> {
    /// The service behind this handle.
    #[must_use]
    pub fn service(&self) -> &'s PlacementService<'a> {
        self.service
    }

    /// Enqueues a placement request; the returned ticket resolves to
    /// [`ServiceResponse::Placed`] or [`ServiceResponse::Failed`].
    pub fn submit(&self, topology: Arc<ApplicationTopology>, request: PlacementRequest) -> Ticket {
        let ticket = Arc::new(TicketInner::default());
        self.push(Job::Place { topology, request, ticket: Arc::clone(&ticket) });
        Ticket(ticket)
    }

    /// Enqueues a release; the returned ticket resolves to
    /// [`ServiceResponse::Released`] or [`ServiceResponse::Failed`].
    pub fn submit_release(
        &self,
        topology: Arc<ApplicationTopology>,
        placement: Placement,
    ) -> Ticket {
        let ticket = Arc::new(TicketInner::default());
        self.push(Job::Release { topology, placement, ticket: Arc::clone(&ticket) });
        Ticket(ticket)
    }

    fn push(&self, job: Job) {
        lock_unpoisoned(&self.shared.queue).jobs.push_back(job);
        self.shared.cv.notify_one();
    }
}

/// What a [`Ticket`] resolves to.
#[derive(Debug)]
pub enum ServiceResponse {
    /// The placement committed (durably, with [`ServiceConfig::durable_acks`]).
    Placed(ServiceOutcome),
    /// The release applied at commit sequence `seq`.
    Released {
        /// The release's position in the commit order.
        seq: u64,
    },
    /// The request was rejected against current books.
    Failed(PlacementError),
}

#[derive(Default)]
struct TicketInner {
    slot: Mutex<Option<(ServiceResponse, Instant)>>,
    cv: Condvar,
}

fn deliver(ticket: &TicketInner, response: ServiceResponse) {
    *lock_unpoisoned(&ticket.slot) = Some((response, Instant::now()));
    ticket.cv.notify_all();
}

/// A pending response from [`ServiceHandle::submit`] /
/// [`ServiceHandle::submit_release`].
pub struct Ticket(Arc<TicketInner>);

impl Ticket {
    /// Blocks until the job resolves.
    #[must_use]
    pub fn wait(self) -> ServiceResponse {
        self.wait_timed().0
    }

    /// Like [`wait`](Self::wait), also returning the instant the
    /// response was *delivered* (not observed) — what latency
    /// percentiles should measure when tickets are drained late.
    #[must_use]
    pub fn wait_timed(self) -> (ServiceResponse, Instant) {
        let mut slot = lock_unpoisoned(&self.0.slot);
        loop {
            if let Some(resolved) = slot.take() {
                return resolved;
            }
            slot = match self.0.cv.wait(slot) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Algorithm;
    use crate::validate::verify_placement;
    use crate::wal::{self, Wal, WalOptions};
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{Bandwidth, Resources, TopologyBuilder};

    fn infra_flat(racks: usize, hosts: usize) -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            racks,
            hosts,
            Resources::new(16, 32_768, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn pair_app(name: &str, vcpus: u32) -> ApplicationTopology {
        let mut b = TopologyBuilder::new(name);
        let x = b.vm("x", vcpus, 2_048).unwrap();
        let y = b.vm("y", vcpus, 2_048).unwrap();
        b.link(x, y, Bandwidth::from_mbps(150)).unwrap();
        b.build().unwrap()
    }

    fn hub_app(name: &str) -> ApplicationTopology {
        let mut b = TopologyBuilder::new(name);
        let hub = b.vm("hub", 4, 8_192).unwrap();
        for i in 0..3 {
            let w = b.vm(format!("w{i}"), 2, 2_048).unwrap();
            b.link(hub, w, Bandwidth::from_mbps(100 + 50 * i as u64)).unwrap();
        }
        b.build().unwrap()
    }

    fn request() -> PlacementRequest {
        PlacementRequest { algorithm: Algorithm::Greedy, ..PlacementRequest::default() }
    }

    /// Replays committed decisions in commit-sequence order over the
    /// base state, verifying each was feasible at its commit point,
    /// and asserts the fold equals `final_state` — the service's
    /// linearizability contract.
    fn assert_linearizable(
        infra: &Infrastructure,
        base: &CapacityState,
        mut events: Vec<(u64, ApplicationTopology, Option<Placement>)>,
        final_state: &CapacityState,
    ) {
        events.sort_by_key(|(seq, _, _)| *seq);
        let scheduler = Scheduler::new(infra);
        let mut state = base.clone();
        let mut last_seq = 0;
        for (seq, topology, placement) in &events {
            assert!(*seq > last_seq, "commit sequence numbers must be strictly increasing");
            last_seq = *seq;
            match placement {
                Some(p) => {
                    let violations = verify_placement(topology, infra, &state, p).unwrap();
                    assert!(
                        violations.is_empty(),
                        "decision at seq {seq} infeasible at its commit point: {violations:?}"
                    );
                    scheduler.commit(topology, p, &mut state).unwrap();
                }
                None => {
                    // A release event: placement is carried in the
                    // topology slot's paired entry; handled by caller.
                    unreachable!("release events carry placements");
                }
            }
        }
        assert_eq!(&state, final_state, "serial replay in commit order diverged from the books");
    }

    /// With one planner and batch size 1 the service path must be
    /// decision-identical to the serial warm session.
    #[test]
    fn single_planner_service_matches_serial_session() {
        let infra = infra_flat(2, 4);
        let shapes = [hub_app("a"), pair_app("b", 2), hub_app("c"), pair_app("d", 4), hub_app("e")];
        let req = request();

        // Serial warm session, with the same forced planning knobs.
        let serial_req = PlacementService::planning_request(&req);
        let mut session = SchedulerSession::new(&infra);
        let mut serial: Vec<Placement> = Vec::new();
        for shape in &shapes {
            let outcome = session.place(shape, &serial_req).unwrap();
            session.commit(shape, &outcome.placement).unwrap();
            serial.push(outcome.placement);
        }
        session.release(&shapes[1], &serial[1]).unwrap();
        let outcome = session.place(&shapes[1], &serial_req).unwrap();
        session.commit(&shapes[1], &outcome.placement).unwrap();
        let serial_replaced = outcome.placement.clone();
        let serial_state = session.into_state();

        // The same schedule through the service pipeline.
        let config = ServiceConfig { planners: 1, batch: 1, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);
        let mut placed: Vec<Placement> = Vec::new();
        for shape in &shapes {
            let outcome = service.place_blocking(shape, &req).unwrap();
            assert_eq!(outcome.outcome.stats.commit_conflicts, 0);
            placed.push(outcome.outcome.placement.clone());
        }
        service.release_blocking(&shapes[1], &placed[1]).unwrap();
        let replaced = service.place_blocking(&shapes[1], &req).unwrap();

        assert_eq!(placed, serial, "service decisions diverged from serial session");
        assert_eq!(replaced.outcome.placement, serial_replaced);
        assert_eq!(service.into_session().into_state(), serial_state);
    }

    /// The linearizability property: N concurrent requests committed
    /// through the service produce books identical to a serial replay
    /// of the committed decisions in commit-sequence order, each
    /// feasible at its commit point.
    #[test]
    fn concurrent_commits_linearize() {
        let infra = infra_flat(4, 8);
        let base = CapacityState::new(&infra);
        let req = request();
        let shapes: Vec<Arc<ApplicationTopology>> = (0..4)
            .map(|i| {
                Arc::new(if i % 2 == 0 {
                    hub_app(&format!("hub{i}"))
                } else {
                    pair_app(&format!("pair{i}"), 2 + i as u32)
                })
            })
            .collect();
        let config =
            ServiceConfig { planners: 4, batch: 2, max_retries: 2, ..ServiceConfig::default() };
        let service =
            PlacementService::new(SchedulerSession::with_state(&infra, base.clone()), config);

        let arrivals = 24usize;
        let responses: Vec<(usize, ServiceResponse)> = service.serve(|handle| {
            let tickets: Vec<(usize, Ticket)> = (0..arrivals)
                .map(|i| (i, handle.submit(Arc::clone(&shapes[i % shapes.len()]), req.clone())))
                .collect();
            tickets.into_iter().map(|(i, t)| (i, t.wait())).collect()
        });

        let mut events: Vec<(u64, ApplicationTopology, Option<Placement>)> = Vec::new();
        let mut committed = 0;
        for (i, response) in responses {
            match response {
                ServiceResponse::Placed(outcome) => {
                    committed += 1;
                    events.push((
                        outcome.seq,
                        (*shapes[i % shapes.len()]).clone(),
                        Some(outcome.outcome.placement),
                    ));
                }
                ServiceResponse::Failed(_) => {}
                ServiceResponse::Released { .. } => panic!("no releases submitted"),
            }
        }
        assert!(committed >= arrivals / 2, "too many rejections: {committed}/{arrivals}");
        let final_state = service.into_session().into_state();
        assert_linearizable(&infra, &base, events, &final_state);
    }

    /// A deterministic forced conflict in strict mode: plan against a
    /// snapshot, let a competing commit touch the planned hosts, and
    /// watch validation reject the stale plan; then run the full retry
    /// loop from the same stale snapshot and watch it re-plan once and
    /// commit.
    #[test]
    fn forced_conflict_is_detected_and_retried() {
        let infra = infra_flat(1, 2);
        let req = request();
        let config = ServiceConfig { admit_stale: false, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);

        // Plan A against the initial snapshot, then commit B — a tiny
        // DC guarantees host-set overlap.
        let stale = service.snapshot();
        let app_a = pair_app("a", 2);
        let planned = service.plan(&app_a, &req, &stale).unwrap();
        let app_b = pair_app("b", 2);
        service.place_blocking(&app_b, &req).unwrap();

        match service.try_commit(&app_a, &planned).unwrap() {
            CommitAttempt::Conflict { host } => {
                assert!(planned.hosts().contains(&host), "conflict must name a planned host");
            }
            CommitAttempt::Committed(_) => panic!("stale plan passed validation"),
        }
        assert_eq!(service.stats().commit_conflicts, 1);

        // The loop from the same stale snapshot: one conflict, one
        // re-plan, then commit.
        let outcome = service.place_from(&app_a, &req, stale, 0, 0).unwrap();
        assert_eq!(outcome.outcome.stats.commit_conflicts, 1);
        assert_eq!(outcome.outcome.stats.replans, 1);
        let stats = service.stats();
        assert_eq!(stats.commit_conflicts, 2);
        assert_eq!(stats.replans, 1);
        assert_eq!(stats.serialized_fallbacks, 0);
        assert_eq!(stats.committed, 2);
    }

    /// With a zero retry budget a conflicted request goes straight to
    /// the serialized fallback — and still commits.
    #[test]
    fn exhausted_retry_budget_falls_back_to_serialized_planning() {
        let infra = infra_flat(1, 2);
        let req = request();
        let config =
            ServiceConfig { max_retries: 0, admit_stale: false, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);

        let stale = service.snapshot();
        service.place_blocking(&pair_app("winner", 2), &req).unwrap();
        let outcome = service.place_from(&pair_app("loser", 2), &req, stale, 0, 0).unwrap();
        assert_eq!(outcome.outcome.stats.commit_conflicts, 1);
        let stats = service.stats();
        assert_eq!(stats.serialized_fallbacks, 1);
        assert_eq!(stats.committed, 2);
    }

    /// The batch path flags within-batch host-set overlap up front;
    /// with stale admission the overlapping member re-validates against
    /// the live books under the same lock and commits without a
    /// re-plan, with the histogram recording the batch size.
    #[test]
    fn batch_overlap_detected_up_front() {
        let infra = infra_flat(1, 2);
        let req = request();
        let config = ServiceConfig { planners: 1, batch: 4, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);

        let a = Arc::new(pair_app("a", 2));
        let b = Arc::new(pair_app("b", 2));
        let ta = Arc::new(TicketInner::default());
        let tb = Arc::new(TicketInner::default());
        service.process_batch(vec![
            Job::Place { topology: Arc::clone(&a), request: req.clone(), ticket: Arc::clone(&ta) },
            Job::Place { topology: Arc::clone(&b), request: req.clone(), ticket: Arc::clone(&tb) },
        ]);
        let ra = Ticket(ta).wait();
        let rb = Ticket(tb).wait();
        assert!(matches!(ra, ServiceResponse::Placed(_)), "first member must commit: {ra:?}");
        assert!(matches!(rb, ServiceResponse::Placed(_)), "overlap member must commit: {rb:?}");
        let stats = service.stats();
        assert_eq!(stats.overlap_conflicts, 1, "overlap must be caught before the lock");
        assert_eq!(stats.stale_admissions, 1, "the books still fit both pairs");
        assert_eq!(stats.commit_conflicts, 0);
        assert_eq!(stats.replans, 0);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_sizes, vec![0, 0, 1]);
        assert_eq!(stats.committed, 2);
    }

    /// Strict mode sends the within-batch overlap member to the retry
    /// path instead, where it re-plans and commits.
    #[test]
    fn strict_batch_overlap_goes_to_retry_path() {
        let infra = infra_flat(1, 2);
        let req = request();
        let config =
            ServiceConfig { planners: 1, batch: 4, admit_stale: false, ..ServiceConfig::default() };
        let service = PlacementService::new(SchedulerSession::new(&infra), config);

        let a = Arc::new(pair_app("a", 2));
        let b = Arc::new(pair_app("b", 2));
        let ta = Arc::new(TicketInner::default());
        let tb = Arc::new(TicketInner::default());
        service.process_batch(vec![
            Job::Place { topology: Arc::clone(&a), request: req.clone(), ticket: Arc::clone(&ta) },
            Job::Place { topology: Arc::clone(&b), request: req.clone(), ticket: Arc::clone(&tb) },
        ]);
        assert!(matches!(Ticket(ta).wait(), ServiceResponse::Placed(_)));
        assert!(matches!(Ticket(tb).wait(), ServiceResponse::Placed(_)));
        let stats = service.stats();
        assert_eq!(stats.overlap_conflicts, 1);
        assert_eq!(stats.commit_conflicts, 1, "strict mode turns the overlap into a conflict");
        assert_eq!(stats.replans, 1);
        assert_eq!(stats.stale_admissions, 0);
        assert_eq!(stats.committed, 2);
    }

    /// Stale admission end-to-end: a plan whose snapshot went stale
    /// commits without re-planning when the live books still admit it.
    #[test]
    fn stale_plan_admitted_when_books_still_fit() {
        let infra = infra_flat(1, 2);
        let req = request();
        let service =
            PlacementService::new(SchedulerSession::new(&infra), ServiceConfig::default());

        let stale = service.snapshot();
        let app_a = pair_app("a", 2);
        let planned = service.plan(&app_a, &req, &stale).unwrap();
        service.place_blocking(&pair_app("b", 2), &req).unwrap();

        match service.try_commit(&app_a, &planned).unwrap() {
            CommitAttempt::Committed(outcome) => assert_eq!(outcome.seq, 2),
            CommitAttempt::Conflict { .. } => panic!("books still fit — must admit stale plan"),
        }
        let stats = service.stats();
        assert_eq!(stats.stale_admissions, 1);
        assert_eq!(stats.commit_conflicts, 0);
        assert_eq!(stats.committed, 2);
    }

    /// Stale admission still conflicts when the racing commit actually
    /// consumed the capacity the plan relied on — and the retry loop
    /// then rejects against current books if nothing fits.
    #[test]
    fn stale_plan_conflicts_when_capacity_moved() {
        // 9-vcpu VMs cannot co-locate on a 16-vcpu host, so each pair
        // spreads 9+9 across both hosts; after one commits, the other
        // genuinely no longer fits anywhere.
        let infra = infra_flat(1, 2);
        let req = request();
        let service =
            PlacementService::new(SchedulerSession::new(&infra), ServiceConfig::default());

        let stale = service.snapshot();
        let loser = pair_app("loser", 9);
        service.place_blocking(&pair_app("winner", 9), &req).unwrap();
        let err = service.place_from(&loser, &req, stale, 0, 0).unwrap_err();
        let _ = err;
        let stats = service.stats();
        assert_eq!(stats.commit_conflicts, 1, "stale commit against full books must conflict");
        assert_eq!(stats.replans, 1);
        assert_eq!(stats.rejected, 1, "re-plan against current books finds nothing");
        assert_eq!(stats.stale_admissions, 0);
        assert_eq!(stats.committed, 1);
    }

    /// Group commit keeps acknowledged commits durable: everything the
    /// service acknowledged is recoverable from the WAL alone after an
    /// abrupt stop (no checkpoint, no graceful shutdown).
    #[test]
    fn acknowledged_commits_survive_a_crash() {
        let dir = std::env::temp_dir().join(format!("ostro-service-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let infra = infra_flat(2, 4);
        let req = request();
        let (journal, _recovery) =
            Wal::open(&dir, &infra, WalOptions { snapshot_every: 0, ..WalOptions::default() })
                .unwrap();
        let mut session = SchedulerSession::new(&infra);
        session.attach_wal(journal);
        let service = PlacementService::new(session, ServiceConfig::default());

        let shapes = [hub_app("a"), pair_app("b", 2), hub_app("c")];
        let mut placed = Vec::new();
        for shape in &shapes {
            placed.push(service.place_blocking(shape, &req).unwrap());
        }
        service.release_blocking(&shapes[1], &placed[1].outcome.placement).unwrap();
        let live = service.into_session().into_state();

        // "Crash": the Wal is simply dropped with the session — no
        // checkpoint. Recovery must reproduce every acknowledged
        // mutation.
        let recovered = wal::recover(&dir, &infra).unwrap();
        assert_eq!(recovered.state, live, "recovered books diverged from acknowledged commits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Sanity for the serve front-end: arrivals and departures mixed
    /// through the queue, every ticket resolves, and the books balance
    /// back to base after all tenants depart.
    #[test]
    fn serve_roundtrip_releases_everything() {
        let infra = infra_flat(2, 4);
        let base = CapacityState::new(&infra);
        let req = request();
        let config = ServiceConfig { planners: 2, batch: 3, ..ServiceConfig::default() };
        let service =
            PlacementService::new(SchedulerSession::with_state(&infra, base.clone()), config);
        let shapes: Vec<Arc<ApplicationTopology>> =
            (0..3).map(|i| Arc::new(pair_app(&format!("t{i}"), 2))).collect();

        service.serve(|handle| {
            let tickets: Vec<(usize, Ticket)> = (0..6)
                .map(|i| (i % 3, handle.submit(Arc::clone(&shapes[i % 3]), req.clone())))
                .collect();
            let mut live = Vec::new();
            for (shape, ticket) in tickets {
                match ticket.wait() {
                    ServiceResponse::Placed(outcome) => {
                        live.push((shape, outcome.outcome.placement))
                    }
                    ServiceResponse::Failed(e) => panic!("placement failed: {e}"),
                    ServiceResponse::Released { .. } => unreachable!(),
                }
            }
            let releases: Vec<Ticket> = live
                .into_iter()
                .map(|(shape, placement)| {
                    handle.submit_release(Arc::clone(&shapes[shape]), placement)
                })
                .collect();
            for ticket in releases {
                assert!(matches!(ticket.wait(), ServiceResponse::Released { .. }));
            }
        });
        let stats = service.stats();
        assert_eq!(stats.committed, 6);
        assert_eq!(stats.released, 6);
        assert_eq!(service.into_session().into_state(), base);
    }
}
