//! The estimate of §III-A2: a lower bound on the bandwidth cost of
//! completing a partial placement, computed by *approximately* placing
//! the remaining nodes onto the hosts already in use plus imaginary
//! hosts (Fig. 4).
//!
//! The bound is what makes EG's host choice forward-looking and what
//! lets BA\*/DBA\* prune: a path whose `u* + ū` already exceeds the
//! best known complete placement cannot win.
//!
//! Accounting rules (per the paper):
//! * imaginary hosts have the *maximum* real host capacity and are
//!   **not** counted toward `uc` — the host-count part of the bound is
//!   therefore zero, trivially admissible;
//! * an edge whose endpoints land on the same (real or imaginary) host
//!   costs nothing;
//! * a split edge costs its bandwidth times the *cheapest* hop cost
//!   compatible with the diversity constraints between its endpoints.

use ostro_datacenter::HostId;
use ostro_model::{NodeId, Resources};

use crate::search::{Ctx, Path};

/// Slot index type: real slots first, imaginary slots appended.
type SlotIdx = u32;
const UNASSIGNED: SlotIdx = SlotIdx::MAX;

struct Slots {
    /// Remaining capacity per slot.
    avail: Vec<Resources>,
    /// Real host behind the slot, if any.
    real: Vec<Option<HostId>>,
    /// Which slot each node sits on (placed, hypothetical, or approximated).
    of_node: Vec<SlotIdx>,
}

impl Slots {
    fn push(&mut self, avail: Resources, real: Option<HostId>) -> SlotIdx {
        let idx = self.avail.len() as SlotIdx;
        self.avail.push(avail);
        self.real.push(real);
        idx
    }
}

/// Estimates the hop-weighted Mbps still to be reserved after `path`
/// hypothetically places `node` on `host` (`GetHeuristic(vi, hj, ...)`).
pub(crate) fn lower_bound_mbps(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId, host: HostId) -> u64 {
    let n = ctx.topo.node_count();
    let mut slots = Slots {
        avail: Vec::with_capacity(16),
        real: Vec::with_capacity(16),
        of_node: vec![UNASSIGNED; n],
    };

    // Seed real slots with the hosts this application already uses,
    // including the hypothetical host for `node`.
    let mut slot_of_host: Vec<(HostId, SlotIdx)> = Vec::with_capacity(path.placed + 1);
    let mut slot_for = |slots: &mut Slots, h: HostId, path: &Path<'_>| -> SlotIdx {
        if let Some(&(_, s)) = slot_of_host.iter().find(|&&(hh, _)| hh == h) {
            return s;
        }
        let s = slots.push(path.overlay.available(h), Some(h));
        slot_of_host.push((h, s));
        s
    };
    for placed in ctx.topo.nodes() {
        if let Some(h) = path.assignment[placed.id().index()] {
            let s = slot_for(&mut slots, h, path);
            slots.of_node[placed.id().index()] = s;
        }
    }
    let s = slot_for(&mut slots, host, path);
    let req = ctx.topo.node(node).requirements();
    slots.avail[s as usize] = slots.avail[s as usize].saturating_sub(req);
    slots.of_node[node.index()] = s;

    // Approximately place the remaining nodes, heaviest bandwidth
    // first, co-locating each with the slot it is most linked to.
    let mut affinity: Vec<u64> = Vec::new();
    let mut touched: Vec<SlotIdx> = Vec::with_capacity(8);
    for &v in &ctx.bw_order {
        if slots.of_node[v.index()] != UNASSIGNED {
            continue;
        }
        affinity.resize(slots.avail.len(), 0);
        touched.clear();
        let mut assigned_bw = 0u64;
        let mut total_bw = 0u64;
        for &(neighbor, bw) in ctx.topo.neighbors(v) {
            total_bw += bw.as_mbps();
            let s = slots.of_node[neighbor.index()];
            if s != UNASSIGNED {
                if affinity[s as usize] == 0 {
                    touched.push(s);
                }
                affinity[s as usize] += bw.as_mbps();
                assigned_bw += bw.as_mbps();
            }
        }
        // Slots carrying a diversity-zone co-member are forbidden
        // (same-host placement violates every level).
        let vreq = ctx.topo.node(v).requirements();
        let mut best: Option<(u64, SlotIdx)> = None;
        'slot: for &s in &touched {
            for &zone_id in ctx.topo.zones_of(v) {
                for &member in ctx.topo.zone(zone_id).members() {
                    if member != v && slots.of_node[member.index()] == s {
                        continue 'slot;
                    }
                }
            }
            if !vreq.fits_within(&slots.avail[s as usize]) {
                continue;
            }
            let score = affinity[s as usize];
            if best.is_none_or(|(b, bs)| score > b || (score == b && s < bs)) {
                best = Some((score, s));
            }
        }
        // Reset the touched affinity entries for the next node.
        for &s in &touched {
            affinity[s as usize] = 0;
        }
        let remaining_bw = total_bw - assigned_bw;
        let dest = match best {
            // Condition (4): if the node is pulled harder by the still
            // unplaced nodes, keep it free on a fresh imaginary host.
            Some((score, s)) if remaining_bw <= score => s,
            // Conditions (1)–(3): no capacity, all zones violated, or
            // no link to any used host.
            _ => slots.push(ctx.max_capacity, None),
        };
        slots.avail[dest as usize] = slots.avail[dest as usize].saturating_sub(vreq);
        slots.of_node[v.index()] = dest;
    }

    // Cost every edge not already paid for by the placed prefix.
    let mut bound = 0u64;
    for link in ctx.topo.links() {
        let (a, b) = link.endpoints();
        let a_placed = path.assignment[a.index()].is_some() || a == node;
        let b_placed = path.assignment[b.index()].is_some() || b == node;
        if a_placed && b_placed {
            continue; // accounted in u* (or in the probe's added cost)
        }
        let sa = slots.of_node[a.index()];
        let sb = slots.of_node[b.index()];
        if sa == sb {
            continue;
        }
        let sep = ctx.topo.required_separation(a, b);
        let hop = ctx.sep_costs.min_cost(sep).max(ctx.min_split_cost);
        bound += link.bandwidth().as_mbps() * hop;
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, TopologyBuilder};

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn ctx_for<'a>(
        topo: &'a ApplicationTopology,
        infra: &'a Infrastructure,
        base: &'a CapacityState,
        req: &PlacementRequest,
    ) -> Ctx<'a> {
        Ctx::new(topo, infra, base, req, vec![None; topo.node_count()]).unwrap()
    }

    #[test]
    fn bound_is_zero_when_everything_can_colocate() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        let d = b.vm("d", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, d, Bandwidth::from_mbps(100)).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        // All three VMs fit on one host, all linked -> everything
        // gravitates to the same slot, bound = 0.
        assert_eq!(lower_bound_mbps(&ctx, &path, first, HostId::from_index(0)), 0);
    }

    #[test]
    fn diversity_forces_a_nonzero_bound() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        // The rack-level zone forces the 100 Mbps edge across racks:
        // at least 4 hops.
        assert_eq!(lower_bound_mbps(&ctx, &path, first, HostId::from_index(0)), 400);
    }

    #[test]
    fn capacity_pressure_forces_a_split() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 6, 2_048).unwrap();
        let c = b.vm("c", 6, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(50)).unwrap();
        let topo = b.build().unwrap();
        let infra = infra(); // 8 vCPUs per host: a and c cannot share
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        // The second VM cannot fit next to the first: split across
        // hosts at min cost 2 hops => 100.
        assert_eq!(lower_bound_mbps(&ctx, &path, first, HostId::from_index(0)), 100);
    }

    #[test]
    fn bound_never_exceeds_true_completion_cost_on_a_chain() {
        // a - b - c chain, all co-locatable: the bound from any partial
        // state must be <= the cost of the best completion (which is 0
        // when co-located).
        let mut b = TopologyBuilder::new("t");
        let x = b.vm("x", 1, 1_024).unwrap();
        let y = b.vm("y", 1, 1_024).unwrap();
        let z = b.vm("z", 1, 1_024).unwrap();
        b.link(x, y, Bandwidth::from_mbps(10)).unwrap();
        b.link(y, z, Bandwidth::from_mbps(10)).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        assert_eq!(lower_bound_mbps(&ctx, &path, first, HostId::from_index(0)), 0);
    }

    /// The invariant the memo cache rests on: the bound never consults
    /// host *identity* — only availabilities and minimum separation
    /// costs — so two candidate hosts that are unused by the path and
    /// expose the same available capacity yield bit-identical bounds.
    /// (This is what lets one cache entry serve a whole host group.)
    #[test]
    fn equal_availability_unused_hosts_share_the_exact_bound() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        let d = b.vm("d", 4, 4_096).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, d, Bandwidth::from_mbps(150)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, d]).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let mut path = Path::empty(&ctx);
        let first = ctx.order[0];
        path.place_mut(&ctx, first, HostId::from_index(0)).unwrap();
        let node = path.next_node(&ctx).unwrap();
        // Every fresh host (1..8) is untouched with identical base
        // availability: the candidate bound must not depend on which
        // one we probe, across racks included.
        let reference = lower_bound_mbps(&ctx, &path, node, HostId::from_index(1));
        for i in 2..8 {
            assert_eq!(
                lower_bound_mbps(&ctx, &path, node, HostId::from_index(i)),
                reference,
                "host {i} diverged from the group bound"
            );
        }
        // The used host has different availability and may differ; it
        // gets its own epoch-keyed cache entry, so no assertion here.
    }

    #[test]
    fn unlinked_heavy_nodes_go_to_imaginary_hosts_for_free() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        for i in 0..4 {
            b.vm(format!("iso{i}"), 8, 16_384).unwrap();
        }
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        // No links at all: bound must be zero (imaginary hosts are free).
        assert_eq!(lower_bound_mbps(&ctx, &path, a, HostId::from_index(0)), 0);
    }
}
