//! The estimate of §III-A2: a lower bound on the bandwidth cost of
//! completing a partial placement, computed by *approximately* placing
//! the remaining nodes onto the hosts already in use plus imaginary
//! hosts (Fig. 4).
//!
//! The bound is what makes EG's host choice forward-looking and what
//! lets BA\*/DBA\* prune: a path whose `u* + ū` already exceeds the
//! best known complete placement cannot win.
//!
//! Accounting rules (per the paper):
//! * imaginary hosts have the *maximum* real host capacity and are
//!   **not** counted toward `uc` — the host-count part of the bound is
//!   therefore zero, trivially admissible;
//! * an edge whose endpoints land on the same (real or imaginary) host
//!   costs nothing;
//! * a split edge costs its bandwidth times the *cheapest* hop cost
//!   compatible with the diversity constraints between its endpoints.

use std::cell::RefCell;

use ostro_datacenter::HostId;
use ostro_model::{NodeId, Resources};

use crate::search::{Ctx, Path};

/// Slot index type: real slots first, imaginary slots appended.
type SlotIdx = u32;
const UNASSIGNED: SlotIdx = SlotIdx::MAX;

/// Reusable per-thread buffers for one bound evaluation. The function
/// runs ~10⁵ times per solve on pool workers and the caller alike, so
/// its working set lives in thread-local (and, with pinned workers,
/// NUMA-local by first touch) memory instead of six fresh allocations
/// per call.
#[derive(Default)]
struct Scratch {
    /// Remaining capacity per slot (real slots first, imaginary after).
    avail: Vec<Resources>,
    /// Which slot each node sits on (placed, hypothetical, or approximated).
    of_node: Vec<SlotIdx>,
    /// Dense host-index → slot map (`UNASSIGNED` = no slot), replacing
    /// the former O(placed) association-list scan per lookup — the
    /// single hottest line of the scoring kernel at 1k hosts.
    slot_of_host: Vec<SlotIdx>,
    /// Host indices holding a `slot_of_host` entry, for O(slots) reset.
    slot_hosts: Vec<u32>,
    /// Per-slot linked bandwidth of the node being approximated.
    affinity: Vec<u64>,
    /// Slots with a nonzero `affinity` entry this pass.
    touched: Vec<SlotIdx>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Interns `h` as a real slot, seeding it with the overlay's remaining
/// availability on first sight.
fn slot_for(
    avail: &mut Vec<Resources>,
    slot_of_host: &mut [SlotIdx],
    slot_hosts: &mut Vec<u32>,
    path: &Path<'_>,
    h: HostId,
) -> SlotIdx {
    let hi = h.index();
    let existing = slot_of_host[hi];
    if existing != UNASSIGNED {
        return existing;
    }
    let s = avail.len() as SlotIdx;
    avail.push(path.overlay.available(h));
    slot_of_host[hi] = s;
    slot_hosts.push(hi as u32);
    s
}

/// Estimates the hop-weighted Mbps still to be reserved after `path`
/// hypothetically places `node` on `host` (`GetHeuristic(vi, hj, ...)`).
pub(crate) fn lower_bound_mbps(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId, host: HostId) -> u64 {
    SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        lower_bound_mbps_with(ctx, path, node, host, scratch)
    })
}

fn lower_bound_mbps_with(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    host: HostId,
    scratch: &mut Scratch,
) -> u64 {
    let n = ctx.topo.node_count();
    scratch.avail.clear();
    scratch.of_node.clear();
    scratch.of_node.resize(n, UNASSIGNED);
    if scratch.slot_of_host.len() < ctx.infra.host_count() {
        scratch.slot_of_host.resize(ctx.infra.host_count(), UNASSIGNED);
    }
    // Reset the previous call's host→slot entries (panic between calls
    // would leave them stale, so reset on entry, not exit).
    for &hi in &scratch.slot_hosts {
        scratch.slot_of_host[hi as usize] = UNASSIGNED;
    }
    scratch.slot_hosts.clear();

    // Seed real slots with the hosts this application already uses,
    // including the hypothetical host for `node`.
    for placed in ctx.topo.nodes() {
        if let Some(h) = path.assignment[placed.id().index()] {
            let s = slot_for(
                &mut scratch.avail,
                &mut scratch.slot_of_host,
                &mut scratch.slot_hosts,
                path,
                h,
            );
            scratch.of_node[placed.id().index()] = s;
        }
    }
    let s = slot_for(
        &mut scratch.avail,
        &mut scratch.slot_of_host,
        &mut scratch.slot_hosts,
        path,
        host,
    );
    let req = ctx.topo.node(node).requirements();
    scratch.avail[s as usize] = scratch.avail[s as usize].saturating_sub(req);
    scratch.of_node[node.index()] = s;

    // Approximately place the remaining nodes, heaviest bandwidth
    // first, co-locating each with the slot it is most linked to.
    // `affinity` is all-zero between passes (each pass resets exactly
    // the entries it touched), so reuse across calls needs no clear.
    for &v in &ctx.bw_order {
        if scratch.of_node[v.index()] != UNASSIGNED {
            continue;
        }
        scratch.affinity.resize(scratch.avail.len(), 0);
        scratch.touched.clear();
        let mut assigned_bw = 0u64;
        let mut total_bw = 0u64;
        for &(neighbor, bw) in ctx.topo.neighbors(v) {
            total_bw += bw.as_mbps();
            let s = scratch.of_node[neighbor.index()];
            if s != UNASSIGNED {
                if scratch.affinity[s as usize] == 0 {
                    scratch.touched.push(s);
                }
                scratch.affinity[s as usize] += bw.as_mbps();
                assigned_bw += bw.as_mbps();
            }
        }
        // Slots carrying a diversity-zone co-member are forbidden
        // (same-host placement violates every level).
        let vreq = ctx.topo.node(v).requirements();
        let mut best: Option<(u64, SlotIdx)> = None;
        'slot: for &s in &scratch.touched {
            for &zone_id in ctx.topo.zones_of(v) {
                for &member in ctx.topo.zone(zone_id).members() {
                    if member != v && scratch.of_node[member.index()] == s {
                        continue 'slot;
                    }
                }
            }
            if !vreq.fits_within(&scratch.avail[s as usize]) {
                continue;
            }
            let score = scratch.affinity[s as usize];
            if best.is_none_or(|(b, bs)| score > b || (score == b && s < bs)) {
                best = Some((score, s));
            }
        }
        // Reset the touched affinity entries for the next node.
        for &s in &scratch.touched {
            scratch.affinity[s as usize] = 0;
        }
        let remaining_bw = total_bw - assigned_bw;
        let dest = match best {
            // Condition (4): if the node is pulled harder by the still
            // unplaced nodes, keep it free on a fresh imaginary host.
            Some((score, s)) if remaining_bw <= score => s,
            // Conditions (1)–(3): no capacity, all zones violated, or
            // no link to any used host.
            _ => {
                let s = scratch.avail.len() as SlotIdx;
                scratch.avail.push(ctx.max_capacity);
                s
            }
        };
        scratch.avail[dest as usize] = scratch.avail[dest as usize].saturating_sub(vreq);
        scratch.of_node[v.index()] = dest;
    }

    // Cost every edge not already paid for by the placed prefix. The
    // per-link minimum split cost is precomputed in `ctx.link_costs`
    // (aligned with `topo.links()`).
    let mut bound = 0u64;
    for (link, &hop) in ctx.topo.links().iter().zip(&ctx.link_costs) {
        let (a, b) = link.endpoints();
        let a_placed = path.assignment[a.index()].is_some() || a == node;
        let b_placed = path.assignment[b.index()].is_some() || b == node;
        if a_placed && b_placed {
            continue; // accounted in u* (or in the probe's added cost)
        }
        let sa = scratch.of_node[a.index()];
        let sb = scratch.of_node[b.index()];
        if sa == sb {
            continue;
        }
        bound += link.bandwidth().as_mbps() * hop;
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, TopologyBuilder};

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn ctx_for<'a>(
        topo: &'a ApplicationTopology,
        infra: &'a Infrastructure,
        base: &'a CapacityState,
        req: &PlacementRequest,
    ) -> Ctx<'a> {
        Ctx::new(topo, infra, base, req, vec![None; topo.node_count()]).unwrap()
    }

    #[test]
    fn bound_is_zero_when_everything_can_colocate() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        let d = b.vm("d", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, d, Bandwidth::from_mbps(100)).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        // All three VMs fit on one host, all linked -> everything
        // gravitates to the same slot, bound = 0.
        assert_eq!(lower_bound_mbps(&ctx, &path, first, HostId::from_index(0)), 0);
    }

    #[test]
    fn diversity_forces_a_nonzero_bound() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        // The rack-level zone forces the 100 Mbps edge across racks:
        // at least 4 hops.
        assert_eq!(lower_bound_mbps(&ctx, &path, first, HostId::from_index(0)), 400);
    }

    #[test]
    fn capacity_pressure_forces_a_split() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 6, 2_048).unwrap();
        let c = b.vm("c", 6, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(50)).unwrap();
        let topo = b.build().unwrap();
        let infra = infra(); // 8 vCPUs per host: a and c cannot share
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        // The second VM cannot fit next to the first: split across
        // hosts at min cost 2 hops => 100.
        assert_eq!(lower_bound_mbps(&ctx, &path, first, HostId::from_index(0)), 100);
    }

    #[test]
    fn bound_never_exceeds_true_completion_cost_on_a_chain() {
        // a - b - c chain, all co-locatable: the bound from any partial
        // state must be <= the cost of the best completion (which is 0
        // when co-located).
        let mut b = TopologyBuilder::new("t");
        let x = b.vm("x", 1, 1_024).unwrap();
        let y = b.vm("y", 1, 1_024).unwrap();
        let z = b.vm("z", 1, 1_024).unwrap();
        b.link(x, y, Bandwidth::from_mbps(10)).unwrap();
        b.link(y, z, Bandwidth::from_mbps(10)).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        assert_eq!(lower_bound_mbps(&ctx, &path, first, HostId::from_index(0)), 0);
    }

    /// The invariant the memo cache rests on: the bound never consults
    /// host *identity* — only availabilities and minimum separation
    /// costs — so two candidate hosts that are unused by the path and
    /// expose the same available capacity yield bit-identical bounds.
    /// (This is what lets one cache entry serve a whole host group.)
    #[test]
    fn equal_availability_unused_hosts_share_the_exact_bound() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        let d = b.vm("d", 4, 4_096).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.link(c, d, Bandwidth::from_mbps(150)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, d]).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let mut path = Path::empty(&ctx);
        let first = ctx.order[0];
        path.place_mut(&ctx, first, HostId::from_index(0)).unwrap();
        let node = path.next_node(&ctx).unwrap();
        // Every fresh host (1..8) is untouched with identical base
        // availability: the candidate bound must not depend on which
        // one we probe, across racks included.
        let reference = lower_bound_mbps(&ctx, &path, node, HostId::from_index(1));
        for i in 2..8 {
            assert_eq!(
                lower_bound_mbps(&ctx, &path, node, HostId::from_index(i)),
                reference,
                "host {i} diverged from the group bound"
            );
        }
        // The used host has different availability and may differ; it
        // gets its own epoch-keyed cache entry, so no assertion here.
    }

    #[test]
    fn unlinked_heavy_nodes_go_to_imaginary_hosts_for_free() {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        for i in 0..4 {
            b.vm(format!("iso{i}"), 8, 16_384).unwrap();
        }
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = ctx_for(&topo, &infra, &base, &req);
        let path = Path::empty(&ctx);
        // No links at all: bound must be zero (imaginary hosts are free).
        assert_eq!(lower_bound_mbps(&ctx, &path, a, HostId::from_index(0)), 0);
    }
}
