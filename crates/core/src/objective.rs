use ostro_datacenter::{CapacityState, Infrastructure};
use ostro_model::ApplicationTopology;
use serde::{Deserialize, Serialize};

use crate::error::PlacementError;

/// The objective weights θbw and θc of §II-B1:
///
/// > min( θbw · ubw/ûbw + θc · uc/ûc ),  θbw + θc = 1
///
/// `bandwidth` (θbw) weights the total network bandwidth reserved for
/// the application; `hosts` (θc) weights the number of previously idle
/// hosts the placement activates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// θbw — weight of the normalized reserved-bandwidth term.
    pub bandwidth: f64,
    /// θc — weight of the normalized newly-activated-hosts term.
    pub hosts: f64,
}

impl ObjectiveWeights {
    /// The paper's simulation setting: θbw = 0.6, θc = 0.4.
    pub const SIMULATION: ObjectiveWeights = ObjectiveWeights { bandwidth: 0.6, hosts: 0.4 };

    /// The paper's testbed setting: θbw = 0.99, θc = 0.01 (bandwidth
    /// dominant, host count as tie-breaker).
    pub const BANDWIDTH_DOMINANT: ObjectiveWeights =
        ObjectiveWeights { bandwidth: 0.99, hosts: 0.01 };

    /// Creates and validates a weight pair.
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidWeights`] unless both weights are
    /// finite, non-negative, and sum to 1 (±1e-9).
    pub fn new(bandwidth: f64, hosts: f64) -> Result<Self, PlacementError> {
        let w = ObjectiveWeights { bandwidth, hosts };
        w.validate()?;
        Ok(w)
    }

    /// Re-validates the weights (useful after deserialization).
    ///
    /// # Errors
    ///
    /// [`PlacementError::InvalidWeights`] on any invalid combination.
    pub fn validate(&self) -> Result<(), PlacementError> {
        let ok = self.bandwidth.is_finite()
            && self.hosts.is_finite()
            && self.bandwidth >= 0.0
            && self.hosts >= 0.0
            && (self.bandwidth + self.hosts - 1.0).abs() <= 1e-9;
        if ok {
            Ok(())
        } else {
            Err(PlacementError::InvalidWeights { bandwidth: self.bandwidth, hosts: self.hosts })
        }
    }
}

impl Default for ObjectiveWeights {
    /// Defaults to the paper's simulation setting (θbw=0.6, θc=0.4).
    fn default() -> Self {
        ObjectiveWeights::SIMULATION
    }
}

/// Worst-case normalizers ûbw and ûc for one placement request, fixed
/// at the start of the search.
///
/// * `ubw_worst` — every application link routed at the maximum hop
///   cost the infrastructure allows.
/// * `uc_worst` — every node activating its own previously idle host,
///   capped by how many idle hosts exist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizers {
    /// ûbw in Mbps (≥ 1 to avoid division by zero).
    pub ubw_worst_mbps: f64,
    /// ûc in hosts (≥ 1 to avoid division by zero).
    pub uc_worst: f64,
}

impl Normalizers {
    /// Computes the normalizers for `topology` placed onto `infra`
    /// starting from `state`.
    #[must_use]
    pub fn compute(
        topology: &ApplicationTopology,
        infra: &Infrastructure,
        state: &CapacityState,
    ) -> Self {
        let worst_hops = infra.max_hop_cost();
        let ubw = topology.total_link_bandwidth().as_mbps() * worst_hops;
        let idle = infra.host_count().saturating_sub(state.active_host_count());
        let uc = topology.node_count().min(idle);
        Normalizers { ubw_worst_mbps: (ubw as f64).max(1.0), uc_worst: (uc as f64).max(1.0) }
    }

    /// The normalized objective u = θbw·ubw/ûbw + θc·uc/ûc.
    #[must_use]
    pub fn objective(&self, weights: ObjectiveWeights, ubw_mbps: u64, new_hosts: usize) -> f64 {
        weights.bandwidth * (ubw_mbps as f64 / self.ubw_worst_mbps)
            + weights.hosts * (new_hosts as f64 / self.uc_worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{Bandwidth, Resources, TopologyBuilder};

    #[test]
    fn weights_validate() {
        assert!(ObjectiveWeights::new(0.6, 0.4).is_ok());
        assert!(ObjectiveWeights::new(1.0, 0.0).is_ok());
        assert!(ObjectiveWeights::new(0.7, 0.7).is_err());
        assert!(ObjectiveWeights::new(-0.2, 1.2).is_err());
        assert!(ObjectiveWeights::new(f64::NAN, 1.0).is_err());
        assert!(ObjectiveWeights::SIMULATION.validate().is_ok());
        assert!(ObjectiveWeights::BANDWIDTH_DOMINANT.validate().is_ok());
        assert_eq!(ObjectiveWeights::default(), ObjectiveWeights::SIMULATION);
    }

    fn fixtures() -> (ApplicationTopology, Infrastructure) {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 1, 1024).unwrap();
        let c = b.vm("c", 1, 1024).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        let t = b.build().unwrap();
        let infra = InfrastructureBuilder::flat(
            "dc",
            2,
            2,
            Resources::new(8, 8192, 100),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        (t, infra)
    }

    #[test]
    fn normalizers_use_worst_case() {
        let (t, infra) = fixtures();
        let state = CapacityState::new(&infra);
        let n = Normalizers::compute(&t, &infra, &state);
        // One 100 Mbps link at max hop cost 4 (flat site, 2 racks).
        assert_eq!(n.ubw_worst_mbps, 400.0);
        // 2 nodes, 4 idle hosts -> ûc = 2.
        assert_eq!(n.uc_worst, 2.0);
    }

    #[test]
    fn uc_worst_is_capped_by_idle_hosts() {
        let (t, infra) = fixtures();
        let mut state = CapacityState::new(&infra);
        for h in infra.hosts().iter().take(3) {
            state.reserve_node(h.id(), Resources::new(1, 1, 1)).unwrap();
        }
        let n = Normalizers::compute(&t, &infra, &state);
        assert_eq!(n.uc_worst, 1.0); // only one idle host left
    }

    #[test]
    fn objective_combines_terms() {
        let n = Normalizers { ubw_worst_mbps: 1000.0, uc_worst: 10.0 };
        let w = ObjectiveWeights::new(0.6, 0.4).unwrap();
        let u = n.objective(w, 500, 5);
        assert!((u - (0.6 * 0.5 + 0.4 * 0.5)).abs() < 1e-12);
        // Best case is zero; worst case is one.
        assert_eq!(n.objective(w, 0, 0), 0.0);
        assert!((n.objective(w, 1000, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalizers_never_divide_by_zero() {
        let mut b = TopologyBuilder::new("lonely");
        b.vm("only", 1, 1024).unwrap();
        let t = b.build().unwrap();
        let infra = InfrastructureBuilder::flat(
            "dc",
            1,
            1,
            Resources::new(8, 8192, 100),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        let mut state = CapacityState::new(&infra);
        state.reserve_node(infra.hosts()[0].id(), Resources::new(1, 1, 1)).unwrap();
        let n = Normalizers::compute(&t, &infra, &state);
        assert_eq!(n.ubw_worst_mbps, 1.0);
        assert_eq!(n.uc_worst, 1.0);
        assert!(n.objective(ObjectiveWeights::default(), 0, 0).is_finite());
    }
}
