//! The deadline-bounded A\* search `DBA*` (§III-C): BA\* plus
//! progressive probabilistic pruning so a decision is produced within
//! a wall-clock budget T.
//!
//! A path of length |V\*p| is pruned with probability `p(x > s)` where
//! `x ~ U[0, r)` and `s = |V*p| / |V|` — deep paths survive, shallow
//! ones are culled, biasing the search depth-first. The range bound `r`
//! starts at zero (no pruning) and grows by `α = 0.2 · (T / T_left)`
//! whenever the forecast number of remaining open paths exceeds what
//! the remaining time can absorb.

use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::astar::{run_astar, SearchPolicy};
use crate::error::PlacementError;
use crate::placement::SearchStats;
use crate::search::{Ctx, Path};

/// When a service job entered the ingress queue, on whichever clock
/// the service runs its admission deadline budgets: real wall time, or
/// — for deterministic overload tests and the chaos harness — the
/// virtual submission-tick counter (the queue-level analogue of
/// [`DeadlineClock::Tick`]: queue age becomes a pure function of the
/// submission schedule, never of the machine).
#[derive(Debug, Clone, Copy)]
pub(crate) enum BudgetStamp {
    /// Wall-clock admission time (the default).
    Wall(Instant),
    /// The service's submission-tick counter at admission.
    Tick(u64),
}

/// The clock a [`DeadlinePolicy`] reads. Wall time by default; the
/// virtual variant is a deterministic tick clock (the same simulated-
/// tick idea as the deploy retry loop's backoff ticks): every poll
/// advances time by one fixed step, so every deadline decision — stop,
/// prune-rate growth, refresh budgeting — depends only on the search
/// trajectory, never on the machine. That is what lets crash-replay
/// bit-identity tests cover DBA\*.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DeadlineClock {
    /// Real wall-clock time since the search started (the default).
    Wall(Instant),
    /// Deterministic virtual time: each `elapsed()` poll costs one
    /// `step`.
    Tick {
        /// Virtual cost of one poll.
        step: Duration,
        /// Virtual time accumulated so far.
        elapsed: Duration,
    },
}

impl DeadlineClock {
    fn elapsed(&mut self) -> Duration {
        match self {
            DeadlineClock::Wall(start) => start.elapsed(),
            DeadlineClock::Tick { step, elapsed } => {
                *elapsed += *step;
                *elapsed
            }
        }
    }

    fn is_virtual(&self) -> bool {
        matches!(self, DeadlineClock::Tick { .. })
    }

    fn step(&self) -> Duration {
        match self {
            DeadlineClock::Wall(_) => Duration::ZERO,
            DeadlineClock::Tick { step, .. } => *step,
        }
    }
}

pub(crate) struct DeadlinePolicy {
    clock: DeadlineClock,
    deadline: Duration,
    rng: SmallRng,
    /// Upper bound of the pruning range (the paper's `r`).
    r: f64,
    next_check: Duration,
    total_nodes: usize,
    /// L\[i\]: open-queue entries of length i.
    len_hist: Vec<f64>,
    last_popped_len: usize,
    pops: u64,
    /// Deepest path an upper-bound refresh has run from.
    deepest_refresh: usize,
    /// Cost of the initial full EG run, used to budget refreshes.
    initial_eg: Duration,
    /// Wall-clock time spent on refreshes so far.
    refresh_spent: Duration,
    /// Cost of the most recent refresh (a better estimator than the
    /// initial uncapped EG, since refreshes are candidate-capped).
    last_refresh: Option<Duration>,
}

impl DeadlinePolicy {
    pub(crate) fn with_clock(
        deadline: Duration,
        seed: u64,
        total_nodes: usize,
        clock: DeadlineClock,
    ) -> Self {
        DeadlinePolicy {
            clock,
            deadline,
            rng: SmallRng::seed_from_u64(seed),
            r: 0.0,
            next_check: deadline / 2,
            total_nodes: total_nodes.max(1),
            len_hist: vec![0.0; total_nodes + 2],
            last_popped_len: 0,
            pops: 0,
            deepest_refresh: 0,
            initial_eg: Duration::ZERO,
            refresh_spent: Duration::ZERO,
            last_refresh: None,
        }
    }

    /// Forecast of open paths still to be handled (the paper's
    /// |P^left| recurrence over L\[i\]).
    fn forecast_open_paths(&self, avg_branching: f64) -> f64 {
        let mut sim = self.len_hist.clone();
        let mut p_left = 0.0;
        for i in self.last_popped_len..self.total_nodes {
            let s = i as f64 / self.total_nodes as f64;
            let keep = self.keep_probability(s);
            let handled = sim[i].max(0.0) * keep;
            p_left += handled;
            // Each surviving path spawns ~avg_branching children, which
            // must themselves survive insertion pruning.
            sim[i + 1] += sim[i].max(0.0) * keep * keep * avg_branching;
        }
        p_left
    }

    /// 1 − p(x > s): the probability a path at progress `s` survives.
    fn keep_probability(&self, s: f64) -> f64 {
        if self.r <= s || self.r <= 0.0 {
            1.0
        } else {
            (s / self.r).clamp(0.0, 1.0)
        }
    }
}

impl SearchPolicy for DeadlinePolicy {
    fn on_push(&mut self, placed: usize) {
        self.len_hist[placed.min(self.total_nodes + 1)] += 1.0;
    }

    fn on_pop(&mut self, placed: usize) {
        let i = placed.min(self.total_nodes + 1);
        self.len_hist[i] = (self.len_hist[i] - 1.0).max(0.0);
        self.last_popped_len = placed;
        self.pops += 1;
    }

    fn should_prune(&mut self, placed: usize) -> bool {
        let s = placed as f64 / self.total_nodes as f64;
        if self.r <= s {
            return false;
        }
        self.rng.gen_range(0.0..self.r) > s
    }

    fn note_initial_eg(&mut self, elapsed: Duration) {
        // Under the virtual clock, wall measurements would reintroduce
        // nondeterminism; charge a fixed six ticks instead (so the
        // default per-refresh estimate below is exactly one tick).
        self.initial_eg = if self.clock.is_virtual() { self.clock.step() * 6 } else { elapsed };
    }

    /// Deadline-aware refresh rule: greedily complete promising popped
    /// prefixes as often as the remaining budget allows. Each refresh
    /// is a (candidate-capped) greedy completion of a different
    /// low-estimate prefix, so spending a large share of the deadline
    /// on refreshes is exactly how a larger T buys a better placement
    /// (the paper's Fig. 6 behavior). At most ~70% of the budget goes
    /// to refreshes; the rest drives the A\* frontier that supplies
    /// the prefixes.
    fn should_refresh(&mut self, placed: usize, _u_total: f64, _umax: f64) -> bool {
        let elapsed = self.clock.elapsed();
        if elapsed >= self.deadline {
            return false;
        }
        let remaining_frac =
            (self.total_nodes - placed.min(self.total_nodes)) as f64 / self.total_nodes as f64;
        // Refreshes are candidate-capped, so before the first
        // observation assume they cost a fraction of the full EG run.
        let per_full_run =
            self.last_refresh.map_or(self.initial_eg.as_secs_f64() / 6.0, |d| d.as_secs_f64());
        let estimated = per_full_run * remaining_frac;
        let left = (self.deadline - elapsed).as_secs_f64();
        if estimated > 0.9 * left {
            return false;
        }
        if self.refresh_spent.as_secs_f64() + estimated > 0.7 * self.deadline.as_secs_f64() {
            return false;
        }
        self.deepest_refresh = self.deepest_refresh.max(placed);
        true
    }

    fn note_refresh(&mut self, elapsed: Duration) {
        // Virtual clock: every refresh costs exactly one tick, keeping
        // the budget arithmetic machine-independent.
        let elapsed = if self.clock.is_virtual() { self.clock.step() } else { elapsed };
        self.refresh_spent += elapsed;
        // Scale the observation back up to a full-depth run.
        let frac =
            1.0 - self.deepest_refresh.min(self.total_nodes) as f64 / self.total_nodes as f64;
        if frac > 0.05 {
            self.last_refresh = Some(elapsed.div_f64(frac.max(0.05)));
        }
    }

    fn should_stop(&mut self, stats: &SearchStats) -> bool {
        let elapsed = self.clock.elapsed();
        if elapsed >= self.deadline {
            return true;
        }
        if elapsed >= self.next_check && self.pops > 0 {
            let t_left = self.deadline - elapsed;
            // How many more paths can be handled in the time left.
            let avg_pop_secs = elapsed.as_secs_f64() / self.pops as f64;
            let capacity = t_left.as_secs_f64() / avg_pop_secs.max(1e-9);
            let avg_branching = stats.generated as f64 / stats.expanded.max(1) as f64;
            if self.forecast_open_paths(avg_branching) > capacity {
                let alpha = 0.2 * (self.deadline.as_secs_f64() / t_left.as_secs_f64().max(1e-6));
                self.r += alpha;
            }
            self.next_check = elapsed + t_left / 2;
        }
        false
    }
}

/// Runs DBA\*: BA\* with pruning tuned to finish within `deadline`.
///
/// When the deadline fires mid-search, the best EG-completed upper
/// bound found so far is returned and `stats.deadline_hit` is set.
///
/// `virtual_tick_us` > 0 replaces the wall clock with a deterministic
/// tick clock (each poll costs that many virtual microseconds), making
/// every deadline decision a pure function of the request — see
/// [`PlacementRequest::virtual_tick_us`](crate::PlacementRequest::virtual_tick_us).
pub(crate) fn run_dbastar<'a>(
    ctx: &Ctx<'a>,
    stats: &mut SearchStats,
    deadline: Duration,
    seed: u64,
    max_expansions: u64,
    virtual_tick_us: u64,
) -> Result<Path<'a>, PlacementError> {
    if deadline.is_zero() {
        return Err(PlacementError::ZeroDeadline);
    }
    let clock = if virtual_tick_us > 0 {
        DeadlineClock::Tick {
            step: Duration::from_micros(virtual_tick_us),
            elapsed: Duration::ZERO,
        }
    } else {
        DeadlineClock::Wall(Instant::now())
    };
    let mut policy = DeadlinePolicy::with_clock(deadline, seed, ctx.topo.node_count(), clock);
    run_astar(ctx, stats, max_expansions, &mut policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::ObjectiveWeights;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            4,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn chain(n: usize) -> ApplicationTopology {
        let mut b = TopologyBuilder::new("chain");
        let mut prev = b.vm("v0", 1, 1_024).unwrap();
        let mut all = vec![prev];
        for i in 1..n {
            let v = b.vm(format!("v{i}"), 1, 1_024).unwrap();
            b.link(prev, v, Bandwidth::from_mbps(50)).unwrap();
            prev = v;
            all.push(v);
        }
        b.diversity_zone("spread", DiversityLevel::Host, &all).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn completes_within_a_generous_deadline() {
        let topo = chain(5);
        let inf = infra();
        let base = CapacityState::new(&inf);
        let req = PlacementRequest {
            weights: ObjectiveWeights::BANDWIDTH_DOMINANT,
            parallel: false,
            ..PlacementRequest::default()
        };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; topo.node_count()]).unwrap();
        let mut stats = SearchStats::default();
        let path = run_dbastar(&ctx, &mut stats, Duration::from_secs(10), 42, 0, 0).unwrap();
        assert!(path.is_complete(&ctx));
    }

    #[test]
    fn tight_deadline_returns_quickly_with_a_valid_placement() {
        let topo = chain(8);
        let inf = infra();
        let base = CapacityState::new(&inf);
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; topo.node_count()]).unwrap();
        let mut stats = SearchStats::default();
        let started = Instant::now();
        let path = run_dbastar(&ctx, &mut stats, Duration::from_millis(30), 42, 0, 0).unwrap();
        // Budget plus slack for one in-flight expansion.
        assert!(started.elapsed() < Duration::from_secs(5));
        assert!(path.is_complete(&ctx));
    }

    #[test]
    fn zero_deadline_is_rejected() {
        let topo = chain(3);
        let inf = infra();
        let base = CapacityState::new(&inf);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; topo.node_count()]).unwrap();
        let err =
            run_dbastar(&ctx, &mut SearchStats::default(), Duration::ZERO, 1, 0, 0).unwrap_err();
        assert_eq!(err, PlacementError::ZeroDeadline);
    }

    #[test]
    fn same_seed_same_answer() {
        let topo = chain(6);
        let inf = infra();
        let base = CapacityState::new(&inf);
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; topo.node_count()]).unwrap();
        let a = run_dbastar(&ctx, &mut SearchStats::default(), Duration::from_secs(5), 7, 0, 0)
            .unwrap();
        let b = run_dbastar(&ctx, &mut SearchStats::default(), Duration::from_secs(5), 7, 0, 0)
            .unwrap();
        assert_eq!(a.assignment, b.assignment);
    }

    /// The virtual-clock satellite: with a non-zero tick, the deadline
    /// machinery stops consulting the machine entirely, so two runs
    /// repeat every statistic bit-for-bit — including where the
    /// deadline fired — which wall-clock DBA\* cannot promise.
    #[test]
    fn virtual_clock_makes_deadline_decisions_deterministic() {
        let topo = chain(8);
        let inf = infra();
        let base = CapacityState::new(&inf);
        let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &inf, &base, &req, vec![None; topo.node_count()]).unwrap();
        // 1 ms of virtual time at 50 µs per poll: the budget expires
        // after a fixed number of polls regardless of machine speed.
        let run = || {
            let mut stats = SearchStats::default();
            let path = run_dbastar(&ctx, &mut stats, Duration::from_millis(1), 42, 0, 50).unwrap();
            (path.assignment.clone(), stats)
        };
        let (a1, s1) = run();
        let (a2, s2) = run();
        assert_eq!(a1, a2, "assignments must repeat");
        assert_eq!(s1, s2, "every stat, deadline behavior included, must repeat exactly");
        assert!(s1.expanded > 0);
    }

    #[test]
    fn keep_probability_shape() {
        let mut p = DeadlinePolicy::with_clock(
            Duration::from_secs(1),
            1,
            10,
            DeadlineClock::Wall(Instant::now()),
        );
        // r = 0: everything survives.
        assert_eq!(p.keep_probability(0.1), 1.0);
        p.r = 0.8;
        // Deeper paths survive more.
        assert!(p.keep_probability(0.7) > p.keep_probability(0.2));
        assert_eq!(p.keep_probability(0.9), 1.0); // s >= r
    }

    #[test]
    fn pruning_increases_with_r() {
        let mut p = DeadlinePolicy::with_clock(
            Duration::from_secs(1),
            99,
            100,
            DeadlineClock::Wall(Instant::now()),
        );
        p.r = 0.0;
        assert!((0..100).filter(|_| p.should_prune(10)).count() == 0);
        p.r = 5.0;
        let pruned = (0..1000).filter(|_| p.should_prune(10)).count();
        // s = 0.1, r = 5 -> prune probability 0.98.
        assert!(pruned > 900, "pruned {pruned}");
    }
}
