//! The self-healing maintenance plane: suspicion-driven draining plus
//! budgeted defragmentation sweeps.
//!
//! A long-running fleet decays in two independent ways. Hosts fail
//! *gradually* — heartbeats stretch, then stop — and the reactive
//! evacuate-after-crash path (PR 3) moves tenants only once their
//! replicas are already dead. And sustained churn *fragments* the
//! books: departures strand slivers of capacity on half-empty hosts
//! and leave surviving tenants scattered across more hosts (and more
//! hops) than a fresh solve would use. [`MaintenancePlane`] repairs
//! both, continuously and deterministically:
//!
//! * **Draining.** A [`HealthMonitor`](crate::HealthMonitor) watches
//!   per-host heartbeat streams; when a host's suspicion crosses the
//!   drain threshold the plane freezes it
//!   ([`SchedulerSession::quarantine_host`]) and migrates its tenants
//!   away with bounded, backoff-capped retries — *before* the crash,
//!   while the replicas still answer.
//! * **Defragmentation.** Each tick the plane examines a bounded,
//!   round-robin slice of the tenant ledger. For every candidate it
//!   asks, on a scratch copy of the books, "released and re-placed
//!   from scratch, where would this tenant land?" and applies the move
//!   only when it frees a host outright or recovers at least
//!   [`MaintenanceConfig::min_bw_gain_mbps`] of hop-weighted
//!   bandwidth, within the per-sweep node-move budget.
//!
//! Every accepted move goes through [`SchedulerSession::migrate`]: one
//! atomic WAL record holding the release of the old placement and the
//! commit of the new one, so a crash anywhere mid-sweep recovers to
//! books identical to the live run — there is no observable half-moved
//! tenant. Sweeps yield to foreground traffic: when the service queue
//! deepens past [`MaintenanceConfig::yield_queue_depth`] or the
//! degrade ladder (PR 8) is off its normal rung, the sweep skips the
//! tick entirely and only drains proceed.
//!
//! Everything is driven by an integer tick clock and examines tenants
//! in a deterministic order, so two same-seed runs produce identical
//! migration logs and identical final books (`scripts/verify.sh`
//! diffs exactly that).

use std::sync::Arc;

use ostro_datacenter::{CapacityState, HostId, Infrastructure};
use ostro_model::ApplicationTopology;
use serde::{Deserialize, Serialize};

use crate::error::PlacementError;
use crate::health::{HealthConfig, HealthMonitor, HealthState, HealthTransition};
use crate::objective::ObjectiveWeights;
use crate::online::replace_rounds;
use crate::placement::Placement;
use crate::request::PlacementRequest;
use crate::session::SchedulerSession;
use crate::validate::reserved_bandwidth;

/// One committed tenant the maintenance plane may move. The ledger —
/// a `Vec<TenantRecord>` owned by the driver (simulator, service
/// harness, CLI) — is the plane's ground truth for what is placed
/// where; every accepted migration updates the record in place.
#[derive(Debug, Clone)]
pub struct TenantRecord {
    /// Stable identity, used for deterministic ordering and logging.
    pub id: u64,
    /// The tenant's application topology.
    pub topology: Arc<ApplicationTopology>,
    /// Its current committed placement.
    pub placement: Placement,
}

/// Fleet-level fragmentation metrics — the "how decayed are the
/// books" gauge the maintenance plane optimizes and the defrag bench
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FragStats {
    /// Hosts with at least one placed node.
    pub active_hosts: usize,
    /// Stranded-capacity index: the fraction of vCPU capacity on
    /// *active* hosts that sits free. High = capacity smeared thinly
    /// across many half-empty hosts (fragmented); low = tenants are
    /// consolidated and the remaining free capacity lives on fully
    /// idle hosts, where whole applications can still land.
    pub stranded_index: f64,
    /// Mean tenant scatter: distinct hosts used divided by node
    /// count, averaged over the ledger (1.0 = every node on its own
    /// host).
    pub scatter_mean: f64,
    /// Bandwidth inflation: hop-weighted reserved bandwidth divided
    /// by the raw link demand, averaged over all ledger links. 0 when
    /// every linked pair is co-located; grows as churn pushes linked
    /// nodes further apart.
    pub bandwidth_inflation: f64,
    /// Total hop-weighted bandwidth reserved across the fleet, Mbps.
    pub reserved_mbps: u64,
    /// Fleet-level normalized objective: θbw · (hop-weighted ledger
    /// bandwidth / worst-case routing of the same demand) + θc ·
    /// (active hosts / fleet size), with the paper's simulation
    /// weights. The defrag bench's recovery headline is the drop in
    /// this score at equal churn.
    pub fleet_objective: f64,
}

impl FragStats {
    /// Computes the metrics from the live books and the ledger.
    #[must_use]
    pub fn compute(
        infra: &Infrastructure,
        state: &CapacityState,
        ledger: &[TenantRecord],
    ) -> FragStats {
        let mut active_hosts = 0usize;
        let mut free_vcpus = 0u64;
        let mut total_vcpus = 0u64;
        for i in 0..infra.host_count() {
            let host = HostId::from_index(i as u32);
            if state.node_count(host) == 0 {
                continue;
            }
            active_hosts += 1;
            free_vcpus += u64::from(state.available(host).vcpus);
            total_vcpus += u64::from(infra.host(host).capacity().vcpus);
        }
        let stranded_index =
            if total_vcpus == 0 { 0.0 } else { free_vcpus as f64 / total_vcpus as f64 };

        let mut scatter_sum = 0.0;
        let mut hop_weighted_mbps = 0u64;
        let mut raw_mbps = 0u64;
        for t in ledger {
            scatter_sum +=
                t.placement.distinct_hosts() as f64 / t.topology.node_count().max(1) as f64;
            hop_weighted_mbps += reserved_bandwidth(&t.topology, infra, &t.placement).as_mbps();
            raw_mbps += t.topology.total_link_bandwidth().as_mbps();
        }
        let scatter_mean = if ledger.is_empty() { 0.0 } else { scatter_sum / ledger.len() as f64 };
        let bandwidth_inflation =
            if raw_mbps == 0 { 0.0 } else { hop_weighted_mbps as f64 / raw_mbps as f64 };

        let weights = ObjectiveWeights::SIMULATION;
        let worst_mbps = (raw_mbps * infra.max_hop_cost()).max(1) as f64;
        let fleet_objective = weights.bandwidth * (hop_weighted_mbps as f64 / worst_mbps)
            + weights.hosts * (active_hosts as f64 / infra.host_count().max(1) as f64);

        FragStats {
            active_hosts,
            stranded_index,
            scatter_mean,
            bandwidth_inflation,
            reserved_mbps: hop_weighted_mbps,
            fleet_objective,
        }
    }
}

/// Why a migration was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationReason {
    /// The tenant was moved off a draining host.
    Drain {
        /// The host being drained.
        host: u32,
    },
    /// A defragmentation sweep found a strictly better placement.
    Defrag,
}

/// One applied migration — the unit of the deterministic migration
/// log that same-seed runs must reproduce byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationRecord {
    /// The tick the move was applied on.
    pub tick: u64,
    /// The moved tenant's [`TenantRecord::id`].
    pub tenant: u64,
    /// What triggered the move.
    pub reason: MigrationReason,
    /// Per-node host indices before the move.
    pub from: Vec<u32>,
    /// Per-node host indices after the move.
    pub to: Vec<u32>,
}

impl MigrationRecord {
    /// Nodes whose host actually changed.
    #[must_use]
    pub fn moved_nodes(&self) -> usize {
        self.from.iter().zip(&self.to).filter(|(a, b)| a != b).count()
    }
}

/// Tuning for the maintenance plane.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaintenanceConfig {
    /// Failure-detector thresholds and hysteresis.
    pub health: HealthConfig,
    /// Planner settings for drain re-placements and defrag trial
    /// solves (algorithm, weights, expansion caps — all deterministic).
    pub request: PlacementRequest,
    /// Pin-relaxation rounds for drain re-placement (as
    /// [`Scheduler::replace_online`](crate::Scheduler::replace_online)).
    pub max_rounds: u32,
    /// Node-moves a single defrag sweep may spend. The sweep stops —
    /// mid-tick if necessary — once the budget is gone; the next tick
    /// gets a fresh budget.
    pub sweep_budget: u32,
    /// Tenants a single sweep examines (a round-robin slice of the
    /// ledger, so successive sweeps cover the whole fleet).
    pub sweep_candidates: usize,
    /// Minimum hop-weighted bandwidth recovery, in Mbps, for a move
    /// that does not free a host outright.
    pub min_bw_gain_mbps: u64,
    /// Drain attempts per host before its unplaceable tenants are
    /// abandoned (released and dropped from the ledger).
    pub drain_retries: u32,
    /// Base drain retry backoff in ticks; doubles per retry.
    pub retry_backoff: u64,
    /// Backoff ceiling in ticks.
    pub max_backoff: u64,
    /// Foreground queue depth at which sweeps yield (0 = never
    /// yield on depth). Drains always proceed — reliability work is
    /// not load-shed.
    pub yield_queue_depth: usize,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        MaintenanceConfig {
            health: HealthConfig::default(),
            request: PlacementRequest::default(),
            max_rounds: 3,
            sweep_budget: 8,
            sweep_candidates: 16,
            min_bw_gain_mbps: 1,
            drain_retries: 3,
            retry_backoff: 4,
            max_backoff: 64,
            yield_queue_depth: 4,
        }
    }
}

/// The foreground-load signals a sweep yields to (PR 8's degrade
/// ladder plus the raw service queue depth).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceLoad {
    /// Jobs waiting in the service queue (0 when driving a plane
    /// without a service).
    pub queue_depth: usize,
    /// Current degrade-ladder rung (0 = normal). Any elevated rung
    /// pauses sweeps — if foreground placements are being degraded,
    /// background optimization has no business holding the books.
    pub degrade_level: u8,
}

/// Cumulative maintenance counters, serialized into reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintStats {
    /// Heartbeats fed to the detector.
    pub heartbeats: u64,
    /// Healthy → Suspect edges.
    pub suspected: u64,
    /// Suspect → Healthy recoveries (hysteresis satisfied).
    pub recoveries: u64,
    /// Drains started (Suspect → Draining edges).
    pub drains_started: u64,
    /// Drains that moved every tenant off their host.
    pub drains_completed: u64,
    /// Drain attempts re-scheduled with backoff.
    pub drain_retries: u64,
    /// Tenants released and dropped after the retry budget ran out.
    pub drain_abandoned: u64,
    /// Hosts declared dead (drain complete or φ past the dead
    /// threshold).
    pub hosts_dead: u64,
    /// Migrations applied by drains.
    pub drain_migrations: u64,
    /// Migrations applied by defrag sweeps.
    pub defrag_migrations: u64,
    /// Total node-moves spent across all migrations.
    pub moves_spent: u64,
    /// Defrag sweeps run.
    pub sweeps: u64,
    /// Sweeps skipped because foreground load was too high.
    pub sweeps_yielded: u64,
    /// Active hosts freed by accepted defrag moves.
    pub hosts_freed: u64,
    /// Hop-weighted bandwidth recovered by accepted defrag moves,
    /// Mbps.
    pub bw_saved_mbps: u64,
}

/// What one [`MaintenancePlane::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceTick {
    /// Health-state edges that fired this tick.
    pub transitions: Vec<HealthTransition>,
    /// Migrations applied this tick (drain + defrag).
    pub migrations: u32,
    /// Node-moves those migrations spent.
    pub moves: u32,
    /// Whether the defrag sweep yielded to foreground load.
    pub yielded: bool,
}

/// An in-flight drain: the host, how often it has been retried, and
/// when the next attempt is due.
#[derive(Debug, Clone)]
struct DrainJob {
    host: HostId,
    retries: u32,
    next_attempt: u64,
}

/// The maintenance plane. Feed it heartbeats, then call
/// [`tick`](Self::tick) with the session, the tenant ledger, the
/// current tick, and the foreground load; it applies whatever drains
/// and defrag moves are due and records them in the migration log.
#[derive(Debug)]
pub struct MaintenancePlane {
    cfg: MaintenanceConfig,
    monitor: HealthMonitor,
    drains: Vec<DrainJob>,
    /// Round-robin position of the defrag sweep in the ledger.
    sweep_cursor: usize,
    stats: MaintStats,
    log: Vec<MigrationRecord>,
}

impl MaintenancePlane {
    /// A plane for a fleet of `host_count` hosts.
    #[must_use]
    pub fn new(cfg: MaintenanceConfig, host_count: usize) -> Self {
        let monitor = HealthMonitor::new(cfg.health, host_count);
        MaintenancePlane {
            cfg,
            monitor,
            drains: Vec::new(),
            sweep_cursor: 0,
            stats: MaintStats::default(),
            log: Vec::new(),
        }
    }

    /// Records a heartbeat from `host` at `tick`.
    pub fn heartbeat(&mut self, host: HostId, tick: u64) {
        self.stats.heartbeats += 1;
        self.monitor.heartbeat(host, tick);
    }

    /// The failure detector, for inspection.
    #[must_use]
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// Cumulative counters.
    #[must_use]
    pub fn stats(&self) -> &MaintStats {
        &self.stats
    }

    /// Every migration applied so far, in application order — the
    /// deterministic log same-seed runs must reproduce exactly.
    #[must_use]
    pub fn migration_log(&self) -> &[MigrationRecord] {
        &self.log
    }

    /// Advances the plane one tick: evaluates the failure detector,
    /// starts/retries drains, and runs a budgeted defrag sweep unless
    /// foreground load says otherwise.
    pub fn tick(
        &mut self,
        session: &mut SchedulerSession<'_>,
        ledger: &mut Vec<TenantRecord>,
        tick: u64,
        load: MaintenanceLoad,
    ) -> MaintenanceTick {
        let mut report =
            MaintenanceTick { transitions: self.monitor.evaluate(tick), ..Default::default() };
        for t in &report.transitions {
            match t.to {
                HealthState::Suspect => self.stats.suspected += 1,
                HealthState::Healthy => self.stats.recoveries += 1,
                HealthState::Draining => {
                    self.stats.drains_started += 1;
                    // Freeze admissions first: nothing new lands on the
                    // host while its tenants are moved off.
                    session.quarantine_host(t.host);
                    self.drains.push(DrainJob { host: t.host, retries: 0, next_attempt: tick });
                }
                HealthState::Dead => self.stats.hosts_dead += 1,
            }
        }

        self.run_drains(session, ledger, tick, &mut report);

        if self.should_yield(load) {
            self.stats.sweeps_yielded += 1;
            report.yielded = true;
        } else {
            self.run_sweep(session, ledger, tick, &mut report);
        }
        report
    }

    fn should_yield(&self, load: MaintenanceLoad) -> bool {
        load.degrade_level > 0
            || (self.cfg.yield_queue_depth > 0 && load.queue_depth >= self.cfg.yield_queue_depth)
    }

    fn backoff(&self, retries: u32) -> u64 {
        let base = self.cfg.retry_backoff.max(1);
        base.saturating_mul(1u64 << retries.min(16)).min(self.cfg.max_backoff.max(base))
    }

    /// Processes every due drain job: migrates each tenant still on
    /// the draining host through one atomic [`SchedulerSession::migrate`]
    /// record. Tenants whose re-placement is infeasible stay put and
    /// the job retries with doubled backoff; once the retry budget is
    /// gone the stragglers are abandoned (released and dropped) so the
    /// host can still be declared dead with balanced books.
    fn run_drains(
        &mut self,
        session: &mut SchedulerSession<'_>,
        ledger: &mut Vec<TenantRecord>,
        tick: u64,
        report: &mut MaintenanceTick,
    ) {
        let mut jobs = std::mem::take(&mut self.drains);
        let mut keep = Vec::with_capacity(jobs.len());
        for mut job in jobs.drain(..) {
            if tick < job.next_attempt {
                keep.push(job);
                continue;
            }
            let mut failures = 0usize;
            let mut remaining = 0usize;
            for tenant in ledger.iter_mut() {
                if !tenant.placement.assignments().contains(&job.host) {
                    continue;
                }
                remaining += 1;
                let (topology, old) = (Arc::clone(&tenant.topology), tenant.placement.clone());
                match self.plan_drain(session, &topology, &old) {
                    Ok(new) if session.migrate(&topology, &old, &new).is_ok() => {
                        self.apply_log(
                            tick,
                            tenant.id,
                            MigrationReason::Drain { host: job.host.index() as u32 },
                            &old,
                            &new,
                            report,
                        );
                        self.stats.drain_migrations += 1;
                        tenant.placement = new;
                        remaining -= 1;
                    }
                    _ => failures += 1,
                }
            }
            if remaining == 0 {
                self.stats.drains_completed += 1;
                if let Some(edge) = self.monitor.mark(job.host, HealthState::Dead, tick) {
                    self.stats.hosts_dead += 1;
                    report.transitions.push(edge);
                }
                continue;
            }
            debug_assert!(failures > 0, "remaining tenants imply failures");
            if job.retries >= self.cfg.drain_retries {
                // Retry budget exhausted: abandon the stragglers so the
                // host can be retired with balanced books. A release is
                // journaled per tenant; the capacity re-freeze keeps the
                // quarantined host zeroed.
                ledger.retain(|t| {
                    if t.placement.assignments().contains(&job.host) {
                        let _ = session.release(&t.topology, &t.placement);
                        self.stats.drain_abandoned += 1;
                        false
                    } else {
                        true
                    }
                });
                if let Some(edge) = self.monitor.mark(job.host, HealthState::Dead, tick) {
                    self.stats.hosts_dead += 1;
                    report.transitions.push(edge);
                }
            } else {
                job.retries += 1;
                self.stats.drain_retries += 1;
                job.next_attempt = tick + self.backoff(job.retries - 1);
                keep.push(job);
            }
        }
        self.drains = keep;
    }

    /// Plans where a draining host's tenant should go: release the
    /// tenant on a scratch copy of the books, re-freeze every
    /// quarantined host, then run the pin-relaxation loop with the
    /// tenant's surviving replicas pinned — exactly the evacuation
    /// planner, minus the mutation.
    fn plan_drain(
        &self,
        session: &SchedulerSession<'_>,
        topology: &ApplicationTopology,
        old: &Placement,
    ) -> Result<Placement, PlacementError> {
        let scheduler = session.scheduler();
        let mut trial = session.state().clone();
        scheduler.release(topology, old, &mut trial)?;
        for q in session.quarantined_hosts() {
            trial.quarantine_host(q);
        }
        let prior: Vec<Option<HostId>> = old
            .assignments()
            .iter()
            .map(|&h| if session.is_quarantined(h) { None } else { Some(h) })
            .collect();
        let online = replace_rounds(topology, &prior, self.cfg.max_rounds, |pins| {
            scheduler.place_pinned(topology, &trial, &self.cfg.request, pins)
        })?;
        Ok(online.outcome.placement)
    }

    /// One budgeted defrag sweep over a round-robin slice of the
    /// ledger.
    fn run_sweep(
        &mut self,
        session: &mut SchedulerSession<'_>,
        ledger: &mut [TenantRecord],
        tick: u64,
        report: &mut MaintenanceTick,
    ) {
        self.stats.sweeps += 1;
        if ledger.is_empty() {
            return;
        }
        let mut budget = self.cfg.sweep_budget;
        let span = self.cfg.sweep_candidates.min(ledger.len());
        for step in 0..span {
            if budget == 0 {
                break;
            }
            let idx = (self.sweep_cursor + step) % ledger.len();
            let candidate = &ledger[idx];
            // Tenants overlapping quarantined hosts are drain business,
            // not defrag candidates.
            if candidate.placement.assignments().iter().any(|&h| session.is_quarantined(h)) {
                continue;
            }
            let (topology, old) = (Arc::clone(&candidate.topology), candidate.placement.clone());
            if let Some((new, freed, saved)) = self.plan_defrag(session, &topology, &old, budget) {
                if session.migrate(&topology, &old, &new).is_ok() {
                    let moved = old
                        .assignments()
                        .iter()
                        .zip(new.assignments())
                        .filter(|(a, b)| a != b)
                        .count();
                    budget -= moved as u32;
                    self.apply_log(
                        tick,
                        ledger[idx].id,
                        MigrationReason::Defrag,
                        &old,
                        &new,
                        report,
                    );
                    self.stats.defrag_migrations += 1;
                    self.stats.hosts_freed += freed.max(0) as u64;
                    self.stats.bw_saved_mbps += saved.max(0) as u64;
                    ledger[idx].placement = new;
                }
            }
        }
        self.sweep_cursor = (self.sweep_cursor + span) % ledger.len();
    }

    /// Asks whether re-placing the tenant from scratch beats keeping
    /// it: plans on a scratch copy of the books and accepts only a
    /// move that frees at least one active host (without costing
    /// bandwidth) or recovers at least the configured hop-weighted
    /// bandwidth, within the remaining move budget.
    fn plan_defrag(
        &self,
        session: &SchedulerSession<'_>,
        topology: &ApplicationTopology,
        old: &Placement,
        budget: u32,
    ) -> Option<(Placement, i64, i64)> {
        let scheduler = session.scheduler();
        let infra = session.infrastructure();
        let mut trial = session.state().clone();
        scheduler.release(topology, old, &mut trial).ok()?;
        let outcome = scheduler.place(topology, &trial, &self.cfg.request).ok()?;
        let new = outcome.placement;
        let moves = old.assignments().iter().zip(new.assignments()).filter(|(a, b)| a != b).count();
        if moves == 0 || moves as u32 > budget {
            return None;
        }
        scheduler.commit(topology, &new, &mut trial).ok()?;
        let freed = session.state().active_host_count() as i64 - trial.active_host_count() as i64;
        let old_bw = reserved_bandwidth(topology, infra, old).as_mbps() as i64;
        let new_bw = reserved_bandwidth(topology, infra, &new).as_mbps() as i64;
        let saved = old_bw - new_bw;
        let accept = (freed > 0 && saved >= 0)
            || (freed >= 0 && saved >= self.cfg.min_bw_gain_mbps.max(1) as i64);
        if !accept {
            return None;
        }
        Some((new, freed, saved))
    }

    fn apply_log(
        &mut self,
        tick: u64,
        tenant: u64,
        reason: MigrationReason,
        old: &Placement,
        new: &Placement,
        report: &mut MaintenanceTick,
    ) {
        let record = MigrationRecord {
            tick,
            tenant,
            reason,
            from: old.assignments().iter().map(|h| h.index() as u32).collect(),
            to: new.assignments().iter().map(|h| h.index() as u32).collect(),
        };
        report.migrations += 1;
        report.moves += record.moved_nodes() as u32;
        self.stats.moves_spent += record.moved_nodes() as u64;
        self.log.push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ostro_datacenter::InfrastructureBuilder;
    use ostro_model::{Bandwidth, Resources, TopologyBuilder};

    fn infra_flat(racks: usize, hosts: usize) -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            racks,
            hosts,
            Resources::new(16, 32_768, 1_000),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn pair_app(name: &str, mbps: u64) -> ApplicationTopology {
        let mut b = TopologyBuilder::new(name);
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(mbps)).unwrap();
        b.build().unwrap()
    }

    fn commit_tenant(
        session: &mut SchedulerSession<'_>,
        id: u64,
        topology: ApplicationTopology,
    ) -> TenantRecord {
        let request = PlacementRequest::default();
        let outcome = session.place(&topology, &request).unwrap();
        session.commit(&topology, &outcome.placement).unwrap();
        TenantRecord { id, topology: Arc::new(topology), placement: outcome.placement }
    }

    /// Churn-decay a small fleet by hand, then verify a sweep strictly
    /// improves the fleet objective and that the books stay balanced.
    #[test]
    fn sweep_consolidates_a_fragmented_fleet() {
        let infra = infra_flat(2, 6);
        let mut session = SchedulerSession::new(&infra);
        // Fill with tenants, then depart every other one: the
        // survivors are left scattered over half-empty hosts.
        let mut ledger: Vec<TenantRecord> = (0..10)
            .map(|i| commit_tenant(&mut session, i, pair_app(&format!("t{i}"), 200)))
            .collect();
        let mut kept = Vec::new();
        for (i, t) in ledger.drain(..).enumerate() {
            if i % 2 == 0 {
                session.release(&t.topology, &t.placement).unwrap();
            } else {
                kept.push(t);
            }
        }
        let mut ledger = kept;
        let before = FragStats::compute(&infra, session.state(), &ledger);

        let cfg = MaintenanceConfig {
            sweep_budget: 32,
            sweep_candidates: 16,
            ..MaintenanceConfig::default()
        };
        let mut plane = MaintenancePlane::new(cfg, infra.host_count());
        for tick in 0..8 {
            plane.tick(&mut session, &mut ledger, tick, MaintenanceLoad::default());
        }
        let after = FragStats::compute(&infra, session.state(), &ledger);
        assert!(
            after.fleet_objective <= before.fleet_objective,
            "sweep must not worsen the fleet: {before:?} -> {after:?}"
        );
        assert!(plane.stats().defrag_migrations > 0, "fragmented fleet should yield moves");
        assert!(
            after.active_hosts < before.active_hosts || after.reserved_mbps < before.reserved_mbps
        );
        // Books still balance: every ledger placement re-releases
        // cleanly.
        for t in &ledger {
            session.release(&t.topology, &t.placement).unwrap();
        }
        assert_eq!(session.state().active_host_count(), 0);
    }

    /// A silent host is drained proactively: its tenants move away
    /// while the fleet keeps functioning, and the host ends Dead.
    #[test]
    fn silent_host_is_drained_before_death() {
        let infra = infra_flat(2, 6);
        let mut session = SchedulerSession::new(&infra);
        let mut ledger: Vec<TenantRecord> = (0..6)
            .map(|i| commit_tenant(&mut session, i, pair_app(&format!("t{i}"), 100)))
            .collect();
        let victim = ledger[0].placement.assignments()[0];

        let mut plane = MaintenancePlane::new(MaintenanceConfig::default(), infra.host_count());
        for tick in 0..200u64 {
            for i in 0..infra.host_count() {
                let host = HostId::from_index(i as u32);
                // The victim falls silent after tick 40.
                if (host != victim || tick <= 40) && tick % 5 == 0 {
                    plane.heartbeat(host, tick);
                }
            }
            plane.tick(&mut session, &mut ledger, tick, MaintenanceLoad::default());
        }
        assert_eq!(plane.monitor().state(victim), HealthState::Dead);
        assert!(session.is_quarantined(victim));
        assert!(plane.stats().drain_migrations > 0, "tenants should move off the victim");
        for t in &ledger {
            assert!(
                !t.placement.assignments().contains(&victim),
                "no tenant may remain on the drained host"
            );
        }
        assert_eq!(ledger.len(), 6, "no tenant should be abandoned");
        assert_eq!(session.state().node_count(victim), 0);
    }

    /// Sweeps yield to foreground load; drains do not.
    #[test]
    fn sweeps_yield_to_foreground_pressure() {
        let infra = infra_flat(2, 4);
        let mut session = SchedulerSession::new(&infra);
        let mut ledger = vec![commit_tenant(&mut session, 0, pair_app("t", 100))];
        let mut plane = MaintenancePlane::new(MaintenanceConfig::default(), infra.host_count());
        let busy = MaintenanceLoad { queue_depth: 100, degrade_level: 0 };
        let report = plane.tick(&mut session, &mut ledger, 0, busy);
        assert!(report.yielded);
        assert_eq!(plane.stats().sweeps, 0);
        assert_eq!(plane.stats().sweeps_yielded, 1);
        let degraded = MaintenanceLoad { queue_depth: 0, degrade_level: 1 };
        assert!(plane.tick(&mut session, &mut ledger, 1, degraded).yielded);
        let calm = MaintenanceLoad::default();
        assert!(!plane.tick(&mut session, &mut ledger, 2, calm).yielded);
        assert_eq!(plane.stats().sweeps, 1);
    }

    /// Same inputs, same migrations, same books — the determinism
    /// contract verify.sh enforces end to end.
    #[test]
    fn same_seed_maintenance_is_bit_identical() {
        let drive = || {
            let infra = infra_flat(2, 6);
            let mut session = SchedulerSession::new(&infra);
            let mut ledger: Vec<TenantRecord> = (0..8)
                .map(|i| commit_tenant(&mut session, i, pair_app(&format!("t{i}"), 150)))
                .collect();
            for t in ledger.iter().step_by(3) {
                session.release(&t.topology, &t.placement).unwrap();
            }
            let mut kept = Vec::new();
            for (i, t) in ledger.drain(..).enumerate() {
                if i % 3 != 0 {
                    kept.push(t);
                }
            }
            let mut ledger = kept;
            let mut plane = MaintenancePlane::new(MaintenanceConfig::default(), infra.host_count());
            for tick in 0..50u64 {
                for i in 0..infra.host_count() {
                    let host = HostId::from_index(i as u32);
                    if (i != 1 || tick <= 20) && tick % 5 == 0 {
                        plane.heartbeat(host, tick);
                    }
                }
                plane.tick(&mut session, &mut ledger, tick, MaintenanceLoad::default());
            }
            let log = serde_json::to_string(plane.migration_log()).unwrap();
            let placements: Vec<Vec<u32>> = ledger
                .iter()
                .map(|t| t.placement.assignments().iter().map(|h| h.index() as u32).collect())
                .collect();
            (log, placements, *plane.stats())
        };
        assert_eq!(drive(), drive());
    }
}
