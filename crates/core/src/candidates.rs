//! Candidate-host enumeration (`GetCandidates`, Alg. 1 line 5) and
//! utility scoring (`GetUsage` + `GetHeuristic`, lines 7–9).
//!
//! Enumeration runs as a structure-of-arrays sweep: the per-request
//! [`CapacityTable`] is synced to the path's overlay, then branch-free
//! column compares build a per-host candidate bitmask (vectorized by
//! the compiler, or by explicit intrinsics under the `simd` feature).
//! Only the handful of hosts whose NIC admission depends on per-path
//! hash state (promised bandwidth, co-located neighbors) fall back to
//! the exact scalar screen — the sweep's decisions are bit-identical
//! to filtering every host through [`admits`].

use ostro_datacenter::{CapacityTable, FxHashMap, FxHashSet, HostId};
use ostro_model::{DiversityLevel, NodeId, Proximity};

use crate::heuristic::lower_bound_mbps;
use crate::placement::SearchStats;
use crate::pool::lock_unpoisoned;
use crate::search::{mix64, Ctx, Path, NO_GROUP};

/// A candidate host together with the utilities the objective needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ScoredCandidate {
    pub host: HostId,
    /// Hop-weighted Mbps added by this node's edges to placed neighbors.
    pub added_ubw: u64,
    /// Accumulated utility u\* of the child path.
    pub u_star: f64,
    /// u\* plus the heuristic lower bound — the A\* f-value.
    pub u_total: f64,
}

/// Reusable buffers for candidate enumeration and scoring, owned by the
/// caller so the per-expansion hot loop allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct CandidateScratch {
    /// Feasible hosts of the latest sweep, ascending.
    pub hosts: Vec<HostId>,
    /// One byte per host: 1 while the host survives every dense screen.
    mask: Vec<u8>,
    /// Hosts whose NIC admission needs the exact scalar screen.
    special: Vec<HostId>,
    /// Scored candidates of the latest scoring round.
    pub scored: Vec<ScoredCandidate>,
}

impl CandidateScratch {
    /// Split borrow: the current host list (shared) alongside the
    /// scored buffer (mutable), for passing both to
    /// [`score_candidates_into`].
    pub fn hosts_and_scored(&mut self) -> (&[HostId], &mut Vec<ScoredCandidate>) {
        (&self.hosts, &mut self.scored)
    }
}

/// All hosts passing the capacity, diversity, and symmetry screens for
/// placing `node` next on `path` (per-edge bandwidth feasibility is
/// checked during scoring, and definitively at materialization).
/// Convenience wrapper over [`feasible_hosts_into`] for tests and
/// one-shot callers; hot loops hold a [`CandidateScratch`] instead.
#[cfg(test)]
pub(crate) fn feasible_hosts(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId) -> Vec<HostId> {
    let mut scratch = CandidateScratch::default();
    let mut stats = SearchStats::default();
    feasible_hosts_into(ctx, path, node, &mut scratch, &mut stats);
    scratch.hosts
}

/// Fills `scratch.hosts` with every feasible host for placing `node`
/// next on `path` and returns how many otherwise-valid hosts the
/// §III-B3 symmetry floor excluded.
///
/// The capacity + NIC screen runs as a branch-free sweep over the
/// synced [`CapacityTable`] columns; the conservative NIC predicate
/// (total incident bandwidth, zero promised) is exact for every host
/// without path-local NIC state, and the few hosts with such state
/// (promised-bandwidth entries, placed neighbors' hosts) are re-screened
/// through the exact [`admits`] — so the result is bit-identical to the
/// all-scalar path. In session mode the old summary prescreen is
/// subsumed: the table's base columns mirror the summaries exactly.
pub(crate) fn feasible_hosts_into(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    scratch: &mut CandidateScratch,
    stats: &mut SearchStats,
) -> u64 {
    scratch.hosts.clear();
    let req = ctx.topo.node(node).requirements();
    if let Some(pinned) = ctx.pinned[node.index()] {
        stats.candidates_scanned += 1;
        if admits(ctx, path, node, req, pinned) {
            scratch.hosts.push(pinned);
        }
        return 0;
    }
    let n = ctx.infra.host_count();
    let range = ctx.sweep_range();
    let (lo, hi) = (range.start, range.end);
    stats.candidates_scanned += (hi - lo) as u64;
    let mask = &mut scratch.mask;
    // Out-of-range bytes stay 0 for the scratch's whole life: they are
    // zeroed here once and every writer below is range-restricted, so
    // a restricted sweep never pays an O(fleet) clear per expansion.
    if mask.len() != n {
        mask.clear();
        mask.resize(n, 0);
    }
    {
        let mut table = lock_unpoisoned(&ctx.table);
        table.sync(&path.overlay);
        // Conservative NIC demand: every incident edge off-host, no
        // promises (exact for hosts outside the special set below).
        let total_bw: u64 = ctx.topo.neighbors(node).iter().map(|&(_, bw)| bw.as_mbps()).sum();
        capacity_mask(&mut mask[lo..hi], &table, lo, req, total_bw);
        stats.candidates_pruned_simd += mask[lo..hi].iter().filter(|&&m| m == 0).count() as u64;
        // Latency bounds and diversity zones as dense column compares.
        for &(neighbor, proximity) in ctx.topo.proximity_bounds(node) {
            if let Some(neighbor_host) = path.assignment[neighbor.index()] {
                apply_within_mask(&mut mask[lo..hi], &table, lo, neighbor_host, proximity);
            }
        }
        for &zone_id in ctx.topo.zones_of(node) {
            let zone = ctx.topo.zone(zone_id);
            for &member in zone.members() {
                if member == node {
                    continue;
                }
                if let Some(member_host) = path.assignment[member.index()] {
                    apply_diversity_mask(&mut mask[lo..hi], &table, lo, member_host, zone.level());
                }
            }
        }
    }
    // Exact fix-ups: hosts carrying promised NIC bandwidth or a placed
    // neighbor of `node` — the only hosts where the dense NIC predicate
    // can differ (in either direction) from the exact screen.
    scratch.special.clear();
    for &host in path.promised_nic.keys() {
        if !scratch.special.contains(&host) {
            scratch.special.push(host);
        }
    }
    for &(neighbor, _) in ctx.topo.neighbors(node) {
        if let Some(host) = path.assignment[neighbor.index()] {
            if !scratch.special.contains(&host) {
                scratch.special.push(host);
            }
        }
    }
    for &host in &scratch.special {
        // Out-of-range hosts are not candidates no matter what the
        // exact screen says (their mask bytes must stay 0).
        if range.contains(&host.index()) {
            scratch.mask[host.index()] = u8::from(admits(ctx, path, node, req, host));
        }
    }
    // Symmetry floor last, counting hosts it alone excluded.
    let min_host = symmetry_floor(ctx, path, node);
    let mut skipped = 0;
    for (i, &m) in scratch.mask[lo..hi].iter().enumerate() {
        let i = lo + i;
        if m != 0 {
            if (i as u32) < min_host {
                skipped += 1;
            } else {
                scratch.hosts.push(HostId::from_index(i as u32));
            }
        }
    }
    skipped
}

/// Branch-free capacity + conservative-NIC sweep: `mask[i] = 1` iff
/// `req` fits host `i`'s effective availability and `nic_demand` fits
/// its NIC headroom. Scalar form; the compiler autovectorizes it.
fn capacity_mask_scalar(
    mask: &mut [u8],
    vcpus: &[u32],
    memory: &[u64],
    disk: &[u64],
    nic: &[u64],
    req: ostro_model::Resources,
    nic_demand: u64,
) {
    for (i, m) in mask.iter_mut().enumerate() {
        *m = u8::from(req.vcpus <= vcpus[i])
            & u8::from(req.memory_mb <= memory[i])
            & u8::from(req.disk_gb <= disk[i])
            & u8::from(nic_demand <= nic[i]);
    }
}

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
fn capacity_mask(
    mask: &mut [u8],
    table: &CapacityTable,
    lo: usize,
    req: ostro_model::Resources,
    nic: u64,
) {
    let hi = lo + mask.len();
    capacity_mask_scalar(
        mask,
        &table.vcpus()[lo..hi],
        &table.memory_mb()[lo..hi],
        &table.disk_gb()[lo..hi],
        &table.nic_mbps()[lo..hi],
        req,
        nic,
    );
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
fn capacity_mask(
    mask: &mut [u8],
    table: &CapacityTable,
    lo: usize,
    req: ostro_model::Resources,
    nic: u64,
) {
    let hi = lo + mask.len();
    if std::arch::is_x86_feature_detected!("sse4.2") {
        // SAFETY: gated on runtime SSE4.2 support; all column slices
        // cover the same `lo..hi` host range, matching `mask`'s length
        // (loads are unaligned, so any offset is fine).
        unsafe {
            capacity_mask_sse42(
                mask,
                &table.vcpus()[lo..hi],
                &table.memory_mb()[lo..hi],
                &table.disk_gb()[lo..hi],
                &table.nic_mbps()[lo..hi],
                req,
                nic,
            );
        }
    } else {
        capacity_mask_scalar(
            mask,
            &table.vcpus()[lo..hi],
            &table.memory_mb()[lo..hi],
            &table.disk_gb()[lo..hi],
            &table.nic_mbps()[lo..hi],
            req,
            nic,
        );
    }
}

/// SSE4.2 sweep: two hosts per iteration. Unsigned 64-bit `<=` has no
/// direct intrinsic, so both sides are sign-flipped and compared with
/// the signed `cmpgt` (`a <= b  ⇔  !(flip(a) > flip(b))`).
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "sse4.2")]
unsafe fn capacity_mask_sse42(
    mask: &mut [u8],
    vcpus: &[u32],
    memory: &[u64],
    disk: &[u64],
    nic: &[u64],
    req: ostro_model::Resources,
    nic_demand: u64,
) {
    use std::arch::x86_64::{
        __m128i, _mm_castsi128_pd, _mm_cmpgt_epi64, _mm_loadu_si128, _mm_movemask_pd, _mm_or_si128,
        _mm_set1_epi64x, _mm_xor_si128,
    };
    const FLIP: i64 = i64::MIN;
    let n = mask.len();
    let flip = _mm_set1_epi64x(FLIP);
    let req_m = _mm_set1_epi64x(req.memory_mb as i64 ^ FLIP);
    let req_d = _mm_set1_epi64x(req.disk_gb as i64 ^ FLIP);
    let req_n = _mm_set1_epi64x(nic_demand as i64 ^ FLIP);
    let pairs = n / 2 * 2;
    for i in (0..pairs).step_by(2) {
        let m = _mm_xor_si128(_mm_loadu_si128(memory.as_ptr().add(i).cast::<__m128i>()), flip);
        let d = _mm_xor_si128(_mm_loadu_si128(disk.as_ptr().add(i).cast::<__m128i>()), flip);
        let c = _mm_xor_si128(_mm_loadu_si128(nic.as_ptr().add(i).cast::<__m128i>()), flip);
        let reject = _mm_or_si128(
            _mm_or_si128(_mm_cmpgt_epi64(req_m, m), _mm_cmpgt_epi64(req_d, d)),
            _mm_cmpgt_epi64(req_n, c),
        );
        let bits = _mm_movemask_pd(_mm_castsi128_pd(reject));
        mask[i] = u8::from(bits & 1 == 0) & u8::from(req.vcpus <= vcpus[i]);
        mask[i + 1] = u8::from(bits & 2 == 0) & u8::from(req.vcpus <= vcpus[i + 1]);
    }
    for i in pairs..n {
        mask[i] = u8::from(req.vcpus <= vcpus[i])
            & u8::from(req.memory_mb <= memory[i])
            & u8::from(req.disk_gb <= disk[i])
            & u8::from(nic_demand <= nic[i]);
    }
}

/// Clears mask bits for hosts outside `neighbor_host`'s `proximity`
/// unit, replicating [`Infrastructure::within`] semantics densely
/// (`a == b` always passes; `Host` admits only the neighbor's host).
///
/// [`Infrastructure::within`]: ostro_datacenter::Infrastructure::within
fn apply_within_mask(
    mask: &mut [u8],
    table: &CapacityTable,
    lo: usize,
    neighbor_host: HostId,
    proximity: Proximity,
) {
    // `mask` covers hosts `lo..lo + mask.len()`; the neighbor is
    // addressed globally (it may sit outside a restricted sweep).
    let ni = neighbor_host.index();
    let column = match proximity {
        Proximity::Host => {
            for (i, m) in mask.iter_mut().enumerate() {
                *m &= u8::from(lo + i == ni);
            }
            return;
        }
        Proximity::Rack => table.racks(),
        Proximity::Pod => table.pods(),
        Proximity::DataCenter => table.sites(),
    };
    let unit = column[ni];
    for (m, &c) in mask.iter_mut().zip(&column[lo..]) {
        *m &= u8::from(c == unit);
    }
}

/// Clears mask bits for hosts violating a diversity zone against a
/// placed member on `member_host`, replicating
/// [`Infrastructure::satisfies_diversity`] densely (`a == b` always
/// fails; `Host` level excludes only the member's host).
///
/// [`Infrastructure::satisfies_diversity`]:
///     ostro_datacenter::Infrastructure::satisfies_diversity
fn apply_diversity_mask(
    mask: &mut [u8],
    table: &CapacityTable,
    lo: usize,
    member_host: HostId,
    level: DiversityLevel,
) {
    // `mask` covers hosts `lo..lo + mask.len()`; the member is
    // addressed globally (it may sit outside a restricted sweep).
    let mi = member_host.index();
    let column = match level {
        DiversityLevel::Host => {
            if (lo..lo + mask.len()).contains(&mi) {
                mask[mi - lo] = 0;
            }
            return;
        }
        DiversityLevel::Rack => table.racks(),
        DiversityLevel::Pod => table.pods(),
        DiversityLevel::DataCenter => table.sites(),
    };
    let unit = column[mi];
    for (m, &c) in mask.iter_mut().zip(&column[lo..]) {
        *m &= u8::from(c != unit);
    }
}

/// Capacity, NIC-headroom, and diversity screen for one (node, host)
/// pair. `req` is `node`'s requirements, hoisted by the caller.
fn admits(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    req: ostro_model::Resources,
    host: HostId,
) -> bool {
    if !req.fits_within(&path.overlay.available(host)) {
        return false;
    }
    // Bandwidth admission control: the host's NIC must be able to
    // carry (a) every incident edge of this node that is not already
    // co-located here, now or in the future, plus (b) the bandwidth
    // already promised to residents' still-unplaced edges. Without
    // this screen a one-shot search can park nodes on a host whose
    // NIC then saturates, stranding residents' future edges — a
    // dead-end the paper's testbed never triggers but Table IV's
    // 100 Mbps-headroom hosts do.
    let mut off_host_mbps = 0u64;
    let mut promised_to_node_mbps = 0u64;
    for &(neighbor, bw) in ctx.topo.neighbors(node) {
        if path.assignment[neighbor.index()] == Some(host) {
            // A co-located resident's promise to us becomes void.
            promised_to_node_mbps += bw.as_mbps();
        } else {
            off_host_mbps += bw.as_mbps();
        }
    }
    let promised = path.promised_nic(host).saturating_sub(promised_to_node_mbps);
    let nic_avail = path.overlay.link_available(ostro_datacenter::LinkRef::HostNic(host)).as_mbps();
    if off_host_mbps + promised > nic_avail {
        return false;
    }
    // Latency bounds: a bounded link to an already-placed neighbor
    // forces this node into the same infrastructure unit.
    for &(neighbor, proximity) in ctx.topo.proximity_bounds(node) {
        if let Some(neighbor_host) = path.assignment[neighbor.index()] {
            if !ctx.infra.within(host, neighbor_host, proximity) {
                return false;
            }
        }
    }
    for &zone_id in ctx.topo.zones_of(node) {
        let zone = ctx.topo.zone(zone_id);
        for &member in zone.members() {
            if member == node {
                continue;
            }
            if let Some(member_host) = path.assignment[member.index()] {
                if !ctx.infra.satisfies_diversity(host, member_host, zone.level()) {
                    return false;
                }
            }
        }
    }
    true
}

/// §III-B3 symmetry reduction: interchangeable zone siblings must be
/// assigned hosts in strictly increasing order, so `node` may only go
/// to hosts above the last-placed sibling's.
fn symmetry_floor(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId) -> u32 {
    let group = ctx.sym_group[node.index()];
    if group == NO_GROUP {
        return 0;
    }
    let mut floor = 0;
    for other in ctx.topo.nodes() {
        let oid = other.id();
        if oid != node && ctx.sym_group[oid.index()] == group {
            if let Some(h) = path.assignment[oid.index()] {
                floor = floor.max(h.index() as u32 + 1);
            }
        }
    }
    floor
}

/// Scores every candidate: child accumulated utility plus heuristic
/// lower bound. Candidates whose per-edge bandwidth probe fails are
/// dropped. Runs on the context's persistent worker pool when the
/// request allows and the candidate set is large (the paper's "EG
/// computes the utility in parallel").
///
/// With memoization on (the default), heuristic bounds are resolved
/// first through the per-search cache — hosts sharing an overlay group
/// signature resolve to one `lower_bound_mbps` call — and the
/// remaining per-host work (probe + objective) is cheap enough that
/// chunked dispatch only engages for large candidate sets.
///
/// The output order — and therefore every downstream decision — is
/// identical at any thread count and any cache state: chunk results
/// are concatenated in chunk order (reproducing the serial host order
/// exactly), and a cache hit returns the bit-exact bound a cold
/// evaluation would.
#[cfg(test)]
pub(crate) fn score_candidates(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    hosts: &[HostId],
    stats: &mut SearchStats,
) -> Vec<ScoredCandidate> {
    let mut out = Vec::new();
    score_candidates_into(ctx, path, node, hosts, stats, &mut out);
    out
}

/// Like [`score_candidates`], filling a caller-owned buffer so hot
/// loops reuse one allocation across expansions. The buffer is cleared
/// first; output order is unchanged.
pub(crate) fn score_candidates_into(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    hosts: &[HostId],
    stats: &mut SearchStats,
    out: &mut Vec<ScoredCandidate>,
) {
    out.clear();
    stats.heuristic_evals += hosts.len() as u64;
    let bounds = resolve_bounds(ctx, path, node, hosts, stats);
    let bound_of = |i: usize| bounds.as_ref().map(|b| b[i]);
    // `new_hosts` is identical for every candidate (the candidate's own
    // activation is added per host below), so the O(placed) walk runs
    // once per round instead of once per host.
    let path_new_hosts = path.new_hosts();
    // The table lock is held for the rest of the round (workers read it
    // through the guard's shared reborrow; only this thread ever locks),
    // so every per-candidate probe reads synced columns directly.
    let mut table_guard = lock_unpoisoned(&ctx.table);
    table_guard.sync(&path.overlay);
    let table: &CapacityTable = &table_guard;
    let probe = ProbeCtx::new(ctx, path, node, table);
    let threads = ctx.score_threads;
    // Adaptive serial threshold: dispatch pays off only once every
    // participant can claim a few chunks of real work, so the floor
    // scales with the pool size instead of a fixed constant.
    let serial_threshold = (32 * threads).max(96);
    if !ctx.parallel || threads < 2 || hosts.len() < serial_threshold {
        out.extend(hosts.iter().enumerate().filter_map(|(i, &h)| {
            score_one(ctx, path, node, h, path_new_hosts, bound_of(i), &probe)
        }));
        return;
    }
    let pool = ctx.scoring_pool();
    // Contiguous chunks claimed off the pool's shared cursor: four per
    // participant balances steal granularity against claim overhead,
    // capped so one chunk's working set stays within the configured
    // cache budget (`chunk_bytes`). Chunk geometry never changes the
    // output — results are concatenated in chunk order.
    let flat = hosts.len().div_ceil(pool.threads() * 4);
    let chunk_size = flat.min(ctx.chunk_cap).max(1);
    let chunk_count = hosts.len().div_ceil(chunk_size);
    out.extend(pool.run_scored(chunk_count, &|ci, buf| {
        let offset = ci * chunk_size;
        let chunk = &hosts[offset..hosts.len().min(offset + chunk_size)];
        buf.extend(chunk.iter().enumerate().filter_map(|(j, &h)| {
            score_one(ctx, path, node, h, path_new_hosts, bound_of(offset + j), &probe)
        }));
    }));
}

/// Resolves the heuristic lower bound for every candidate through the
/// per-search memo cache, or returns `None` when memoization is off
/// (bounds are then computed inline by [`score_one`], inside the
/// parallel region).
///
/// Cache misses — one per *distinct* bound key, not per host — are
/// computed through the pool when there are enough of them, each miss
/// being a full §III-A2 evaluation and therefore coarse enough to
/// claim individually.
fn resolve_bounds(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    hosts: &[HostId],
    stats: &mut SearchStats,
) -> Option<Vec<u64>> {
    if !ctx.memoize || !ctx.use_estimate {
        return None;
    }
    if let Some(shared) = ctx.session {
        return Some(resolve_bounds_session(ctx, shared, path, node, hosts, stats));
    }
    // Group signatures come from the synced table's contiguous column —
    // the same values `overlay.host_group_signature` computes, without
    // a hash probe (and a fresh-host chain) per host.
    let keys: Vec<(u32, u64)> = {
        let mut table = lock_unpoisoned(&ctx.table);
        table.sync(&path.overlay);
        hosts.iter().map(|&h| Ctx::bound_key(node, path.signature, table.group_sig(h))).collect()
    };
    // A poisoned cache only ever holds fully-inserted entries; keep
    // using it rather than aborting the whole search.
    let mut cache = ctx.bound_cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut seen: FxHashSet<(u32, u64)> = FxHashSet::default();
    // One representative host index per unresolved key.
    let misses: Vec<(usize, (u32, u64))> = keys
        .iter()
        .enumerate()
        .filter(|&(_, key)| !cache.contains_key(key) && seen.insert(*key))
        .map(|(i, &key)| (i, key))
        .collect();
    const PARALLEL_MISS_THRESHOLD: usize = 24;
    if ctx.parallel && ctx.score_threads >= 2 && misses.len() >= PARALLEL_MISS_THRESHOLD {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = ctx.scoring_pool();
        let computed: Vec<AtomicU64> = misses.iter().map(|_| AtomicU64::new(0)).collect();
        pool.run(misses.len(), &|k| {
            let (i, _) = misses[k];
            computed[k].store(lower_bound_mbps(ctx, path, node, hosts[i]), Ordering::Relaxed);
        });
        for ((_, key), bound) in misses.iter().zip(&computed) {
            cache.insert(*key, bound.load(Ordering::Relaxed));
        }
    } else {
        for &(i, key) in &misses {
            cache.insert(key, lower_bound_mbps(ctx, path, node, hosts[i]));
        }
    }
    stats.bound_cache_misses += misses.len() as u64;
    stats.bound_cache_hits += (hosts.len() - misses.len()) as u64;
    Some(keys.iter().map(|key| cache[key]).collect())
}

/// Salt distinguishing "the candidate is slot `i` of the placement"
/// from "the candidate is an unused host with availability signature
/// `x`" in a session cache key.
const SLOT_SALT: u64 = 0xC01D_CAFE_F00D_5EED;

/// Session-mode bound resolution: the same values [`resolve_bounds`]
/// produces, under keys that survive across requests.
///
/// The per-request cache keys placements by `path.signature` and hosts
/// by overlay epoch — both meaningless outside one search. The session
/// key re-expresses the *same inputs* purely by value, which is exactly
/// the set [`lower_bound_mbps`] reads (see [`session_prefix`]): a
/// stream of structurally identical tenants therefore resolves each
/// bound once, ever, instead of once per request. Warm hits are
/// bit-exact by construction — equal key ⇒ equal inputs ⇒ the same
/// deterministic computation.
fn resolve_bounds_session(
    ctx: &Ctx<'_>,
    shared: &crate::session::SessionShared,
    path: &Path<'_>,
    node: NodeId,
    hosts: &[HostId],
    stats: &mut SearchStats,
) -> Vec<u64> {
    let (prefix, slots) = session_prefix(ctx, path);
    let node_idx = node.index() as u32;
    let keys: Vec<(u32, u64)> = hosts
        .iter()
        .map(|&h| {
            // A candidate already hosting part of this placement is
            // identified by its slot position (its availability is in
            // the prefix); an untouched candidate purely by value, so
            // every host of an availability group shares one entry.
            let cand = match slots.iter().position(|&s| s == h) {
                Some(slot) => mix64(SLOT_SALT ^ (slot as u64 + 1)),
                None => shared.summaries[h.index()].avail_sig,
            };
            (node_idx, mix64(prefix ^ cand))
        })
        .collect();
    let mut cache = lock_unpoisoned(&shared.cache);
    let mut resolved: FxHashMap<(u32, u64), u64> = FxHashMap::default();
    let mut seen: FxHashSet<(u32, u64)> = FxHashSet::default();
    let mut warm_hits = 0u64;
    // One representative host index per unresolved key.
    let mut misses: Vec<(usize, (u32, u64))> = Vec::new();
    for (i, &key) in keys.iter().enumerate() {
        match cache.get(key) {
            Some((bound, warm)) => {
                // Promotion keeps the writing generation, so every
                // occurrence of a cross-request key counts warm.
                warm_hits += u64::from(warm);
                resolved.insert(key, bound);
            }
            None => {
                if seen.insert(key) {
                    misses.push((i, key));
                }
            }
        }
    }
    const PARALLEL_MISS_THRESHOLD: usize = 24;
    if ctx.parallel && ctx.score_threads >= 2 && misses.len() >= PARALLEL_MISS_THRESHOLD {
        use std::sync::atomic::{AtomicU64, Ordering};
        let pool = ctx.scoring_pool();
        let computed: Vec<AtomicU64> = misses.iter().map(|_| AtomicU64::new(0)).collect();
        pool.run(misses.len(), &|k| {
            let (i, _) = misses[k];
            computed[k].store(lower_bound_mbps(ctx, path, node, hosts[i]), Ordering::Relaxed);
        });
        for (&(_, key), bound) in misses.iter().zip(&computed) {
            let bound = bound.load(Ordering::Relaxed);
            cache.insert(key, bound);
            resolved.insert(key, bound);
        }
    } else {
        for &(i, key) in &misses {
            let bound = lower_bound_mbps(ctx, path, node, hosts[i]);
            cache.insert(key, bound);
            resolved.insert(key, bound);
        }
    }
    // Per-call accounting matches the per-request cache (hits + misses
    // = hosts scored); warm hits additionally count as session hits.
    stats.bound_cache_misses += misses.len() as u64;
    stats.bound_cache_hits += (hosts.len() - misses.len()) as u64;
    stats.session_cache_misses += misses.len() as u64;
    stats.session_cache_hits += warm_hits;
    keys.iter().map(|key| resolved[key]).collect()
}

/// Value signature of everything [`lower_bound_mbps`] observes about
/// `path`, plus the topology structure: the node → used-host-slot
/// partition **in id order** (the heuristic seeds slots by scanning
/// nodes in id order and breaks affinity ties toward lower slots, so
/// slot order is significant) followed by each slot's exact remaining
/// availability, in first-occurrence order. Returns the fold and the
/// slot table for keying candidates.
fn session_prefix(ctx: &Ctx<'_>, path: &Path<'_>) -> (u64, Vec<HostId>) {
    let mut slots: Vec<HostId> = Vec::with_capacity(path.placed);
    let mut h = ctx.topo_sig;
    for (i, assigned) in path.assignment.iter().enumerate() {
        if let Some(host) = *assigned {
            let slot = match slots.iter().position(|&s| s == host) {
                Some(slot) => slot,
                None => {
                    slots.push(host);
                    slots.len() - 1
                }
            };
            h = mix64(h ^ (((i as u64) << 32) | (slot as u64 + 1)));
        }
    }
    for &host in &slots {
        let avail = path.overlay.available(host);
        h = mix64(h ^ u64::from(avail.vcpus));
        h = mix64(h ^ avail.memory_mb);
        h = mix64(h ^ avail.disk_gb);
    }
    (h, slots)
}

/// The dense per-round flow screen: everything [`Path::probe`] reads,
/// gathered once per scoring round so per-candidate bandwidth admission
/// is pure array indexing — no hash probes, no route materialization.
/// Decisions and added-bandwidth sums are bit-identical to calling
/// `probe` per host (same links, same headroom, same hop weights).
struct ProbeCtx<'t> {
    /// The synced capacity table the candidates' columns come from.
    table: &'t CapacityTable,
    /// One entry per placed neighbor of the node being scored.
    neighbors: Vec<NeighborFlow>,
    /// Remaining ToR-uplink headroom per rack, overlay-synced (Mbps).
    tor: Vec<u64>,
    /// Remaining pod-uplink headroom per pod (unused entries for
    /// transparent pods, which carry no capacity).
    pod: Vec<u64>,
    /// Remaining site-uplink headroom per site.
    site: Vec<u64>,
    /// Whether each pod's uplink is real (capacity-bearing).
    pod_real: Vec<bool>,
}

/// One placed neighbor's flow, with its fixed (neighbor-side) route
/// quantities resolved up front.
struct NeighborFlow {
    host: HostId,
    rack: u32,
    pod: u32,
    site: u32,
    pod_real: bool,
    /// The edge's demand in Mbps.
    bw: u64,
    /// Headroom of the neighbor-side links a route may cross.
    nic: u64,
    tor: u64,
    pod_hr: u64,
    site_hr: u64,
}

impl<'t> ProbeCtx<'t> {
    fn new(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId, table: &'t CapacityTable) -> Self {
        use ostro_datacenter::LinkRef;
        let tor: Vec<u64> = ctx
            .infra
            .racks()
            .iter()
            .map(|r| path.overlay.link_available(LinkRef::TorUplink(r.id())).as_mbps())
            .collect();
        let pod: Vec<u64> = ctx
            .infra
            .pods()
            .iter()
            .map(|p| path.overlay.link_available(LinkRef::PodUplink(p.id())).as_mbps())
            .collect();
        let site: Vec<u64> = ctx
            .infra
            .sites()
            .iter()
            .map(|s| path.overlay.link_available(LinkRef::SiteUplink(s.id())).as_mbps())
            .collect();
        let pod_real: Vec<bool> = ctx.infra.pods().iter().map(|p| !p.is_transparent()).collect();
        let neighbors = ctx
            .topo
            .neighbors(node)
            .iter()
            .filter_map(|&(neighbor, bw)| {
                let host = path.assignment[neighbor.index()]?;
                let hi = host.index();
                let (r, p, s) = (table.racks()[hi], table.pods()[hi], table.sites()[hi]);
                Some(NeighborFlow {
                    host,
                    rack: r,
                    pod: p,
                    site: s,
                    pod_real: pod_real[p as usize],
                    bw: bw.as_mbps(),
                    nic: table.nic_mbps()[hi],
                    tor: tor[r as usize],
                    pod_hr: pod[p as usize],
                    site_hr: site[s as usize],
                })
            })
            .collect();
        ProbeCtx { table, neighbors, tor, pod, site, pod_real }
    }

    /// Bit-identical replacement for [`Path::probe`]: `None` when any
    /// edge's flow (or the summed off-host NIC demand) does not fit,
    /// otherwise the hop-weighted Mbps placing the node here adds.
    fn admit(&self, host: HostId) -> Option<u64> {
        let hi = host.index();
        let (rack, pod, site) =
            (self.table.racks()[hi], self.table.pods()[hi], self.table.sites()[hi]);
        let nic = self.table.nic_mbps()[hi];
        let mut added = 0u64;
        let mut nic_demand = 0u64;
        for nb in &self.neighbors {
            if nb.host == host {
                // Co-located: zero hops, no links crossed.
                continue;
            }
            // Walk the same levels `route_pair` would, folding each
            // crossed link's headroom into the min and counting hops
            // exactly as `hop_cost` does.
            let mut headroom = nic.min(nb.nic);
            let mut hops = 2;
            if rack != nb.rack {
                headroom = headroom.min(self.tor[rack as usize]).min(nb.tor);
                hops = 4;
                if pod != nb.pod {
                    if self.pod_real[pod as usize] {
                        headroom = headroom.min(self.pod[pod as usize]);
                        hops += 1;
                    }
                    if nb.pod_real {
                        headroom = headroom.min(nb.pod_hr);
                        hops += 1;
                    }
                }
                if site != nb.site {
                    headroom = headroom.min(self.site[site as usize]).min(nb.site_hr);
                    hops += 2;
                }
            }
            if nb.bw > headroom {
                return None;
            }
            nic_demand += nb.bw;
            added += nb.bw * hops;
        }
        // Every off-host flow shares the candidate's NIC; the per-edge
        // checks above cannot see their sum.
        if nic_demand > nic {
            return None;
        }
        Some(added)
    }
}

fn score_one(
    ctx: &Ctx<'_>,
    path: &Path<'_>,
    node: NodeId,
    host: HostId,
    path_new_hosts: usize,
    bound: Option<u64>,
    probe: &ProbeCtx<'_>,
) -> Option<ScoredCandidate> {
    let added_ubw = probe.admit(host)?;
    let new_hosts = path_new_hosts + usize::from(probe.table.active()[host.index()] == 0);
    let ubw_child = path.ubw_mbps + added_ubw;
    let u_star = ctx.objective(ubw_child, new_hosts);
    let bound = match bound {
        Some(resolved) => resolved,
        None if ctx.use_estimate => lower_bound_mbps(ctx, path, node, host),
        None => 0,
    };
    let u_total = ctx.objective(ubw_child + bound, new_hosts);
    Some(ScoredCandidate { host, added_ubw, u_star, u_total })
}

/// `GetBest` (Alg. 1 line 11): the candidate minimizing the estimated
/// total utility, tie-broken toward already-active hosts and then the
/// lowest host index (deterministic).
pub(crate) fn pick_best(path: &Path<'_>, scored: &[ScoredCandidate]) -> Option<ScoredCandidate> {
    scored
        .iter()
        .min_by(|a, b| {
            a.u_total
                .total_cmp(&b.u_total)
                .then_with(|| {
                    let a_active = path.overlay.is_active(a.host);
                    let b_active = path.overlay.is_active(b.host);
                    b_active.cmp(&a_active)
                })
                .then_with(|| a.host.cmp(&b.host))
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlacementRequest;
    use ostro_datacenter::{CapacityState, Infrastructure, InfrastructureBuilder};
    use ostro_model::{ApplicationTopology, Bandwidth, DiversityLevel, Resources, TopologyBuilder};

    fn infra() -> Infrastructure {
        InfrastructureBuilder::flat(
            "dc",
            2,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_gbps(10),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap()
    }

    fn topo_pair() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 4, 8_192).unwrap();
        let c = b.vm("c", 4, 8_192).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.diversity_zone("z", DiversityLevel::Rack, &[a, c]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn capacity_screen_excludes_full_hosts() {
        let topo = topo_pair();
        let infra = infra();
        let mut base = CapacityState::new(&infra);
        base.reserve_node(HostId::from_index(0), Resources::new(8, 16_384, 500)).unwrap();
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let node = ctx.order[0];
        let hosts = feasible_hosts(&ctx, &path, node);
        assert_eq!(hosts.len(), 7);
        assert!(!hosts.contains(&HostId::from_index(0)));
    }

    #[test]
    fn diversity_screen_uses_zone_level() {
        let topo = topo_pair();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        let second = ctx.order[1];
        let child = path.place(&ctx, first, HostId::from_index(1)).unwrap();
        let hosts = feasible_hosts(&ctx, &child, second);
        // Rack 0 is hosts 0..4; the rack-level zone forbids all of them.
        assert_eq!(hosts.len(), 4);
        assert!(hosts.iter().all(|h| h.index() >= 4));
    }

    #[test]
    fn pinned_node_gets_exactly_its_host() {
        let topo = topo_pair();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest { zone_symmetry: false, ..PlacementRequest::default() };
        let a = topo.node_by_name("a").unwrap().id();
        let mut pinned = vec![None; 2];
        pinned[a.index()] = Some(HostId::from_index(5));
        let ctx = Ctx::new(&topo, &infra, &base, &req, pinned).unwrap();
        let path = Path::empty(&ctx);
        assert_eq!(feasible_hosts(&ctx, &path, a), vec![HostId::from_index(5)]);
    }

    #[test]
    fn symmetry_floor_orders_sibling_hosts() {
        let mut b = TopologyBuilder::new("t");
        let hub = b.vm("hub", 1, 1_024).unwrap();
        let w1 = b.vm("w1", 1, 1_024).unwrap();
        let w2 = b.vm("w2", 1, 1_024).unwrap();
        b.link(hub, w1, Bandwidth::from_mbps(10)).unwrap();
        b.link(hub, w2, Bandwidth::from_mbps(10)).unwrap();
        b.diversity_zone("z", DiversityLevel::Host, &[w1, w2]).unwrap();
        let topo = b.build().unwrap();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest::default();
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 3]).unwrap();
        assert_ne!(ctx.sym_group[w1.index()], NO_GROUP);

        let mut path = Path::empty(&ctx);
        // Place nodes until w1 is placed (order may interleave hub).
        while let Some(n) = path.next_node(&ctx) {
            if n == w2 {
                break;
            }
            let host = if n == w1 { HostId::from_index(3) } else { HostId::from_index(0) };
            path = path.place(&ctx, n, host).unwrap();
        }
        let hosts = feasible_hosts(&ctx, &path, w2);
        assert!(!hosts.is_empty());
        assert!(hosts.iter().all(|h| h.index() > 3));
    }

    #[test]
    fn scoring_prefers_colocation_for_bandwidth_dominant_weights() {
        let topo = topo_no_zone();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let req = PlacementRequest {
            weights: crate::objective::ObjectiveWeights::BANDWIDTH_DOMINANT,
            zone_symmetry: false,
            parallel: false,
            ..PlacementRequest::default()
        };
        let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; 2]).unwrap();
        let path = Path::empty(&ctx);
        let first = ctx.order[0];
        let child = path.place(&ctx, first, HostId::from_index(0)).unwrap();
        let second = child.next_node(&ctx).unwrap();
        let hosts = feasible_hosts(&ctx, &child, second);
        let mut stats = SearchStats::default();
        let scored = score_candidates(&ctx, &child, second, &hosts, &mut stats);
        let best = pick_best(&child, &scored).unwrap();
        assert_eq!(best.host, HostId::from_index(0));
        assert_eq!(best.added_ubw, 0);
        assert_eq!(stats.heuristic_evals, hosts.len() as u64);
    }

    fn topo_no_zone() -> ApplicationTopology {
        let mut b = TopologyBuilder::new("t");
        let a = b.vm("a", 2, 2_048).unwrap();
        let c = b.vm("c", 2, 2_048).unwrap();
        b.link(a, c, Bandwidth::from_mbps(100)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn parallel_and_serial_scoring_agree() {
        let topo = topo_no_zone();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let mk = |parallel| PlacementRequest {
            parallel,
            zone_symmetry: false,
            ..PlacementRequest::default()
        };
        let req_par = mk(true);
        let req_ser = mk(false);
        let ctx_p = Ctx::new(&topo, &infra, &base, &req_par, vec![None; 2]).unwrap();
        let ctx_s = Ctx::new(&topo, &infra, &base, &req_ser, vec![None; 2]).unwrap();
        let path_p = Path::empty(&ctx_p);
        let path_s = Path::empty(&ctx_s);
        let node = ctx_p.order[0];
        let hosts = feasible_hosts(&ctx_p, &path_p, node);
        let mut s1 = SearchStats::default();
        let mut s2 = SearchStats::default();
        // Force the parallel path despite the small candidate count by
        // repeating the host list beyond the threshold.
        let many: Vec<HostId> = hosts.iter().cycle().take(200).copied().collect();
        let a = score_candidates(&ctx_p, &path_p, node, &many, &mut s1);
        let b = score_candidates(&ctx_s, &path_s, node, &many, &mut s2);
        assert_eq!(a, b);
    }

    #[test]
    fn memoized_scoring_matches_cold_cache_scoring() {
        let topo = topo_no_zone();
        let infra = infra();
        let base = CapacityState::new(&infra);
        let mk = |memoize_bounds| PlacementRequest {
            memoize_bounds,
            zone_symmetry: false,
            ..PlacementRequest::default()
        };
        let req_memo = mk(true);
        let req_cold = mk(false);
        let ctx_m = Ctx::new(&topo, &infra, &base, &req_memo, vec![None; 2]).unwrap();
        let ctx_c = Ctx::new(&topo, &infra, &base, &req_cold, vec![None; 2]).unwrap();
        let path_m = Path::empty(&ctx_m);
        let path_c = Path::empty(&ctx_c);
        let node = ctx_m.order[0];
        let hosts = feasible_hosts(&ctx_m, &path_m, node);
        let mut sm = SearchStats::default();
        let mut sc = SearchStats::default();
        let warm = score_candidates(&ctx_m, &path_m, node, &hosts, &mut sm);
        let cold = score_candidates(&ctx_c, &path_c, node, &hosts, &mut sc);
        assert_eq!(warm, cold);
        // Every resolution is accounted as a hit or a miss with memo
        // on; the cold run keeps both counters at zero.
        assert_eq!(sm.bound_cache_hits + sm.bound_cache_misses, hosts.len() as u64);
        assert!(sm.bound_cache_misses >= 1);
        assert_eq!(sc.bound_cache_hits + sc.bound_cache_misses, 0);
        // All eight hosts are untouched with identical base
        // availability: one group, one heuristic evaluation.
        assert_eq!(sm.bound_cache_misses, 1);
        // A second round is fully cache-served and still identical.
        let mut sm2 = SearchStats::default();
        let again = score_candidates(&ctx_m, &path_m, node, &hosts, &mut sm2);
        assert_eq!(again, warm);
        assert_eq!(sm2.bound_cache_misses, 0);
        assert_eq!(sm2.bound_cache_hits, hosts.len() as u64);
    }

    /// The satellite property test: over random small topologies, a
    /// search that places, descends, rolls back via [`PlacedMark`]
    /// undo, and re-scores must produce bounds identical to a
    /// cold-cache run — i.e. rollback restores every cache key (the
    /// path signature and the overlay group epochs) exactly.
    ///
    /// [`PlacedMark`]: crate::search::PlacedMark
    #[test]
    fn memo_survives_rollback_and_matches_cold_cache_on_random_topologies() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x05_7280);
        for trial in 0u64..25 {
            let mut b = TopologyBuilder::new(format!("t{trial}"));
            let n = rng.gen_range(3usize..7);
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    b.vm(format!("v{i}"), rng.gen_range(1u32..4), 1_024 * rng.gen_range(1u64..4))
                        .unwrap()
                })
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.4) {
                        b.link(ids[i], ids[j], Bandwidth::from_mbps(rng.gen_range(10u64..200)))
                            .unwrap();
                    }
                }
            }
            let topo = b.build().unwrap();
            let infra = infra();
            let base = CapacityState::new(&infra);
            let mk = |memoize_bounds| PlacementRequest {
                memoize_bounds,
                zone_symmetry: false,
                ..PlacementRequest::default()
            };
            let req_memo = mk(true);
            let req_cold = mk(false);
            let ctx_m = Ctx::new(&topo, &infra, &base, &req_memo, vec![None; n]).unwrap();
            let ctx_c = Ctx::new(&topo, &infra, &base, &req_cold, vec![None; n]).unwrap();
            let mut warm = Path::empty(&ctx_m);
            let mut cold = Path::empty(&ctx_c);
            while let Some(node) = warm.next_node(&ctx_m) {
                let hosts = feasible_hosts(&ctx_m, &warm, node);
                if hosts.is_empty() {
                    break;
                }
                let mut stats = SearchStats::default();
                let first = score_candidates(&ctx_m, &warm, node, &hosts, &mut stats);
                // Detour: place on a random feasible host, score the
                // *next* node down there (seeding cache entries at the
                // deeper signature and bumped host epochs), roll back.
                let detour_host = hosts[rng.gen_range(0usize..hosts.len())];
                if let Some(mark) = warm.place_mut(&ctx_m, node, detour_host) {
                    if let Some(next) = warm.next_node(&ctx_m) {
                        let deeper = feasible_hosts(&ctx_m, &warm, next);
                        let mut s = SearchStats::default();
                        score_candidates(&ctx_m, &warm, next, &deeper, &mut s);
                    }
                    warm.undo(mark);
                }
                // Re-scoring after the rollback hits only valid cache
                // entries: identical output, zero fresh evaluations.
                let mut stats2 = SearchStats::default();
                let rescored = score_candidates(&ctx_m, &warm, node, &hosts, &mut stats2);
                assert_eq!(rescored, first, "trial {trial}: rollback changed scores");
                assert_eq!(stats2.bound_cache_misses, 0, "trial {trial}: stale keys after undo");
                // And the whole round agrees with a cold-cache engine.
                let mut cold_stats = SearchStats::default();
                let cold_scored = score_candidates(&ctx_c, &cold, node, &hosts, &mut cold_stats);
                assert_eq!(cold_scored, first, "trial {trial}: memo diverged from cold cache");
                let Some(best) = pick_best(&warm, &first) else { break };
                warm.place_mut(&ctx_m, node, best.host).unwrap();
                cold.place_mut(&ctx_c, node, best.host).unwrap();
            }
        }
    }

    /// Scalar reference for the SoA sweep: the pre-vectorization
    /// per-host loop — every host through the exact [`admits`] screen,
    /// then the symmetry floor, counting floor-only exclusions.
    fn reference_feasible(ctx: &Ctx<'_>, path: &Path<'_>, node: NodeId) -> (Vec<HostId>, u64) {
        let req = ctx.topo.node(node).requirements();
        if let Some(pinned) = ctx.pinned[node.index()] {
            let hosts =
                if admits(ctx, path, node, req, pinned) { vec![pinned] } else { Vec::new() };
            return (hosts, 0);
        }
        let min_host = symmetry_floor(ctx, path, node);
        let mut skipped = 0;
        let hosts = ctx
            .infra
            .hosts()
            .iter()
            .map(|h| h.id())
            .filter(|&h| {
                if !admits(ctx, path, node, req, h) {
                    return false;
                }
                if (h.index() as u32) < min_host {
                    skipped += 1;
                    return false;
                }
                true
            })
            .collect();
        (hosts, skipped)
    }

    /// The tentpole's bit-identity property: over random topologies
    /// with zones, latency bounds, and tight NICs, the mask sweep must
    /// enumerate exactly the hosts (and the exact symmetry-skip count)
    /// the all-scalar screen does, at every point of a random
    /// place/undo churn walk — and the shadowing capacity table's
    /// group-signature column must stay bit-identical to the overlay's
    /// hash-path signatures across those rollbacks.
    #[test]
    fn soa_sweep_matches_scalar_reference_under_churn() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0x50A5_CAB1);
        // Tight NICs (600 Mbps against links up to 400) so the
        // conservative dense NIC predicate actually diverges from the
        // exact screen on promised/co-located hosts, forcing the
        // special-host fix-up path to earn its keep.
        let infra = InfrastructureBuilder::flat(
            "dc",
            3,
            4,
            Resources::new(8, 16_384, 500),
            Bandwidth::from_mbps(600),
            Bandwidth::from_gbps(100),
        )
        .build()
        .unwrap();
        for trial in 0u64..20 {
            let mut b = TopologyBuilder::new(format!("t{trial}"));
            let n = rng.gen_range(3usize..8);
            let ids: Vec<_> = (0..n)
                .map(|i| {
                    b.vm(format!("v{i}"), rng.gen_range(1u32..4), 1_024 * rng.gen_range(1u64..4))
                        .unwrap()
                })
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.4) {
                        let bw = Bandwidth::from_mbps(rng.gen_range(10u64..400));
                        if rng.gen_bool(0.2) {
                            let prox = match rng.gen_range(0u8..3) {
                                0 => ostro_model::Proximity::Rack,
                                1 => ostro_model::Proximity::Pod,
                                _ => ostro_model::Proximity::DataCenter,
                            };
                            b.link_within(ids[i], ids[j], bw, prox).unwrap();
                        } else {
                            b.link(ids[i], ids[j], bw).unwrap();
                        }
                    }
                }
            }
            if rng.gen_bool(0.7) {
                let level = match rng.gen_range(0u8..3) {
                    0 => DiversityLevel::Host,
                    1 => DiversityLevel::Rack,
                    _ => DiversityLevel::Pod,
                };
                let members: Vec<_> =
                    ids.iter().copied().filter(|_| rng.gen_bool(0.6)).take(3).collect();
                if members.len() >= 2 {
                    b.diversity_zone("z", level, &members).unwrap();
                }
            }
            let topo = b.build().unwrap();
            let base = CapacityState::new(&infra);
            let req = PlacementRequest { parallel: false, ..PlacementRequest::default() };
            let ctx = Ctx::new(&topo, &infra, &base, &req, vec![None; n]).unwrap();
            let mut path = Path::empty(&ctx);
            let mut marks = Vec::new();
            let mut scratch = CandidateScratch::default();
            for step in 0..40 {
                if let Some(node) = path.next_node(&ctx) {
                    let mut stats = SearchStats::default();
                    let skipped = feasible_hosts_into(&ctx, &path, node, &mut scratch, &mut stats);
                    let (ref_hosts, ref_skipped) = reference_feasible(&ctx, &path, node);
                    assert_eq!(
                        scratch.hosts, ref_hosts,
                        "trial {trial} step {step}: sweep diverged from scalar reference"
                    );
                    assert_eq!(
                        skipped, ref_skipped,
                        "trial {trial} step {step}: symmetry-skip count diverged"
                    );
                    assert_eq!(stats.candidates_scanned, infra.host_count() as u64);
                    {
                        let mut table = lock_unpoisoned(&ctx.table);
                        table.sync(&path.overlay);
                        for h in infra.hosts() {
                            assert_eq!(
                                table.group_sig(h.id()),
                                path.overlay.host_group_signature(h.id()),
                                "trial {trial} step {step}: group signature column stale"
                            );
                        }
                    }
                    if !ref_hosts.is_empty() && rng.gen_bool(0.7) {
                        let host = ref_hosts[rng.gen_range(0usize..ref_hosts.len())];
                        if let Some(mark) = path.place_mut(&ctx, node, host) {
                            marks.push(mark);
                            continue;
                        }
                    }
                    match marks.pop() {
                        Some(mark) => path.undo(mark),
                        None => continue,
                    }
                } else if let Some(mark) = marks.pop() {
                    path.undo(mark);
                } else {
                    break;
                }
            }
        }
    }
}
